//! Text format for traces.
//!
//! Trace-replay monitoring (the mode this reproduction targets, since there
//! are no SystemC bindings for Rust) needs a durable trace representation.
//! The format is line-oriented and human-editable:
//!
//! ```text
//! # comment
//! 10ns  in  set_imgAddr
//! 12ns  in  set_glAddr
//! 30ns  in  start
//! end 500ns
//! ```
//!
//! Each event line is `<time> <direction> <name>`; `direction` is `in` or
//! `out`. An optional final `end <time>` line records when observation
//! stopped (needed to detect deadlines that expired after the last event).

use std::fmt::Write as _;
use std::sync::Arc;

use lomon_obs::{Counter, Histogram, Registry};

use crate::name::Direction;
use crate::time::parse_sim_time;
use crate::{Trace, Vocabulary};

/// Telemetry counters for trace I/O, shared by whole-file parsing
/// ([`read_trace_observed`]) and the CLI's streaming line loop (`lomon
/// watch` counts through the same families).
#[derive(Debug)]
pub struct IoMetrics {
    /// `lomon_io_lines_total`: text lines consumed (including comments and
    /// blanks).
    pub lines: Arc<Counter>,
    /// `lomon_io_bytes_total`: bytes of trace text consumed.
    pub bytes: Arc<Counter>,
    /// `lomon_io_parse_errors_total`: lines rejected by the parser.
    pub parse_errors: Arc<Counter>,
    /// `lomon_ingest_decode_ns`: nanoseconds spent decoding trace bytes
    /// into events, recorded once per decoded buffer (or stream line in
    /// `lomon watch`) so the instrumentation itself stays off the per-byte
    /// hot path.
    pub decode_ns: Arc<Histogram>,
}

impl IoMetrics {
    /// Register (or fetch) the trace I/O metric families in `registry`.
    pub fn register(registry: &Registry) -> Arc<Self> {
        Arc::new(IoMetrics {
            lines: registry.counter("lomon_io_lines_total", "Trace text lines consumed"),
            bytes: registry.counter("lomon_io_bytes_total", "Trace text bytes consumed"),
            parse_errors: registry.counter(
                "lomon_io_parse_errors_total",
                "Trace lines rejected by the parser",
            ),
            decode_ns: registry.histogram(
                "lomon_ingest_decode_ns",
                "Nanoseconds spent decoding trace bytes into events",
            ),
        })
    }
}

/// Error produced by [`read_trace`], with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line where the problem was found.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// One parsed line of the trace text format. The single source of truth
/// for the per-line grammar, shared by [`read_trace`] and streaming
/// consumers (such as `lomon watch`) that parse one line at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceLine<'a> {
    /// An event line `<time> <in|out> <name>`.
    Event {
        /// The event's timestamp.
        time: crate::SimTime,
        /// Whether the name is an input or an output.
        direction: Direction,
        /// The interface name, borrowed from the line.
        name: &'a str,
    },
    /// An `end <time>` line recording when observation stopped.
    End(crate::SimTime),
}

/// Parse one line of the trace text format. Blank lines and `#` comments
/// parse to `Ok(None)`.
///
/// Monotonicity across lines is the caller's concern ([`read_trace`]
/// enforces it for whole files).
///
/// # Errors
///
/// Returns a human-readable message (without line number) on malformed
/// fields.
pub fn parse_trace_line(raw: &str) -> Result<Option<TraceLine<'_>>, String> {
    let line = raw.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut fields = line.split_whitespace();
    let first = fields.next().expect("non-empty line has a field");
    if first == "end" {
        let time_text = fields.next().ok_or("`end` requires a time")?;
        let time = parse_sim_time(time_text)?;
        if let Some(junk) = fields.next() {
            return Err(format!("unexpected trailing field `{junk}`"));
        }
        return Ok(Some(TraceLine::End(time)));
    }
    let time = parse_sim_time(first)?;
    let direction = match fields.next().ok_or("missing direction (`in` or `out`)")? {
        "in" => Direction::Input,
        "out" => Direction::Output,
        other => {
            return Err(format!(
                "unknown direction `{other}` (expected `in` or `out`)"
            ))
        }
    };
    let name = fields.next().ok_or("missing event name")?;
    if let Some(junk) = fields.next() {
        return Err(format!("unexpected trailing field `{junk}`"));
    }
    Ok(Some(TraceLine::Event {
        time,
        direction,
        name,
    }))
}

/// Parse a trace from its text representation, interning names into `voc`.
///
/// # Errors
///
/// Returns a [`TraceParseError`] with the offending line on malformed input,
/// unknown directions, bad time literals, or non-monotone timestamps.
pub fn read_trace(text: &str, voc: &mut Vocabulary) -> Result<Trace, TraceParseError> {
    read_trace_observed(text, voc, None)
}

/// [`read_trace`] with optional telemetry: every consumed line and byte is
/// counted, and a parse failure bumps the error counter before the
/// [`TraceParseError`] is returned.
///
/// # Errors
///
/// Identical to [`read_trace`].
pub fn read_trace_observed(
    text: &str,
    voc: &mut Vocabulary,
    metrics: Option<&IoMetrics>,
) -> Result<Trace, TraceParseError> {
    let started = metrics.map(|_| std::time::Instant::now());
    let mut trace = Trace::new();
    let mut last_time = None;
    let mut lines = 0u64;
    let mut result = Ok(());
    for (idx, raw) in text.lines().enumerate() {
        lines += 1;
        let err = |message: String| TraceParseError {
            line: idx + 1,
            message,
        };
        if let Err(e) = read_one(raw, voc, &mut trace, &mut last_time, err) {
            result = Err(e);
            break;
        }
    }
    if let Some(m) = metrics {
        m.lines.add(lines);
        m.bytes.add(text.len() as u64);
        if result.is_err() {
            m.parse_errors.inc();
        }
        if let Some(t0) = started {
            m.decode_ns
                .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
    result.map(|()| trace)
}

fn read_one(
    raw: &str,
    voc: &mut Vocabulary,
    trace: &mut Trace,
    last_time: &mut Option<crate::SimTime>,
    err: impl Fn(String) -> TraceParseError,
) -> Result<(), TraceParseError> {
    match parse_trace_line(raw).map_err(&err)? {
        None => {}
        Some(TraceLine::End(time)) => {
            if let Some(last) = *last_time {
                if time < last {
                    return Err(err(format!(
                        "end time {time} precedes last event at {last}"
                    )));
                }
            }
            trace.set_end_time(time);
            // The end time advances the clock: a later event line may
            // not jump back before it (`Trace::push` would panic).
            *last_time = Some(time);
        }
        Some(TraceLine::Event {
            time,
            direction,
            name,
        }) => {
            if let Some(last) = *last_time {
                if time < last {
                    return Err(err(format!(
                        "timestamp {time} precedes previous event at {last}"
                    )));
                }
            }
            *last_time = Some(time);
            let name = voc.intern(name, direction);
            trace.push(name, time);
        }
    }
    Ok(())
}

/// Render a trace in the text format accepted by [`read_trace`].
pub fn write_trace(trace: &Trace, voc: &Vocabulary) -> String {
    let mut out = String::new();
    for e in trace.iter() {
        let _ = writeln!(
            out,
            "{} {} {}",
            e.time,
            voc.direction(e.name).label(),
            voc.resolve(e.name)
        );
    }
    // Only emit `end` when it adds information beyond the last event.
    let end = trace.end_time();
    if trace.is_empty() || end > trace.events().last().expect("non-empty").time {
        let _ = writeln!(out, "end {end}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimTime;

    #[test]
    fn read_basic_trace() {
        let mut voc = Vocabulary::new();
        let text = "# configuration phase\n10ns in set_imgAddr\n12ns in start\n\n20ns out set_irq\nend 100ns\n";
        let trace = read_trace(text, &mut voc).expect("parses");
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.end_time(), SimTime::from_ns(100));
        let set_irq = voc.lookup("set_irq").expect("interned");
        assert_eq!(voc.direction(set_irq), Direction::Output);
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let b = voc.output("b");
        let mut t = Trace::from_pairs([(SimTime::from_ns(1), a), (SimTime::from_us(2), b)]);
        t.set_end_time(SimTime::from_ms(1));
        let text = write_trace(&t, &voc);
        let mut voc2 = Vocabulary::new();
        let t2 = read_trace(&text, &mut voc2).expect("parses");
        assert_eq!(t2.len(), 2);
        assert_eq!(t2.end_time(), SimTime::from_ms(1));
        assert_eq!(voc2.resolve(t2.events()[0].name), "a");
        assert_eq!(voc2.resolve(t2.events()[1].name), "b");
        assert_eq!(voc2.direction(t2.events()[1].name), Direction::Output);
    }

    #[test]
    fn roundtrip_without_explicit_end() {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let t = Trace::from_pairs([(SimTime::from_ns(1), a)]);
        let text = write_trace(&t, &voc);
        assert!(!text.contains("end"), "no redundant end line: {text}");
        let mut voc2 = Vocabulary::new();
        let t2 = read_trace(&text, &mut voc2).expect("parses");
        assert_eq!(t2.end_time(), SimTime::from_ns(1));
    }

    #[test]
    fn empty_trace_roundtrip() {
        let voc = Vocabulary::new();
        let t = Trace::new();
        let text = write_trace(&t, &voc);
        let mut voc2 = Vocabulary::new();
        let t2 = read_trace(&text, &mut voc2).expect("parses");
        assert!(t2.is_empty());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let mut voc = Vocabulary::new();
        let err = read_trace("10ns in a\n5ns in b\n", &mut voc).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("precedes"));

        let err = read_trace("10ns sideways a\n", &mut voc).unwrap_err();
        assert!(err.message.contains("unknown direction"));

        let err = read_trace("10ns in\n", &mut voc).unwrap_err();
        assert!(err.message.contains("missing event name"));

        let err = read_trace("banana in a\n", &mut voc).unwrap_err();
        assert_eq!(err.line, 1);

        let err = read_trace("10ns in a extra\n", &mut voc).unwrap_err();
        assert!(err.message.contains("trailing"));

        let err = read_trace("end\n", &mut voc).unwrap_err();
        assert!(err.message.contains("requires a time"));

        let err = read_trace("10ns in a\nend 5ns\n", &mut voc).unwrap_err();
        assert!(err.message.contains("precedes last event"));

        // An event jumping back before a recorded end time must be a parse
        // error, not a `Trace::push` panic.
        let err = read_trace("end 100ns\n10ns in a\n", &mut voc).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("precedes"));
    }

    #[test]
    fn single_lines_parse_standalone() {
        assert_eq!(parse_trace_line("  # comment"), Ok(None));
        assert_eq!(parse_trace_line(""), Ok(None));
        let parsed = parse_trace_line("10ns out set_irq").unwrap().unwrap();
        assert_eq!(
            parsed,
            TraceLine::Event {
                time: SimTime::from_ns(10),
                direction: Direction::Output,
                name: "set_irq",
            }
        );
        assert_eq!(
            parse_trace_line("end 5us"),
            Ok(Some(TraceLine::End(SimTime::from_us(5))))
        );
        assert!(parse_trace_line("end 5us junk")
            .unwrap_err()
            .contains("trailing"));
    }

    #[test]
    fn observed_read_counts_lines_bytes_and_errors() {
        let registry = lomon_obs::Registry::new();
        let metrics = IoMetrics::register(&registry);
        let mut voc = Vocabulary::new();
        let text = "# comment\n10ns in a\nend 20ns\n";
        read_trace_observed(text, &mut voc, Some(&metrics)).expect("parses");
        assert_eq!(metrics.lines.get(), 3);
        assert_eq!(metrics.bytes.get(), text.len() as u64);
        assert_eq!(metrics.parse_errors.get(), 0);

        let bad = "10ns sideways a\n";
        read_trace_observed(bad, &mut voc, Some(&metrics)).unwrap_err();
        assert_eq!(metrics.lines.get(), 4);
        assert_eq!(metrics.parse_errors.get(), 1);

        // The unobserved entry point is byte-for-byte the same parser.
        let err = read_trace(bad, &mut voc).unwrap_err();
        assert!(err.message.contains("unknown direction"));
    }

    #[test]
    fn display_of_error() {
        let err = TraceParseError {
            line: 3,
            message: "boom".into(),
        };
        assert_eq!(err.to_string(), "trace line 3: boom");
    }
}
