//! # lomon-kernel — a deterministic discrete-event simulation kernel
//!
//! The SystemC-kernel substitute of this reproduction (see DESIGN.md): the
//! loose-ordering monitors only consume a totally ordered stream of
//! interface events plus the current simulated time, so any deterministic
//! DES kernel with events, delta cycles and (seeded) loose timing exercises
//! the same code paths as OSCI SystemC.
//!
//! * [`sched`] — the scheduler: time-ordered queue with delta cycles and
//!   insertion-order tie-breaking, one-shot callbacks, signals with
//!   end-of-delta update semantics, a seeded RNG for the paper's
//!   loose-timing `wait (90, 110, SC_NS)` idiom;
//! * [`process`] — `SC_METHOD`-style processes resumed by the kernel;
//! * [`event`] — `sc_event`-style notification objects.
//!
//! ```
//! use lomon_kernel::{Process, ProcessId, Kernel, Simulator};
//! use lomon_trace::SimTime;
//!
//! struct Blinker { blinks: u32 }
//! impl Process for Blinker {
//!     fn name(&self) -> &str { "blinker" }
//!     fn resume(&mut self, pid: ProcessId, k: &mut Kernel) {
//!         self.blinks += 1;
//!         if self.blinks < 3 {
//!             k.resume_in(pid, SimTime::from_ns(10));
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(42);
//! let pid = sim.add_process(Blinker { blinks: 0 });
//! sim.kernel().resume_in(pid, SimTime::ZERO);
//! sim.run(100);
//! assert_eq!(sim.now(), SimTime::from_ns(20));
//! ```

pub mod event;
pub mod process;
pub mod sched;

pub use event::EventId;
pub use process::{Process, ProcessId};
pub use sched::{Kernel, KernelStats, SignalId, Simulator};
