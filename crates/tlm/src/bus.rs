//! The bus: an address map routing transactions to target ports.
//!
//! In TLM-LT the bus is a combinational address decoder plus forwarding of
//! `b_transport` calls; here the decoder is explicit and the forwarding is
//! done by the platform (which owns the components), keeping the borrow
//! checker and the architecture honest at once.

use crate::payload::GenericPayload;

/// Identifier of a target port (assigned at mapping time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortId(pub usize);

/// One mapped address region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First address of the region.
    pub base: u64,
    /// Size in bytes (addresses `base..base+size`).
    pub size: u64,
    /// The target port that claims the region.
    pub port: PortId,
}

impl Region {
    fn contains(&self, address: u64) -> bool {
        address >= self.base && address - self.base < self.size
    }

    fn overlaps(&self, other: &Region) -> bool {
        self.base < other.base + other.size && other.base < self.base + self.size
    }
}

/// The address decoder.
#[derive(Debug, Clone, Default)]
pub struct AddressMap {
    regions: Vec<Region>,
}

impl AddressMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Map `base..base+size` to a new port; returns the port id.
    ///
    /// # Panics
    ///
    /// Panics if the region is empty or overlaps an existing one.
    pub fn map(&mut self, base: u64, size: u64) -> PortId {
        assert!(size > 0, "empty region");
        let region = Region {
            base,
            size,
            port: PortId(self.regions.len()),
        };
        for existing in &self.regions {
            assert!(
                !existing.overlaps(&region),
                "region {base:#x}+{size:#x} overlaps {existing:?}"
            );
        }
        self.regions.push(region);
        region.port
    }

    /// Decode an address into `(port, offset)`.
    pub fn decode(&self, address: u64) -> Option<(PortId, u64)> {
        self.regions
            .iter()
            .find(|r| r.contains(address))
            .map(|r| (r.port, address - r.base))
    }

    /// Decode a transaction; on failure, marks it with an address error.
    pub fn route(&self, payload: &mut GenericPayload) -> Option<(PortId, u64)> {
        match self.decode(payload.address) {
            Some(hit) => Some(hit),
            None => {
                payload.response = crate::payload::TlmResponse::AddressError;
                None
            }
        }
    }

    /// The mapped regions (for documentation dumps).
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::TlmResponse;

    #[test]
    fn decode_routes_by_region() {
        let mut map = AddressMap::new();
        let mem = map.map(0x0000, 0x1000);
        let ipu = map.map(0x2000, 0x100);
        assert_eq!(map.decode(0x0004), Some((mem, 0x4)));
        assert_eq!(map.decode(0x0fff), Some((mem, 0xfff)));
        assert_eq!(map.decode(0x2004), Some((ipu, 0x4)));
        assert_eq!(map.decode(0x1500), None);
        assert_eq!(map.decode(0x20ff), Some((ipu, 0xff)));
        assert_eq!(map.decode(0x2100), None);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_regions_rejected() {
        let mut map = AddressMap::new();
        map.map(0x0, 0x100);
        map.map(0x80, 0x100);
    }

    #[test]
    #[should_panic(expected = "empty region")]
    fn empty_region_rejected() {
        let mut map = AddressMap::new();
        map.map(0x0, 0);
    }

    #[test]
    fn route_marks_unmapped_addresses() {
        let mut map = AddressMap::new();
        map.map(0x0, 0x10);
        let mut t = GenericPayload::read(0x100);
        assert!(map.route(&mut t).is_none());
        assert_eq!(t.response, TlmResponse::AddressError);
        let mut t = GenericPayload::read(0x8);
        assert!(map.route(&mut t).is_some());
        assert_eq!(t.response, TlmResponse::Incomplete);
    }

    #[test]
    fn adjacent_regions_allowed() {
        let mut map = AddressMap::new();
        map.map(0x0, 0x100);
        map.map(0x100, 0x100); // touches, does not overlap
        assert_eq!(map.regions().len(), 2);
    }
}
