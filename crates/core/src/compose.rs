//! Composition of elementary recognizers (paper Section 6).
//!
//! * A **fragment** recognizer is the *synchronous parallel composition* of
//!   the recognizers of its ranges: every event of the fragment's span is
//!   fed to all of them, and their `ok`/`nok`/`err` outputs are aggregated.
//! * A **loose-ordering** recognizer composes fragment recognizers
//!   *sequentially*: the `ok` of fragment `F_j` — which fires on the first
//!   event of `F_{j+1}` — doubles as the `start` of `F_{j+1}`, delivered
//!   *with* that same event (the `start∧n` / `start∧C` entries of Fig. 5).
//!
//! Only the recognizers of the **active** fragment run for each observed
//! event; this is where the paper's `Θ(max_j |α(F_j)|)` per-event time bound
//! comes from.

use lomon_trace::{Name, NameSet};

use crate::ast::{Fragment, FragmentOp, LooseOrdering};
use crate::context::{cyclic_contexts, linear_contexts, RangeContext};
use crate::recognizer::{RangeCompletion, RangeOutput, RangeRecognizer};
use crate::verdict::ViolationKind;

/// Result of feeding one event to a fragment recognizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragmentStep {
    /// The event was consumed inside the fragment.
    Internal,
    /// The event was a stopping name and every range terminated cleanly
    /// (`ok`, or `nok` where the `∨` semantics allows skipping).
    Complete,
    /// A range recognizer rejected the event.
    Error {
        /// What went wrong.
        kind: ViolationKind,
        /// Index of the offending range inside the fragment.
        range: usize,
    },
}

/// Synchronous parallel composition of the range recognizers of a fragment.
#[derive(Debug, Clone)]
pub struct FragmentRecognizer {
    op: FragmentOp,
    ranges: Vec<RangeRecognizer>,
}

impl FragmentRecognizer {
    /// Build from a fragment and the per-range contexts (parallel arrays).
    pub fn new(fragment: &Fragment, contexts: Vec<RangeContext>) -> Self {
        assert_eq!(fragment.ranges.len(), contexts.len());
        FragmentRecognizer {
            op: fragment.op,
            ranges: fragment
                .ranges
                .iter()
                .cloned()
                .zip(contexts)
                .map(|(r, c)| RangeRecognizer::new(r, c))
                .collect(),
        }
    }

    /// The fragment's connective.
    pub fn op(&self) -> FragmentOp {
        self.op
    }

    /// The member recognizers.
    pub fn ranges(&self) -> &[RangeRecognizer] {
        &self.ranges
    }

    /// `α(F)`: the names of the member ranges.
    pub fn alphabet(&self) -> NameSet {
        self.ranges.iter().map(|r| r.range().name).collect()
    }

    /// Start without a coinciding event (root activation): all ranges to
    /// `s1`.
    pub fn start(&mut self) {
        for r in &mut self.ranges {
            r.start();
        }
    }

    /// Start coinciding with `name` (handover from the previous fragment):
    /// the owning range goes to `s3`, its siblings to `s2`.
    pub fn start_with(&mut self, name: Name) {
        for r in &mut self.ranges {
            r.start_with(name);
        }
    }

    /// Feed one event to every range recognizer and aggregate.
    pub fn step(&mut self, name: Name) -> FragmentStep {
        let mut completed = false;
        let mut participated = false;
        let mut error: Option<(ViolationKind, usize)> = None;
        for (idx, r) in self.ranges.iter_mut().enumerate() {
            match r.step(name) {
                RangeOutput::Progress => {}
                RangeOutput::Ok => {
                    completed = true;
                    participated = true;
                }
                RangeOutput::Nok => completed = true,
                RangeOutput::Err(kind) => {
                    if error.is_none() {
                        error = Some((kind, idx));
                    }
                }
            }
        }
        if let Some((kind, range)) = error {
            FragmentStep::Error { kind, range }
        } else if completed {
            // Under ∨ at least one range must have participated; the
            // automaton guarantees it (an all-`s2` fragment is impossible,
            // and all-`s1` errs), so this is an invariant, not a check.
            debug_assert!(
                participated || self.op == FragmentOp::All,
                "∨-fragment completed without any participating range"
            );
            FragmentStep::Complete
        } else {
            FragmentStep::Internal
        }
    }

    /// Whether the fragment could terminate *now* (every range either has a
    /// finished block or — under `∨` — never participated, and at least one
    /// block exists). This is the earliest-completion test used for the end
    /// of a timed implication's `Q`.
    pub fn can_complete(&self) -> bool {
        let mut any_complete = false;
        for r in &self.ranges {
            match r.completion() {
                RangeCompletion::Complete => any_complete = true,
                RangeCompletion::Incomplete => return false,
                RangeCompletion::NotParticipated => {
                    if self.op == FragmentOp::All {
                        return false;
                    }
                }
            }
        }
        any_complete
    }

    /// Whether no event of this fragment has been consumed yet (all ranges
    /// still in `s1`).
    pub fn untouched(&self) -> bool {
        self.ranges
            .iter()
            .all(|r| r.state() == crate::recognizer::RangeState::Waiting)
    }

    /// Whether the fragment could still consume another event without
    /// erroring — i.e. some range can consume its *own* name: it has not
    /// started its block yet, or it is counting below its maximum. Used by
    /// the timed monitor to decide when the end of `P` stops being movable.
    pub fn can_extend(&self) -> bool {
        use crate::recognizer::RangeState;
        self.ranges.iter().any(|r| match r.state() {
            RangeState::Waiting | RangeState::WaitingOther => true,
            RangeState::Counting => r.count() < r.range().max,
            _ => false,
        })
    }

    /// Names acceptable as the next event. Exact at the fragment level: a
    /// range's own name is acceptable while its block can still grow (or
    /// start), and the stopping names are acceptable exactly when the whole
    /// fragment [`can_complete`](FragmentRecognizer::can_complete).
    pub fn expected(&self) -> NameSet {
        use crate::recognizer::RangeState;
        let mut out = NameSet::new();
        for r in &self.ranges {
            let can_more = match r.state() {
                RangeState::Waiting | RangeState::WaitingOther => true,
                RangeState::Counting => r.count() < r.range().max,
                _ => false,
            };
            if can_more {
                out.insert(r.range().name);
            }
        }
        if self.can_complete() {
            // All recognizers of a fragment share the same accept set.
            out.union_with(&self.ranges[0].context().accept);
        }
        out
    }

    /// Hard reset: all ranges to `s0`.
    pub fn reset(&mut self) {
        for r in &mut self.ranges {
            r.reset();
        }
    }

    /// Total abstract operations of the member recognizers.
    pub fn ops(&self) -> u64 {
        self.ranges.iter().map(RangeRecognizer::ops).sum()
    }

    /// Total mutable state bits of the member recognizers.
    pub fn state_bits(&self) -> u64 {
        self.ranges.iter().map(RangeRecognizer::state_bits).sum()
    }
}

/// Result of feeding one event to a loose-ordering recognizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingStep {
    /// Consumed inside the active fragment.
    Progress,
    /// The active fragment completed and the event simultaneously started
    /// the next one.
    Handover {
        /// Index of the fragment that completed.
        from: usize,
        /// Index of the fragment that just started (in cyclic mode this may
        /// wrap to 0).
        to: usize,
    },
    /// Linear mode only: the last fragment completed on a stop-set event
    /// (the antecedent's trigger `i`), which was consumed.
    Complete,
    /// A recognizer rejected the event.
    Error {
        /// What went wrong.
        kind: ViolationKind,
        /// Index of the fragment that rejected.
        fragment: usize,
        /// Index of the offending range inside that fragment.
        range: usize,
    },
}

/// Sequential composition of fragment recognizers over a loose-ordering.
///
/// In **linear** mode (antecedent requirements) the chain ends on the stop
/// set (`{i}`); in **cyclic** mode (timed implications) the fragment after
/// the last is the first, so consecutive episodes chain without a gap.
#[derive(Debug, Clone)]
pub struct LooseOrderingRecognizer {
    fragments: Vec<FragmentRecognizer>,
    active: usize,
    cyclic: bool,
    started: bool,
}

impl LooseOrderingRecognizer {
    /// Build the linear recognizer of `ordering` terminated by `stop`.
    pub fn new_linear(ordering: &LooseOrdering, stop: &NameSet) -> Self {
        let contexts = linear_contexts(ordering, stop);
        Self::from_parts(&ordering.fragments, contexts, false)
    }

    /// Build the cyclic recognizer of a concatenated fragment chain.
    pub fn new_cyclic(fragments: &[Fragment]) -> Self {
        let contexts = cyclic_contexts(fragments);
        Self::from_parts(fragments, contexts, true)
    }

    fn from_parts(fragments: &[Fragment], contexts: Vec<Vec<RangeContext>>, cyclic: bool) -> Self {
        assert!(!fragments.is_empty(), "ordering must have fragments");
        LooseOrderingRecognizer {
            fragments: fragments
                .iter()
                .zip(contexts)
                .map(|(f, c)| FragmentRecognizer::new(f, c))
                .collect(),
            active: 0,
            cyclic,
            started: false,
        }
    }

    /// Activate: start the first fragment (no coinciding event).
    pub fn start(&mut self) {
        debug_assert!(!self.started, "already started");
        self.active = 0;
        self.fragments[0].start();
        self.started = true;
    }

    /// Reset everything and re-activate (a fresh episode for repeated
    /// antecedents).
    pub fn restart(&mut self) {
        for f in &mut self.fragments {
            f.reset();
        }
        self.started = false;
        self.start();
    }

    /// Feed one event (must be inside the root alphabet).
    pub fn step(&mut self, name: Name) -> OrderingStep {
        debug_assert!(self.started, "step before start");
        let from = self.active;
        match self.fragments[from].step(name) {
            FragmentStep::Internal => OrderingStep::Progress,
            FragmentStep::Error { kind, range } => OrderingStep::Error {
                kind,
                fragment: from,
                range,
            },
            FragmentStep::Complete => {
                if !self.cyclic && from + 1 == self.fragments.len() {
                    // The stop event (e.g. the trigger `i`) was consumed.
                    self.started = false;
                    OrderingStep::Complete
                } else {
                    let to = (from + 1) % self.fragments.len();
                    self.fragments[to].start_with(name);
                    self.active = to;
                    OrderingStep::Handover { from, to }
                }
            }
        }
    }

    /// The fragment recognizers.
    pub fn fragments(&self) -> &[FragmentRecognizer] {
        &self.fragments
    }

    /// `α` of the whole ordering: the union of the fragments' alphabets.
    ///
    /// For a linear (antecedent) recognizer this **excludes the stop set**
    /// (the trigger `i`), per the paper's definition of `α(L)`. Event
    /// routers must therefore not subscribe monitors by this set — a
    /// recognizer also reacts to its stop names; use
    /// `PropertyMonitor::alphabet` (which includes the trigger) or the
    /// per-range [`RangeRecognizer::interests`] for routing.
    pub fn alphabet(&self) -> NameSet {
        let mut set = NameSet::new();
        for f in &self.fragments {
            set.union_with(&f.alphabet());
        }
        set
    }

    /// Index of the active fragment.
    pub fn active_index(&self) -> usize {
        self.active
    }

    /// The active fragment recognizer.
    pub fn active_fragment(&self) -> &FragmentRecognizer {
        &self.fragments[self.active]
    }

    /// Whether the recognizer is activated and no event of the current
    /// episode has been consumed yet.
    pub fn is_quiescent(&self) -> bool {
        self.started && self.active == 0 && self.fragments[0].untouched()
    }

    /// Diagnostic: acceptable next events (of the active fragment).
    pub fn expected(&self) -> NameSet {
        if self.started {
            self.fragments[self.active].expected()
        } else {
            NameSet::new()
        }
    }

    /// Total abstract operations across all fragments.
    pub fn ops(&self) -> u64 {
        self.fragments.iter().map(FragmentRecognizer::ops).sum()
    }

    /// Mutable state bits: the fragments' recognizers plus the active-index
    /// register.
    pub fn state_bits(&self) -> u64 {
        let index_bits = u64::from(usize::BITS - self.fragments.len().max(1).leading_zeros());
        self.fragments
            .iter()
            .map(FragmentRecognizer::state_bits)
            .sum::<u64>()
            + index_bits
            + 1 // started flag
    }

    /// Hard reset without re-activation.
    pub fn reset(&mut self) {
        for f in &mut self.fragments {
            f.reset();
        }
        self.active = 0;
        self.started = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Range;
    use lomon_trace::{Name, Vocabulary};

    /// Fig. 4 ordering: `({n1,n2},∧) < ({n3[2,8],n4},∨) < n5`, stop `{i}`.
    struct Fix {
        n: Vec<Name>,
        i: Name,
        rec: LooseOrderingRecognizer,
    }

    fn fig4() -> Fix {
        let mut voc = Vocabulary::new();
        let n: Vec<Name> = (1..=5).map(|k| voc.input(&format!("n{k}"))).collect();
        let i = voc.input("i");
        let ordering = LooseOrdering::new(vec![
            Fragment::new(FragmentOp::All, vec![Range::once(n[0]), Range::once(n[1])]),
            Fragment::new(
                FragmentOp::Any,
                vec![Range::new(n[2], 2, 8), Range::once(n[3])],
            ),
            Fragment::singleton(Range::once(n[4])),
        ]);
        let mut rec = LooseOrderingRecognizer::new_linear(&ordering, &[i].into_iter().collect());
        rec.start();
        Fix { n, i, rec }
    }

    #[test]
    fn alphabet_is_union_of_fragment_alphabets() {
        let f = fig4();
        let alpha = f.rec.alphabet();
        for name in &f.n {
            assert!(alpha.contains(*name));
        }
        assert!(!alpha.contains(f.i), "the stop set is not part of α(L)");
        assert_eq!(alpha.len(), 5);
        assert_eq!(f.rec.fragments()[0].alphabet().len(), 2);
    }

    #[test]
    fn accepts_a_nominal_sequence() {
        let mut f = fig4();
        // n2 n1 | n3 n3 n3 | n5 | i
        assert_eq!(f.rec.step(f.n[1]), OrderingStep::Progress);
        assert_eq!(f.rec.step(f.n[0]), OrderingStep::Progress);
        assert_eq!(
            f.rec.step(f.n[2]),
            OrderingStep::Handover { from: 0, to: 1 }
        );
        assert_eq!(f.rec.step(f.n[2]), OrderingStep::Progress);
        assert_eq!(f.rec.step(f.n[2]), OrderingStep::Progress);
        assert_eq!(
            f.rec.step(f.n[4]),
            OrderingStep::Handover { from: 1, to: 2 }
        );
        assert_eq!(f.rec.step(f.i), OrderingStep::Complete);
    }

    #[test]
    fn any_fragment_accepts_both_orders_and_subsets() {
        // Both n3-block then n4, and n4 then n3-block, and n4 alone.
        let mut f = fig4();
        for ev in [f.n[0], f.n[1]] {
            f.rec.step(ev);
        }
        f.rec.step(f.n[3]); // n4 first (handover)
        f.rec.step(f.n[2]);
        f.rec.step(f.n[2]); // n3 block after
        assert_eq!(
            f.rec.step(f.n[4]),
            OrderingStep::Handover { from: 1, to: 2 }
        );

        let mut f = fig4();
        for ev in [f.n[0], f.n[1], f.n[3]] {
            f.rec.step(ev);
        }
        // n4 alone then n5: n3 skipped, allowed under ∨.
        assert_eq!(
            f.rec.step(f.n[4]),
            OrderingStep::Handover { from: 1, to: 2 }
        );
    }

    #[test]
    fn skipping_whole_fragment_errs() {
        let mut f = fig4();
        f.rec.step(f.n[0]);
        f.rec.step(f.n[1]);
        // n5 while fragment 1 has seen nothing: fragment 0 is still the
        // active one and n5 is in its Af set (a later-than-next name), so
        // the error is raised there.
        match f.rec.step(f.n[4]) {
            OrderingStep::Error { kind, fragment, .. } => {
                assert_eq!(kind, ViolationKind::AfterName);
                assert_eq!(fragment, 0);
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn missing_range_in_all_fragment_errs() {
        let mut f = fig4();
        f.rec.step(f.n[0]);
        // n3 while n2 has not occurred: fragment 0 incomplete.
        match f.rec.step(f.n[2]) {
            OrderingStep::Error {
                kind,
                fragment,
                range,
            } => {
                assert_eq!(kind, ViolationKind::MissingRange);
                assert_eq!(fragment, 0);
                assert_eq!(range, 1); // n2's recognizer
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn trigger_before_completion_errs() {
        let mut f = fig4();
        f.rec.step(f.n[0]);
        match f.rec.step(f.i) {
            OrderingStep::Error { kind, .. } => assert_eq!(kind, ViolationKind::AfterName),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn old_fragment_name_reoccurring_errs() {
        let mut f = fig4();
        for ev in [f.n[0], f.n[1], f.n[2], f.n[2]] {
            f.rec.step(ev);
        }
        match f.rec.step(f.n[0]) {
            OrderingStep::Error { kind, .. } => assert_eq!(kind, ViolationKind::BeforeName),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn restart_supports_a_second_episode() {
        let mut f = fig4();
        for ev in [f.n[0], f.n[1], f.n[3], f.n[4]] {
            f.rec.step(ev);
        }
        assert_eq!(f.rec.step(f.i), OrderingStep::Complete);
        f.rec.restart();
        assert!(f.rec.is_quiescent());
        assert_eq!(f.rec.step(f.n[1]), OrderingStep::Progress);
    }

    #[test]
    fn quiescence_and_expected() {
        let mut f = fig4();
        assert!(f.rec.is_quiescent());
        let exp = f.rec.expected();
        assert!(exp.contains(f.n[0]) && exp.contains(f.n[1]));
        assert!(!exp.contains(f.n[4]) && !exp.contains(f.i));
        f.rec.step(f.n[0]);
        assert!(!f.rec.is_quiescent());
        // After n1, only n2 is acceptable: n1's block is [1,1]-closed, and
        // the stopping names (n3, n4) need the ∧-fragment complete.
        let exp = f.rec.expected();
        assert!(exp.contains(f.n[1]));
        assert!(!exp.contains(f.n[0]) && !exp.contains(f.n[2]) && !exp.contains(f.n[3]));
        // Once complete, the next fragment's names become acceptable too.
        f.rec.step(f.n[1]);
        let exp = f.rec.expected();
        assert!(exp.contains(f.n[2]) && exp.contains(f.n[3]));
        assert!(!exp.contains(f.n[4]));
    }

    #[test]
    fn cyclic_mode_wraps_episodes() {
        // (a ⇒ b) as a 2-fragment ring.
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let b = voc.output("b");
        let fragments = vec![
            Fragment::singleton(Range::once(a)),
            Fragment::singleton(Range::once(b)),
        ];
        let mut rec = LooseOrderingRecognizer::new_cyclic(&fragments);
        rec.start();
        assert_eq!(rec.step(a), OrderingStep::Progress);
        assert_eq!(rec.step(b), OrderingStep::Handover { from: 0, to: 1 });
        // Next episode: a wraps back to fragment 0.
        assert_eq!(rec.step(a), OrderingStep::Handover { from: 1, to: 0 });
        assert_eq!(rec.step(b), OrderingStep::Handover { from: 0, to: 1 });
    }

    #[test]
    fn cyclic_mode_rejects_double_response() {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let b = voc.output("b");
        let fragments = vec![
            Fragment::singleton(Range::once(a)),
            Fragment::singleton(Range::once(b)),
        ];
        let mut rec = LooseOrderingRecognizer::new_cyclic(&fragments);
        rec.start();
        rec.step(a);
        rec.step(b);
        // A second b: fragment 1 is active, b is its own name but the block
        // is [1,1]: TooMany.
        match rec.step(b) {
            OrderingStep::Error { kind, .. } => assert_eq!(kind, ViolationKind::TooMany),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn fragment_can_complete_tracks_minima() {
        let mut f = fig4();
        f.rec.step(f.n[0]);
        assert!(!f.rec.active_fragment().can_complete());
        f.rec.step(f.n[1]);
        assert!(f.rec.active_fragment().can_complete());
        f.rec.step(f.n[2]); // handover to fragment 1, cpt=1 < 2
        assert!(!f.rec.active_fragment().can_complete());
        f.rec.step(f.n[2]);
        assert!(f.rec.active_fragment().can_complete());
    }

    #[test]
    fn ops_and_bits_aggregate() {
        let f = fig4();
        assert!(f.rec.state_bits() > 0);
        let mut f2 = fig4();
        f2.rec.step(f2.n[0]);
        assert!(f2.rec.ops() > 0);
    }

    #[test]
    fn reset_deactivates() {
        let mut f = fig4();
        f.rec.step(f.n[0]);
        f.rec.reset();
        assert!(!f.rec.is_quiescent()); // not started
        assert!(f.rec.expected().is_empty());
    }
}
