//! The discrete-event scheduler.
//!
//! A deterministic stand-in for the SystemC simulation kernel: simulated
//! time never goes backwards, simultaneous activations are ordered by
//! *delta cycles* and then by insertion order, and all nondeterminism
//! (loose timing) is drawn from one seeded RNG so every run is exactly
//! reproducible. The monitors of `lomon-core` only need (a) a totally
//! ordered stream of interface events and (b) the current simulated time —
//! which is why this kernel, rather than OSCI SystemC, preserves the
//! paper's behaviour (see DESIGN.md, substitutions).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lomon_trace::SimTime;

use crate::event::{EventId, EventRecord};
use crate::process::{Process, ProcessId};

/// What a scheduled entry does when dispatched.
#[derive(Debug)]
enum Action {
    /// Resume a process.
    Resume(ProcessId),
    /// Fire an event: wake every waiter registered at fire time.
    Notify(EventId),
    /// Run a one-shot callback.
    Call(usize),
    /// Apply pending signal updates (end of delta cycle).
    UpdateSignal(usize),
}

/// Priority-queue key: `(time, delta, seq)` — earlier time first, then
/// earlier delta round, then insertion order (determinism).
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    time: SimTime,
    delta: u64,
    seq: u64,
}

#[derive(Debug)]
struct Entry {
    key: Key,
    action: Action,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// Run statistics (useful for benches and regression tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Entries dispatched.
    pub dispatched: u64,
    /// Process resumptions.
    pub resumes: u64,
    /// Event notifications fired.
    pub notifications: u64,
    /// Delta cycles executed.
    pub delta_cycles: u64,
}

/// A deferred one-shot action.
type Callback = Box<dyn FnOnce(&mut Kernel)>;

/// The kernel state visible to processes while they run: clock, event
/// queue, events, signals and the seeded RNG. (The process table itself
/// lives in [`Simulator`], so a running process can never alias another.)
pub struct Kernel {
    now: SimTime,
    delta: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<Entry>>,
    events: Vec<EventRecord>,
    signals: Vec<SignalCell>,
    callbacks: Vec<Option<Callback>>,
    rng: StdRng,
    /// Statistics, publicly readable.
    pub stats: KernelStats,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.now)
            .field("queue_len", &self.queue.len())
            .field("events", &self.events.len())
            .field("signals", &self.signals.len())
            .finish()
    }
}

/// A kernel-managed signal: readers see the current value until the
/// end-of-delta update applies the pending write (SystemC `sc_signal`).
#[derive(Debug, Clone, Copy)]
struct SignalCell {
    current: u64,
    pending: Option<u64>,
}

/// Handle for a kernel-managed signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalId(usize);

impl Kernel {
    fn new(seed: u64) -> Self {
        Kernel {
            now: SimTime::ZERO,
            delta: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            events: Vec::new(),
            signals: Vec::new(),
            callbacks: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            stats: KernelStats::default(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn push(&mut self, time: SimTime, delta: u64, action: Action) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Entry {
            key: Key { time, delta, seq },
            action,
        }));
    }

    /// Resume `pid` after `delay` (SystemC `wait(delay)` / `next_trigger`).
    pub fn resume_in(&mut self, pid: ProcessId, delay: SimTime) {
        self.push(self.now + delay, 0, Action::Resume(pid));
    }

    /// Resume `pid` in the next delta cycle at the current time.
    pub fn resume_delta(&mut self, pid: ProcessId) {
        self.push(self.now, self.delta + 1, Action::Resume(pid));
    }

    /// Loose timing (the paper's `wait (90, 110, SC_NS)` idiom): resume
    /// after a uniformly drawn delay in `[lo, hi]`, from the seeded RNG.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn resume_between(&mut self, pid: ProcessId, lo: SimTime, hi: SimTime) {
        assert!(lo <= hi, "loose-timing interval is empty");
        let delay = SimTime::from_ps(self.rng.gen_range(lo.as_ps()..=hi.as_ps()));
        self.resume_in(pid, delay);
    }

    /// Draw a uniform value (components use this for data randomness so the
    /// whole run stays reproducible from the one seed).
    pub fn draw(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range(lo..=hi)
    }

    /// Create a new event.
    pub fn event(&mut self) -> EventId {
        self.events.push(EventRecord::default());
        EventId::from_index(self.events.len() - 1)
    }

    /// Register `pid` to be woken by the next notification of `event`
    /// (dynamic sensitivity; one-shot, like SystemC `wait(event)`).
    pub fn wait_event(&mut self, pid: ProcessId, event: EventId) {
        self.events[event.index()].waiters.push(pid);
    }

    /// Notify `event` after `delay` (zero = next delta cycle).
    pub fn notify(&mut self, event: EventId, delay: SimTime) {
        if delay == SimTime::ZERO {
            self.push(self.now, self.delta + 1, Action::Notify(event));
        } else {
            self.push(self.now + delay, 0, Action::Notify(event));
        }
    }

    /// Schedule a one-shot callback after `delay` — used for timeout checks
    /// (e.g. a timed monitor's deadline) and test instrumentation.
    pub fn call_in(&mut self, delay: SimTime, callback: impl FnOnce(&mut Kernel) + 'static) {
        self.callbacks.push(Some(Box::new(callback)));
        let id = self.callbacks.len() - 1;
        self.push(self.now + delay, 0, Action::Call(id));
    }

    /// Create a signal with an initial value.
    pub fn signal(&mut self, initial: u64) -> SignalId {
        self.signals.push(SignalCell {
            current: initial,
            pending: None,
        });
        SignalId(self.signals.len() - 1)
    }

    /// Read a signal's current value (pending writes are invisible until
    /// the end of the delta cycle).
    pub fn read_signal(&self, signal: SignalId) -> u64 {
        self.signals[signal.0].current
    }

    /// Write a signal; the value becomes visible in the next delta cycle.
    pub fn write_signal(&mut self, signal: SignalId, value: u64) {
        let cell = self.signals[signal.0];
        let schedule = cell.pending.is_none() && cell.current != value;
        if schedule {
            self.push(self.now, self.delta + 1, Action::UpdateSignal(signal.0));
        }
        self.signals[signal.0].pending = if cell.current != value {
            Some(value)
        } else {
            None
        };
    }

    /// Whether nothing remains to dispatch.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

/// The simulator: the kernel plus the process table.
pub struct Simulator {
    kernel: Kernel,
    processes: Vec<Box<dyn Process>>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("kernel", &self.kernel)
            .field("processes", &self.processes.len())
            .finish()
    }
}

impl Simulator {
    /// A simulator whose loose timing and data draws derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Simulator {
            kernel: Kernel::new(seed),
            processes: Vec::new(),
        }
    }

    /// Register a process; it is *not* scheduled automatically — call
    /// [`Kernel::resume_in`] (typically with zero delay) from setup code.
    pub fn add_process(&mut self, process: impl Process + 'static) -> ProcessId {
        self.processes.push(Box::new(process));
        ProcessId::from_index(self.processes.len() - 1)
    }

    /// Access the kernel (setup: creating events/signals, initial
    /// scheduling).
    pub fn kernel(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// Immutable kernel access.
    pub fn kernel_ref(&self) -> &Kernel {
        &self.kernel
    }

    /// Access a process by id (e.g. to read results after a run).
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn process(&self, pid: ProcessId) -> &dyn Process {
        self.processes[pid.index()].as_ref()
    }

    /// Mutable access to a process between dispatches.
    pub fn process_mut(&mut self, pid: ProcessId) -> &mut dyn Process {
        self.processes[pid.index()].as_mut()
    }

    /// Dispatch a single entry. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(entry)) = self.kernel.queue.pop() else {
            return false;
        };
        debug_assert!(entry.key.time >= self.kernel.now, "time went backwards");
        if entry.key.time > self.kernel.now {
            self.kernel.now = entry.key.time;
            self.kernel.delta = 0;
        }
        if entry.key.delta > self.kernel.delta {
            self.kernel.delta = entry.key.delta;
            self.kernel.stats.delta_cycles += 1;
        }
        self.kernel.stats.dispatched += 1;
        match entry.action {
            Action::Resume(pid) => {
                self.kernel.stats.resumes += 1;
                self.processes[pid.index()].resume(pid, &mut self.kernel);
            }
            Action::Notify(event) => {
                self.kernel.stats.notifications += 1;
                let waiters = std::mem::take(&mut self.kernel.events[event.index()].waiters);
                for pid in waiters {
                    self.kernel.stats.resumes += 1;
                    self.processes[pid.index()].resume(pid, &mut self.kernel);
                }
            }
            Action::Call(id) => {
                if let Some(callback) = self.kernel.callbacks[id].take() {
                    callback(&mut self.kernel);
                }
            }
            Action::UpdateSignal(ix) => {
                if let Some(v) = self.kernel.signals[ix].pending.take() {
                    self.kernel.signals[ix].current = v;
                }
            }
        }
        true
    }

    /// Run until the queue drains or `limit` entries have been dispatched.
    /// Returns the number of dispatched entries.
    pub fn run(&mut self, limit: u64) -> u64 {
        let mut n = 0;
        while n < limit && self.step() {
            n += 1;
        }
        n
    }

    /// Run until simulated time would exceed `until` (entries at `until`
    /// are still dispatched), or the queue drains; the clock is advanced to
    /// `until` at the end (like `sc_start(t)`).
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(Reverse(entry)) = self.kernel.queue.peek() {
            if entry.key.time > until {
                break;
            }
            self.step();
        }
        if self.kernel.now < until {
            self.kernel.now = until;
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// Run statistics.
    pub fn stats(&self) -> KernelStats {
        self.kernel.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A process that logs its resume times and re-schedules itself.
    struct Ticker {
        period: SimTime,
        remaining: u32,
        log: Rc<RefCell<Vec<SimTime>>>,
    }

    impl Process for Ticker {
        fn name(&self) -> &str {
            "ticker"
        }
        fn resume(&mut self, pid: ProcessId, k: &mut Kernel) {
            self.log.borrow_mut().push(k.now());
            if self.remaining > 0 {
                self.remaining -= 1;
                k.resume_in(pid, self.period);
            }
        }
    }

    #[test]
    fn periodic_process_advances_time() {
        let mut sim = Simulator::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let pid = sim.add_process(Ticker {
            period: SimTime::from_ns(10),
            remaining: 3,
            log: Rc::clone(&log),
        });
        sim.kernel().resume_in(pid, SimTime::ZERO);
        sim.run(100);
        let times: Vec<u64> = log.borrow().iter().map(|t| t.as_ns()).collect();
        assert_eq!(times, vec![0, 10, 20, 30]);
        assert_eq!(sim.now(), SimTime::from_ns(30));
        assert_eq!(sim.stats().resumes, 4);
    }

    #[test]
    fn same_time_entries_dispatch_in_insertion_order() {
        let mut sim = Simulator::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..3u64 {
            let log = Rc::clone(&log);
            sim.kernel().call_in(SimTime::from_ns(5), move |_k| {
                log.borrow_mut().push(tag);
            });
        }
        sim.run(10);
        assert_eq!(*log.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn events_wake_waiters() {
        struct Waiter {
            event: EventId,
            woken_at: Option<SimTime>,
            armed: bool,
        }
        impl Process for Waiter {
            fn name(&self) -> &str {
                "waiter"
            }
            fn resume(&mut self, pid: ProcessId, k: &mut Kernel) {
                if !self.armed {
                    self.armed = true;
                    k.wait_event(pid, self.event);
                } else {
                    self.woken_at = Some(k.now());
                }
            }
        }
        let mut sim = Simulator::new(1);
        let event = sim.kernel().event();
        let pid = sim.add_process(Waiter {
            event,
            woken_at: None,
            armed: false,
        });
        sim.kernel().resume_in(pid, SimTime::ZERO);
        sim.kernel().notify(event, SimTime::from_ns(42));
        sim.run(10);
        let waiter = sim.process(pid).downcast_ref::<Waiter>().expect("downcast");
        assert_eq!(waiter.woken_at, Some(SimTime::from_ns(42)));
    }

    #[test]
    fn delta_notification_fires_at_same_time_later_round() {
        let mut sim = Simulator::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let event = sim.kernel().event();
        {
            let log = Rc::clone(&log);
            sim.kernel().call_in(SimTime::ZERO, move |k| {
                log.borrow_mut().push("first");
                k.notify(event, SimTime::ZERO);
            });
        }
        {
            let log = Rc::clone(&log);
            sim.kernel().call_in(SimTime::ZERO, move |_k| {
                log.borrow_mut().push("second");
            });
        }
        sim.run(10);
        // The delta-notify lands after both zero-time callbacks.
        assert_eq!(*log.borrow(), vec!["first", "second"]);
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn signals_update_at_delta_boundary() {
        let mut sim = Simulator::new(1);
        let sig = sim.kernel().signal(0);
        let seen = Rc::new(RefCell::new(Vec::new()));
        {
            let seen = Rc::clone(&seen);
            sim.kernel().call_in(SimTime::ZERO, move |k| {
                k.write_signal(sig, 7);
                // Same delta: still the old value.
                seen.borrow_mut().push(k.read_signal(sig));
            });
        }
        {
            let seen = Rc::clone(&seen);
            sim.kernel().call_in(SimTime::from_ns(1), move |k| {
                seen.borrow_mut().push(k.read_signal(sig));
            });
        }
        sim.run(10);
        assert_eq!(*seen.borrow(), vec![0, 7]);
    }

    #[test]
    fn write_back_to_same_value_cancels_pending() {
        let mut sim = Simulator::new(1);
        let sig = sim.kernel().signal(3);
        sim.kernel().call_in(SimTime::ZERO, move |k| {
            k.write_signal(sig, 9);
            k.write_signal(sig, 3); // back to current: no change
        });
        sim.run(10);
        assert_eq!(sim.kernel().read_signal(sig), 3);
    }

    #[test]
    fn loose_timing_is_deterministic_per_seed() {
        fn run(seed: u64) -> Vec<u64> {
            let log = Rc::new(RefCell::new(Vec::new()));
            struct Loose {
                log: Rc<RefCell<Vec<u64>>>,
                n: u32,
            }
            impl Process for Loose {
                fn name(&self) -> &str {
                    "loose"
                }
                fn resume(&mut self, pid: ProcessId, k: &mut Kernel) {
                    self.log.borrow_mut().push(k.now().as_ps());
                    if self.n > 0 {
                        self.n -= 1;
                        k.resume_between(pid, SimTime::from_ns(90), SimTime::from_ns(110));
                    }
                }
            }
            let mut sim = Simulator::new(seed);
            let pid = sim.add_process(Loose {
                log: Rc::clone(&log),
                n: 5,
            });
            sim.kernel().resume_in(pid, SimTime::ZERO);
            sim.run(100);
            let v = log.borrow().clone();
            v
        }
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), run(8), "different seed, different schedule");
        // Delays stay inside the loose interval.
        let times = run(7);
        for pair in times.windows(2) {
            let delta = pair[1] - pair[0];
            assert!((90_000..=110_000).contains(&delta), "delay {delta}ps");
        }
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim = Simulator::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        for ns in [5u64, 15, 25] {
            let log = Rc::clone(&log);
            sim.kernel().call_in(SimTime::from_ns(ns), move |_k| {
                log.borrow_mut().push(ns);
            });
        }
        sim.run_until(SimTime::from_ns(20));
        assert_eq!(*log.borrow(), vec![5, 15]);
        assert_eq!(sim.now(), SimTime::from_ns(20));
        sim.run_until(SimTime::from_ns(30));
        assert_eq!(*log.borrow(), vec![5, 15, 25]);
    }

    #[test]
    fn draw_is_seed_deterministic() {
        let mut a = Simulator::new(11);
        let mut b = Simulator::new(11);
        let xs: Vec<u64> = (0..5).map(|_| a.kernel().draw(0, 100)).collect();
        let ys: Vec<u64> = (0..5).map(|_| b.kernel().draw(0, 100)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn stats_accumulate() {
        let mut sim = Simulator::new(1);
        sim.kernel().call_in(SimTime::ZERO, |_| {});
        sim.run(10);
        assert_eq!(sim.stats().dispatched, 1);
        assert!(sim.kernel_ref().is_idle());
    }
}
