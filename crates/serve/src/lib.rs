//! `lomon-serve` — a hardened monitoring daemon.
//!
//! The ROADMAP's "million users" deployment shape: one resident process
//! holding one compiled rulebook [`Engine`](lomon_engine::Engine),
//! multiplexing many concurrent NDJSON trace streams over TCP, each
//! stream monitored by a recycled zero-alloc
//! [`Session`](lomon_engine::Session). Robustness is the design center —
//! four cooperating mechanisms keep any one client's misbehavior strictly
//! its own problem:
//!
//! 1. **Per-stream fault isolation.** A parse error, protocol violation
//!    (time travel, oversized frame, invalid UTF-8) or mid-frame
//!    disconnect finalizes only the offending stream: it gets an
//!    `{"type": "error", …}` frame, its counter is bumped, its session is
//!    recycled. Handlers never panic; if one ever did, the `catch_unwind`
//!    fence contains it to that stream and `lomon_serve_panics_total`
//!    records the bug.
//! 2. **Backpressure and overload shedding.** The server never reads
//!    ahead of what it can process (TCP flow control is the per-stream
//!    ingest bound), frames are capped ([`ServeConfig::max_frame_bytes`])
//!    and dropped unbuffered past the cap, a global in-flight budget
//!    ([`ServeConfig::max_streams`]) sheds excess connections with an
//!    explicit `{"type": "overload"}` frame, slow verdict readers are cut
//!    off by the write timeout, and silent streams are reaped by the idle
//!    timeout.
//! 3. **Graceful lifecycle.** `POST /reload` on the admin endpoint
//!    compiles the new rulebook *aside*, atomically swaps it for new
//!    streams only (in-flight streams keep the program they pinned), and
//!    on any compile/lint failure answers `422` with every structured
//!    diagnostic while the old program keeps serving. `POST /shutdown`
//!    (or [`Server::begin_shutdown`]) drains: accepting stops, every
//!    in-flight stream flushes its final report, then the process exits.
//! 4. **Chaos-proven degradation.** The e2e suite injects torn frames,
//!    garbage bytes, slow-loris writers, abrupt resets and oversized
//!    lines while healthy streams run alongside — and asserts the healthy
//!    streams' verdict output is byte-identical to a fault-free run and
//!    the panic counter stays zero.
//!
//! # Protocol
//!
//! Everything is NDJSON: one JSON object per `\n`-terminated line, both
//! directions. On connect the server sends
//!
//! ```json
//! {"type": "ready", "generation": 1, "properties": 3, "backend": "fused"}
//! ```
//!
//! The client streams event frames (the same grammar `lomon watch
//! --format ndjson` reads; `dir` is optional):
//!
//! ```json
//! {"time": "10ns", "dir": "in", "name": "set_imgAddr"}
//! ```
//!
//! Verdicts are pushed as they finalize, watch-style, tagged with the
//! connection-local stream index:
//!
//! ```json
//! {"type": "verdict", "stream": 0, "property": "…", "index": 2, "verdict": "violated", "diagnostic": "…"}
//! ```
//!
//! `{"end": "500ns"}` finalizes the stream: open obligations get their
//! final deadline check at that time, remaining verdicts and one
//! `"final": false` line per still-open property are flushed, then a
//! summary frame closes the stream:
//!
//! ```json
//! {"type": "summary", "stream": 0, "ok": true, "events": 42, "violations": 0, "stats": {…}}
//! ```
//!
//! After `end` the connection stays open and the next stream (index + 1)
//! begins on the same recycled session. A clean EOF mid-stream finalizes
//! like an `end` at the last seen timestamp; EOF mid-frame is a torn
//! frame (counted, error frame best-effort). Unknown event names are
//! deliberately **not** interned (a client cannot grow server memory by
//! inventing names); their timestamps still advance the deadline sweep.
//!
//! # Quickstart
//!
//! ```bash
//! lomon serve --listen 127.0.0.1:7450 --admin 127.0.0.1:7451 rules.lomon &
//! printf '%s\n' '{"time": "10ns", "name": "set_imgAddr"}' '{"end": "1us"}' \
//!   | nc 127.0.0.1 7450
//! curl -s http://127.0.0.1:7451/health
//! curl -s -X POST --data-binary @new.rules http://127.0.0.1:7451/reload
//! curl -s -X POST http://127.0.0.1:7451/shutdown
//! ```

mod admin;
mod conn;
mod metrics;
mod pool;
mod program;
mod server;

pub use lomon_core::analysis::Diagnostic;
pub use metrics::ServeMetrics;
pub use server::{ServeConfig, Server, StartError};
