//! Golden tests for the Prometheus and NDJSON exposition formats, plus a
//! property test that histogram recording preserves totals and bucket
//! monotonicity.

use proptest::prelude::*;

use lomon_obs::{bucket_index, bucket_upper, Histogram, Registry, BUCKETS};

#[test]
fn prometheus_counter_and_gauge_golden() {
    let registry = Registry::new();
    registry
        .counter("lomon_events_total", "Events ingested")
        .add(42);
    registry
        .gauge("lomon_properties_live", "Live properties")
        .set(3.0);
    registry.gauge("lomon_smc_mean", "Mean estimate").set(0.125);
    assert_eq!(
        registry.render_prometheus(),
        "\
# HELP lomon_events_total Events ingested
# TYPE lomon_events_total counter
lomon_events_total 42
# HELP lomon_properties_live Live properties
# TYPE lomon_properties_live gauge
lomon_properties_live 3
# HELP lomon_smc_mean Mean estimate
# TYPE lomon_smc_mean gauge
lomon_smc_mean 0.125
"
    );
}

#[test]
fn prometheus_label_escaping() {
    let registry = Registry::new();
    registry
        .counter_with(
            "lomon_verdicts_total",
            "Final verdicts by kind",
            vec![("verdict", "pre\"sumably\\ satis\nfied".to_owned())],
        )
        .inc();
    let text = registry.render_prometheus();
    assert!(
        text.contains(r#"lomon_verdicts_total{verdict="pre\"sumably\\ satis\nfied"} 1"#),
        "escaped label missing from:\n{text}"
    );
}

#[test]
fn prometheus_histogram_buckets_are_cumulative() {
    let registry = Registry::new();
    let h = registry.histogram("lomon_span_ns", "Span durations");
    // Three observations in bucket le="1", one in le="2".
    h.record(1);
    h.record(1);
    h.record(1);
    h.record(2);
    let text = registry.render_prometheus();
    assert_eq!(
        text,
        "\
# HELP lomon_span_ns Span durations
# TYPE lomon_span_ns histogram
lomon_span_ns_bucket{le=\"0\"} 0
lomon_span_ns_bucket{le=\"1\"} 3
lomon_span_ns_bucket{le=\"2\"} 4
lomon_span_ns_bucket{le=\"+Inf\"} 4
lomon_span_ns_sum 5
lomon_span_ns_count 4
"
    );
}

#[test]
fn prometheus_empty_histogram_still_renders_inf_sum_count() {
    let registry = Registry::new();
    registry.histogram("lomon_span_ns", "Span durations");
    let text = registry.render_prometheus();
    assert!(text.contains("lomon_span_ns_bucket{le=\"+Inf\"} 0\n"));
    assert!(text.contains("lomon_span_ns_sum 0\n"));
    assert!(text.contains("lomon_span_ns_count 0\n"));
}

#[test]
fn ndjson_snapshot_golden() {
    let registry = Registry::new();
    registry
        .counter_with(
            "lomon_verdicts_total",
            "Final verdicts by kind",
            vec![("verdict", "satisfied".to_owned())],
        )
        .add(7);
    registry
        .counter_with(
            "lomon_verdicts_total",
            "Final verdicts by kind",
            vec![("verdict", "violated".to_owned())],
        )
        .add(2);
    let h = registry.histogram("lomon_span_ns", "Span durations");
    h.record(1);
    h.record(5);
    assert_eq!(
        registry.render_ndjson(),
        "\
{\"name\":\"lomon_verdicts_total\",\"kind\":\"counter\",\"series\":[\
{\"labels\":{\"verdict\":\"satisfied\"},\"value\":7},\
{\"labels\":{\"verdict\":\"violated\"},\"value\":2}]}
{\"name\":\"lomon_span_ns\",\"kind\":\"histogram\",\"series\":[\
{\"labels\":{},\"count\":2,\"sum\":6,\"buckets\":[[1,1],[5,2]]}]}
"
    );
}

#[test]
fn ndjson_lines_parse_as_json() {
    let registry = Registry::new();
    registry
        .counter_with(
            "lomon_io_lines_total",
            "Lines parsed",
            vec![("file", "a\"b\\c\nd".to_owned())],
        )
        .inc();
    registry.gauge("lomon_smc_mean", "Mean").set(0.5);
    for line in registry.render_ndjson().lines() {
        // Dependency-free sanity parse: balanced braces/quotes via the
        // trace-crate-independent check that serde would normally do.
        assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
        assert_eq!(
            line.bytes().filter(|&b| b == b'{').count(),
            line.bytes().filter(|&b| b == b'}').count()
        );
        assert!(line.contains("\"name\":"), "line: {line}");
    }
}

#[test]
fn registering_same_series_twice_returns_same_metric() {
    let registry = Registry::new();
    let a = registry.counter("lomon_events_total", "Events");
    let b = registry.counter("lomon_events_total", "Events");
    a.add(5);
    assert_eq!(b.get(), 5);
    // Output carries the family once.
    let text = registry.render_prometheus();
    assert_eq!(text.matches("# TYPE lomon_events_total").count(), 1);
}

#[test]
#[should_panic(expected = "different kinds")]
fn kind_mismatch_panics_at_registration() {
    let registry = Registry::new();
    registry.counter("lomon_events_total", "Events");
    registry.gauge("lomon_events_total", "Events");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_preserves_total_count_and_monotonicity(
        values in proptest::collection::vec(any::<u64>(), 0..200)
    ) {
        let h = Histogram::new();
        let mut expected_sum = 0u64;
        for &v in &values {
            h.record(v);
            expected_sum = expected_sum.wrapping_add(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), expected_sum);
        let counts = h.bucket_counts();
        prop_assert_eq!(counts.iter().sum::<u64>(), values.len() as u64);
        // Cumulative counts are monotone by construction; check bucket
        // assignment is consistent with the bucket bounds instead.
        for &v in &values {
            let index = bucket_index(v);
            prop_assert!(counts[index] > 0);
            prop_assert!(v <= bucket_upper(index));
            if index > 0 {
                prop_assert!(v > bucket_upper(index - 1));
            }
        }
    }

    #[test]
    fn bucket_index_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
        prop_assert!(bucket_index(hi) < BUCKETS);
    }
}
