//! Compiling a property set into an [`Engine`]: parse/validate *everything*
//! first, report every error, and build the inverted dispatch index once.

use std::sync::Arc;

use lomon_core::ast::Property;
use lomon_core::compiled::CompiledProgram;
use lomon_core::monitor::{build_monitor, PropertyMonitor};
use lomon_core::parse::{parse_property, ParseError};
use lomon_core::wf::WfError;
use lomon_trace::{Name, NameSet, Vocabulary};

use crate::session::{Backend, DispatchMode, Session};

/// Why one property of the set failed to compile. The engine never stops at
/// the first bad property: [`Engine::compile`] returns *all* failures so a
/// rulebook can be fixed in one pass.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// The property text did not parse.
    Parse {
        /// Position of the property in the compiled set.
        index: usize,
        /// The offending source text.
        source: String,
        /// The parse error, with its span into `source`.
        error: ParseError,
    },
    /// The property parsed but broke a well-formedness side condition.
    IllFormed {
        /// Position of the property in the compiled set.
        index: usize,
        /// The offending source text (or rendered AST).
        source: String,
        /// Every violated side condition.
        errors: Vec<WfError>,
    },
}

impl CompileError {
    /// Position of the failing property in the compiled set.
    pub fn index(&self) -> usize {
        match self {
            CompileError::Parse { index, .. } | CompileError::IllFormed { index, .. } => *index,
        }
    }

    /// Full human-readable rendering (multi-line for parse errors, which
    /// carry a caret into the source).
    pub fn display(&self, voc: &Vocabulary) -> String {
        match self {
            CompileError::Parse {
                index,
                source,
                error,
            } => format!(
                "property {}: {}",
                index + 1,
                error.display_with_source(source)
            ),
            CompileError::IllFormed {
                index,
                source,
                errors,
            } => {
                let all: Vec<String> = errors.iter().map(|e| e.display(voc)).collect();
                format!(
                    "property {} `{}` is ill-formed: {}",
                    index + 1,
                    source,
                    all.join("; ")
                )
            }
        }
    }
}

/// One validated property of the compiled set: the interpreter prototype
/// that [`Backend::Interp`] sessions clone, the lowered flat-table program
/// that [`Backend::Compiled`] sessions share, plus everything dispatch
/// needs precomputed.
#[derive(Debug, Clone)]
pub(crate) struct CompiledProperty {
    pub(crate) prototype: PropertyMonitor,
    pub(crate) program: Arc<CompiledProgram>,
    pub(crate) alphabet: NameSet,
    /// Shared so per-report property lines clone a pointer, not the text.
    pub(crate) display: Arc<str>,
    pub(crate) timed: bool,
}

/// A set of properties compiled once and shared by any number of
/// [`Session`]s. See the crate docs for the dispatch design.
#[derive(Debug, Clone)]
pub struct Engine {
    pub(crate) properties: Vec<CompiledProperty>,
    /// Inverted index in CSR form: the subscribers of name `n` are
    /// `sub_ids[sub_start[n] .. sub_start[n + 1]]` — one flat array, no
    /// per-name allocation to chase on the hot path. Names interned after
    /// compilation simply fall off the end (no subscribers).
    pub(crate) sub_start: Vec<u32>,
    pub(crate) sub_ids: Vec<u32>,
    /// Parallel to `sub_ids`: the subscriber's precomputed action-table row
    /// for the name — the index's routing hint to the compiled backend
    /// (unused by the interpreter, which re-projects internally).
    pub(crate) sub_bases: Vec<u32>,
    /// Ids of timed-implication properties (the only ones with deadlines).
    pub(crate) timed_ids: Vec<u32>,
    /// Dense id → is-timed flags: the per-step hot path reads this compact
    /// array instead of striding over the full [`CompiledProperty`] structs.
    pub(crate) timed_flags: Vec<bool>,
}

impl Engine {
    /// Parse and validate every property text against `voc`, then build the
    /// engine.
    ///
    /// # Errors
    ///
    /// Returns one [`CompileError`] per failing property — all of them, not
    /// just the first.
    pub fn compile<S: AsRef<str>>(
        texts: &[S],
        voc: &mut Vocabulary,
    ) -> Result<Engine, Vec<CompileError>> {
        let mut parsed = Vec::with_capacity(texts.len());
        let mut errors = Vec::new();
        for (index, text) in texts.iter().enumerate() {
            let text = text.as_ref();
            match parse_property(text, voc) {
                Ok(property) => parsed.push((index, text.to_owned(), property)),
                Err(error) => errors.push(CompileError::Parse {
                    index,
                    source: text.to_owned(),
                    error,
                }),
            }
        }
        let engine = Self::build(parsed, voc, &mut errors);
        if errors.is_empty() {
            Ok(engine)
        } else {
            errors.sort_by_key(CompileError::index);
            Err(errors)
        }
    }

    /// Build an engine from already-constructed ASTs (validated here).
    ///
    /// # Errors
    ///
    /// Returns one [`CompileError::IllFormed`] per property that breaks a
    /// well-formedness side condition.
    pub fn from_properties(
        properties: Vec<Property>,
        voc: &Vocabulary,
    ) -> Result<Engine, Vec<CompileError>> {
        let parsed = properties
            .into_iter()
            .enumerate()
            .map(|(index, p)| (index, p.display(voc), p))
            .collect();
        let mut errors = Vec::new();
        let engine = Self::build(parsed, voc, &mut errors);
        if errors.is_empty() {
            Ok(engine)
        } else {
            Err(errors)
        }
    }

    fn build(
        parsed: Vec<(usize, String, Property)>,
        voc: &Vocabulary,
        errors: &mut Vec<CompileError>,
    ) -> Engine {
        let mut properties = Vec::with_capacity(parsed.len());
        for (index, source, property) in parsed {
            let timed = matches!(property, Property::Timed(_));
            match build_monitor(property.clone(), voc) {
                Ok(prototype) => {
                    let alphabet = prototype.alphabet();
                    // `build_monitor` validated the property; lower it into
                    // the flat-table program the compiled backend runs on.
                    let program = Arc::new(CompiledProgram::lower(&property));
                    properties.push(CompiledProperty {
                        prototype,
                        program,
                        alphabet,
                        display: Arc::from(source),
                        timed,
                    });
                }
                Err(wf_errors) => errors.push(CompileError::IllFormed {
                    index,
                    source,
                    errors: wf_errors,
                }),
            }
        }

        let mut index = vec![Vec::new(); voc.len()];
        let mut timed_ids = Vec::new();
        let mut timed_flags = Vec::with_capacity(properties.len());
        for (id, compiled) in properties.iter().enumerate() {
            for name in compiled.alphabet.iter() {
                index[name.index()].push(id as u32);
            }
            if compiled.timed {
                timed_ids.push(id as u32);
            }
            timed_flags.push(compiled.timed);
        }
        let mut sub_start = Vec::with_capacity(index.len() + 1);
        let mut sub_ids = Vec::new();
        let mut sub_bases = Vec::new();
        sub_start.push(0);
        for (n, row) in index.iter().enumerate() {
            let name = Name::from_index(n);
            for &id in row {
                sub_ids.push(id);
                sub_bases.push(
                    properties[id as usize]
                        .program
                        .action_row(name)
                        .expect("subscription implies alphabet membership"),
                );
            }
            sub_start.push(sub_ids.len() as u32);
        }
        Engine {
            properties,
            sub_start,
            sub_ids,
            sub_bases,
            timed_ids,
            timed_flags,
        }
    }

    /// Number of compiled properties.
    pub fn len(&self) -> usize {
        self.properties.len()
    }

    /// Whether the rulebook is empty.
    pub fn is_empty(&self) -> bool {
        self.properties.is_empty()
    }

    /// The source text (or rendered AST) of property `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn property_display(&self, id: usize) -> &str {
        self.properties[id].display.as_ref()
    }

    /// The alphabet of property `id`, as computed at compile time.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn alphabet(&self, id: usize) -> &NameSet {
        &self.properties[id].alphabet
    }

    /// The ids of the properties subscribed to `name` — the index row an
    /// event of that name dispatches to.
    #[inline]
    pub fn subscribers(&self, name: Name) -> &[u32] {
        self.subscribers_with_bases(name).0
    }

    /// The subscriber ids of `name` together with each subscriber's
    /// precomputed action-table row (the routing hint consumed by
    /// [`lomon_core::compiled::CompiledMonitor::observe_routed`]).
    #[inline]
    pub(crate) fn subscribers_with_bases(&self, name: Name) -> (&[u32], &[u32]) {
        match self.sub_start.get(name.index()..name.index() + 2) {
            Some(bounds) => {
                let (s, e) = (bounds[0] as usize, bounds[1] as usize);
                (&self.sub_ids[s..e], &self.sub_bases[s..e])
            }
            None => (&[], &[]),
        }
    }

    /// Open a fresh session using indexed dispatch on the compiled
    /// (flat-table) backend — the defaults.
    pub fn session(&self) -> Session<'_> {
        self.session_with(DispatchMode::Indexed)
    }

    /// Open a fresh session with an explicit dispatch mode —
    /// [`DispatchMode::Broadcast`] is the naive baseline the benchmarks
    /// compare against. Runs on the default [`Backend::Compiled`].
    pub fn session_with(&self, mode: DispatchMode) -> Session<'_> {
        self.session_with_backend(mode, Backend::Compiled)
    }

    /// Open a fresh session with explicit dispatch mode *and* execution
    /// backend — [`Backend::Interp`] is the tree-walking differential
    /// oracle the compiled backend is checked against.
    pub fn session_with_backend(&self, mode: DispatchMode, backend: Backend) -> Session<'_> {
        Session::new(self, mode, backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_reports_every_error() {
        let mut voc = Vocabulary::new();
        let errors = Engine::compile(
            &[
                "all{a, b} << start once", // fine
                "all{unclosed << start",   // parse error
                "a << a once",             // ill-formed: trigger inside P
                "also { broken",           // parse error
            ],
            &mut voc,
        )
        .unwrap_err();
        assert_eq!(errors.len(), 3);
        assert_eq!(
            errors.iter().map(CompileError::index).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(matches!(errors[0], CompileError::Parse { .. }));
        assert!(matches!(errors[1], CompileError::IllFormed { .. }));
        let text = errors[1].display(&voc);
        assert!(text.contains("property 3"), "display: {text}");
    }

    #[test]
    fn index_maps_names_to_subscribers() {
        let mut voc = Vocabulary::new();
        let engine = Engine::compile(&["all{a, b} << start once", "b << go once"], &mut voc)
            .expect("compiles");
        assert_eq!(engine.len(), 2);
        let a = voc.lookup("a").unwrap();
        let b = voc.lookup("b").unwrap();
        assert_eq!(engine.subscribers(a), &[0]);
        assert_eq!(engine.subscribers(b), &[0, 1]);
        // A name interned only after compilation has no subscribers.
        let late = voc.input("latecomer");
        assert!(engine.subscribers(late).is_empty());
        assert!(engine.alphabet(1).contains(b));
        assert_eq!(engine.property_display(1), "b << go once");
    }

    #[test]
    fn timed_properties_are_tracked() {
        let mut voc = Vocabulary::new();
        let engine = Engine::compile(&["a << i once", "go => out:done within 50 ns"], &mut voc)
            .expect("compiles");
        assert_eq!(engine.timed_ids, vec![1]);
    }
}
