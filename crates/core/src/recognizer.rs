//! The elementary recognizer for a range — the paper's Fig. 5 automaton.
//!
//! One recognizer watches one range `R = n[u,v]` inside its recognition
//! context `(B, C, Ac, Af, s)` (see [`crate::context`]). The six states
//! follow the paper exactly:
//!
//! * `s0` — idle, waiting to be started;
//! * `s1` — started, waiting for the first `n`, no sibling range active;
//! * `s2` — started, waiting for the first `n`, *another* range of the same
//!   fragment is already being recognized;
//! * `s3` — counting occurrences of `n` in `cpt`;
//! * `s4` — this range's block is finished (minimum reached) and a sibling
//!   has taken over;
//! * `s5` — error sink.
//!
//! Termination is signalled by the outputs `ok` / `nok` (on a stopping name
//! from `Ac`), errors by `err`. Starting may coincide with an event — the
//! stopping event of the *previous* fragment is simultaneously the first
//! event of this one — which is why `s0` has the three entry transitions
//! `start∧n → s3`, `start∧C → s2` and plain `start → s1`.

use lomon_trace::{Name, NameSet};

use crate::ast::{FragmentOp, Range};
use crate::context::{NameClass, RangeContext};
use crate::verdict::ViolationKind;

/// The six automaton states of Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RangeState {
    /// `s0`: idle.
    Idle,
    /// `s1`: started, nothing of this fragment seen yet.
    Waiting,
    /// `s2`: started, a sibling range is active.
    WaitingOther,
    /// `s3`: counting occurrences of the range's own name.
    Counting,
    /// `s4`: block complete, sibling active.
    Done,
    /// `s5`: error sink.
    Error,
}

impl RangeState {
    /// The paper's name for the state (`s0` … `s5`).
    pub fn label(self) -> &'static str {
        match self {
            RangeState::Idle => "s0",
            RangeState::Waiting => "s1",
            RangeState::WaitingOther => "s2",
            RangeState::Counting => "s3",
            RangeState::Done => "s4",
            RangeState::Error => "s5",
        }
    }

    /// The dense state code `0..=5` (`s0` … `s5`), identical to the
    /// compiled backend's cell encoding — witness steps use it so
    /// transitions compare across backends.
    pub fn code(self) -> u8 {
        match self {
            RangeState::Idle => 0,
            RangeState::Waiting => 1,
            RangeState::WaitingOther => 2,
            RangeState::Counting => 3,
            RangeState::Done => 4,
            RangeState::Error => 5,
        }
    }
}

/// Output of one synchronous step of a recognizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeOutput {
    /// No terminal output this step.
    Progress,
    /// Recognition finished successfully (stopping name, minimum reached).
    Ok,
    /// Recognition stopped without this range having participated —
    /// acceptable inside an `∨` fragment.
    Nok,
    /// Error: the step violated the range's obligations.
    Err(ViolationKind),
}

impl RangeOutput {
    /// Whether this output terminates the fragment (ok or nok).
    pub fn is_terminal_ok(self) -> bool {
        matches!(self, RangeOutput::Ok | RangeOutput::Nok)
    }
}

/// The elementary recognizer for one range with its context (Fig. 5).
#[derive(Debug, Clone)]
pub struct RangeRecognizer {
    range: Range,
    ctx: RangeContext,
    state: RangeState,
    cpt: u32,
    ops: u64,
}

impl RangeRecognizer {
    /// Build a recognizer in state `s0` (idle).
    pub fn new(range: Range, ctx: RangeContext) -> Self {
        RangeRecognizer {
            range,
            ctx,
            state: RangeState::Idle,
            cpt: 0,
            ops: 0,
        }
    }

    /// The recognized range.
    pub fn range(&self) -> &Range {
        &self.range
    }

    /// The recognition context.
    pub fn context(&self) -> &RangeContext {
        &self.ctx
    }

    /// Current automaton state.
    pub fn state(&self) -> RangeState {
        self.state
    }

    /// Current occurrence count (meaningful in `s3`/`s4`).
    pub fn count(&self) -> u32 {
        self.cpt
    }

    /// The names this recognizer reacts to at all: its own name plus every
    /// name classified by its context `(B, C, Ac, Af)`. Anything outside
    /// this set leaves the automaton untouched, so an event router may skip
    /// the recognizer entirely for such events.
    pub fn interests(&self) -> NameSet {
        let mut set = NameSet::new();
        set.insert(self.range.name);
        set.union_with(&self.ctx.before);
        set.union_with(&self.ctx.concurrent);
        set.union_with(&self.ctx.accept);
        set.union_with(&self.ctx.after);
        set
    }

    /// `start` without a coinciding event: `s0 → s1`. Used when the root
    /// monitor is (re)activated.
    pub fn start(&mut self) {
        debug_assert_eq!(self.state, RangeState::Idle, "start from non-idle state");
        self.ops += 1; // state write
        self.state = RangeState::Waiting;
    }

    /// `start` coinciding with an event of this fragment (the previous
    /// fragment's stopping event): `start∧n → s3`, `start∧C → s2`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `name` belongs to this fragment (own name or a
    /// sibling's), which the composition guarantees.
    pub fn start_with(&mut self, name: Name) {
        debug_assert_eq!(self.state, RangeState::Idle, "start from non-idle state");
        self.ops += 2; // classification + state write
        if name == self.range.name {
            self.cpt = 1;
            self.state = RangeState::Counting;
        } else {
            debug_assert!(
                self.ctx.concurrent.contains(name),
                "start_with on a name outside the fragment"
            );
            self.state = RangeState::WaitingOther;
        }
    }

    /// One synchronous step on `name`. Names outside the root alphabet must
    /// be projected away by the caller; they are treated as no-ops here.
    pub fn step(&mut self, name: Name) -> RangeOutput {
        let class = match self.classify_counted(name) {
            Some(c) => c,
            None => return RangeOutput::Progress,
        };
        self.ops += 1; // state dispatch
        match self.state {
            RangeState::Idle | RangeState::Error => RangeOutput::Progress,
            RangeState::Waiting => self.step_waiting(class),
            RangeState::WaitingOther => self.step_waiting_other(class),
            RangeState::Counting => self.step_counting(class),
            RangeState::Done => self.step_done(class),
        }
    }

    /// Classification with the measured cost of the short-circuited
    /// membership tests (1 for own … 5 for before).
    fn classify_counted(&mut self, name: Name) -> Option<NameClass> {
        let class = self.ctx.classify(self.range.name, name);
        self.ops += match class {
            Some(NameClass::Own) => 1,
            Some(NameClass::Concurrent) => 2,
            Some(NameClass::Accept) => 3,
            Some(NameClass::After) => 4,
            Some(NameClass::Before) => 5,
            None => 5,
        };
        class
    }

    fn fail(&mut self, kind: ViolationKind) -> RangeOutput {
        self.ops += 1; // state write
        self.state = RangeState::Error;
        RangeOutput::Err(kind)
    }

    fn finish_ok(&mut self) -> RangeOutput {
        self.ops += 1; // state write
        self.state = RangeState::Idle;
        RangeOutput::Ok
    }

    /// `s1`: started, nothing of the fragment seen yet.
    fn step_waiting(&mut self, class: NameClass) -> RangeOutput {
        match class {
            NameClass::Own => {
                self.ops += 2; // counter init + state write
                self.cpt = 1;
                self.state = RangeState::Counting;
                RangeOutput::Progress
            }
            NameClass::Concurrent => {
                self.ops += 1;
                self.state = RangeState::WaitingOther;
                RangeOutput::Progress
            }
            // `Af ∨ B ∨ Ac / err`: a stopping name while *nothing* of the
            // fragment has started means the fragment was skipped entirely.
            NameClass::Accept => self.fail(ViolationKind::PrematureStop),
            NameClass::After => self.fail(ViolationKind::AfterName),
            NameClass::Before => self.fail(ViolationKind::BeforeName),
        }
    }

    /// `s2`: started, sibling active, own name not yet seen.
    fn step_waiting_other(&mut self, class: NameClass) -> RangeOutput {
        match class {
            NameClass::Own => {
                self.ops += 2;
                self.cpt = 1;
                self.state = RangeState::Counting;
                RangeOutput::Progress
            }
            NameClass::Concurrent => RangeOutput::Progress, // self-loop
            NameClass::Accept => {
                self.ops += 1; // semantics test
                match self.ctx.semantics {
                    // `[s=∨] Ac/nok`: never participated, allowed.
                    FragmentOp::Any => {
                        self.ops += 1;
                        self.state = RangeState::Idle;
                        RangeOutput::Nok
                    }
                    // `[s=∧] Ac/err`: required range missing.
                    FragmentOp::All => self.fail(ViolationKind::MissingRange),
                }
            }
            NameClass::After => self.fail(ViolationKind::AfterName),
            NameClass::Before => self.fail(ViolationKind::BeforeName),
        }
    }

    /// `s3`: counting occurrences.
    fn step_counting(&mut self, class: NameClass) -> RangeOutput {
        match class {
            NameClass::Own => {
                self.ops += 1; // counter compare
                if self.cpt < self.range.max {
                    self.ops += 1; // counter increment
                    self.cpt += 1;
                    RangeOutput::Progress
                } else {
                    // `[cpt=v] n/err`
                    self.fail(ViolationKind::TooMany)
                }
            }
            NameClass::Concurrent => {
                self.ops += 1; // counter compare
                if self.cpt >= self.range.min {
                    // `[cpt>=u] C/ → s4`
                    self.ops += 1;
                    self.state = RangeState::Done;
                    RangeOutput::Progress
                } else {
                    // `[cpt<u] C/err`
                    self.fail(ViolationKind::PrematureInterrupt)
                }
            }
            NameClass::Accept => {
                self.ops += 1; // counter compare
                if self.cpt >= self.range.min {
                    // `[cpt>=u] Ac/ok`
                    self.finish_ok()
                } else {
                    // `[cpt<u] Ac/err`
                    self.fail(ViolationKind::PrematureStop)
                }
            }
            NameClass::After => self.fail(ViolationKind::AfterName),
            NameClass::Before => self.fail(ViolationKind::BeforeName),
        }
    }

    /// `s4`: block complete, sibling active.
    fn step_done(&mut self, class: NameClass) -> RangeOutput {
        match class {
            // `Af ∨ B ∨ n / err`: the block already closed.
            NameClass::Own => self.fail(ViolationKind::BlockSplit),
            NameClass::Concurrent => RangeOutput::Progress, // self-loop
            NameClass::Accept => self.finish_ok(),
            NameClass::After => self.fail(ViolationKind::AfterName),
            NameClass::Before => self.fail(ViolationKind::BeforeName),
        }
    }

    /// Whether this range, *as it stands*, is compatible with the fragment
    /// terminating now: either its block is complete, or it never
    /// participated (acceptable only under `∨`, which the fragment-level
    /// aggregation checks).
    pub fn completion(&self) -> RangeCompletion {
        match self.state {
            RangeState::Counting if self.cpt >= self.range.min => RangeCompletion::Complete,
            RangeState::Done => RangeCompletion::Complete,
            RangeState::Counting => RangeCompletion::Incomplete,
            RangeState::Waiting | RangeState::WaitingOther => RangeCompletion::NotParticipated,
            RangeState::Idle => RangeCompletion::NotParticipated,
            RangeState::Error => RangeCompletion::Incomplete,
        }
    }

    /// The names acceptable as the next event, from this recognizer's local
    /// point of view (diagnostics).
    pub fn expected(&self) -> NameSet {
        let mut out = NameSet::new();
        match self.state {
            RangeState::Idle | RangeState::Error => {}
            RangeState::Waiting => {
                out.insert(self.range.name);
                out.union_with(&self.ctx.concurrent);
            }
            RangeState::WaitingOther => {
                out.insert(self.range.name);
                out.union_with(&self.ctx.concurrent);
                if self.ctx.semantics == FragmentOp::Any {
                    out.union_with(&self.ctx.accept);
                }
            }
            RangeState::Counting => {
                if self.cpt < self.range.max {
                    out.insert(self.range.name);
                }
                if self.cpt >= self.range.min {
                    out.union_with(&self.ctx.concurrent);
                    out.union_with(&self.ctx.accept);
                }
            }
            RangeState::Done => {
                out.union_with(&self.ctx.concurrent);
                out.union_with(&self.ctx.accept);
            }
        }
        out
    }

    /// Hard reset to `s0`.
    pub fn reset(&mut self) {
        self.state = RangeState::Idle;
        self.cpt = 0;
    }

    /// Abstract operations executed so far (see `lomon_core::complexity`).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Mutable state footprint: 3 bits of automaton state plus a counter
    /// wide enough for `v` — the paper's "Boolean and bounded Integer
    /// variables" measure.
    pub fn state_bits(&self) -> u64 {
        3 + counter_bits(self.range.max)
    }

    /// Graphviz DOT rendering of this recognizer's automaton, with the
    /// concrete `u`, `v` substituted — regenerates the paper's Fig. 5.
    pub fn dot(&self, voc: &lomon_trace::Vocabulary) -> String {
        let n = voc.resolve(self.range.name);
        let (u, v) = (self.range.min, self.range.max);
        let mut s = String::new();
        s.push_str("digraph range_recognizer {\n  rankdir=LR;\n");
        s.push_str("  node [shape=circle];\n  s5 [shape=doublecircle];\n");
        s.push_str(&format!(
            "  label=\"recognizer for {n}[{u},{v}] (ok/nok/err per Fig. 5)\";\n"
        ));
        let edges = [
            ("s0", "s1", "start".to_owned()),
            ("s0", "s3", format!("start∧{n} / cpt:=1")),
            ("s0", "s2", "start∧C".to_owned()),
            ("s1", "s3", format!("{n} / cpt:=1")),
            ("s1", "s2", "C".to_owned()),
            ("s1", "s5", "Af∨B∨Ac / err".to_owned()),
            ("s2", "s3", format!("{n} / cpt:=1")),
            ("s2", "s2", "C".to_owned()),
            ("s2", "s0", "[s=∨] Ac / nok".to_owned()),
            ("s2", "s5", "[s=∧] Ac / err".to_owned()),
            ("s2", "s5", "Af∨B / err".to_owned()),
            ("s3", "s3", format!("[cpt<{v}] {n} / cpt+=1")),
            ("s3", "s5", format!("[cpt={v}] {n} / err")),
            ("s3", "s4", format!("[cpt>={u}] C")),
            ("s3", "s5", format!("[cpt<{u}] C∨Ac / err")),
            ("s3", "s0", format!("[cpt>={u}] Ac / ok")),
            ("s3", "s5", "Af∨B / err".to_owned()),
            ("s4", "s4", "C".to_owned()),
            ("s4", "s0", "Ac / ok".to_owned()),
            ("s4", "s5", format!("Af∨B∨{n} / err")),
            ("s5", "s5", "true / err".to_owned()),
        ];
        for (from, to, label) in edges {
            s.push_str(&format!("  {from} -> {to} [label=\"{label}\"];\n"));
        }
        s.push_str("}\n");
        s
    }
}

/// How a range relates to a potential fragment termination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeCompletion {
    /// Block finished (count within `[u,v]`).
    Complete,
    /// Participating but below the minimum (or in error).
    Incomplete,
    /// Never participated.
    NotParticipated,
}

/// Bits needed to store a counter bounded by `max`.
pub fn counter_bits(max: u32) -> u64 {
    u64::from(32 - max.max(1).leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Fragment, LooseOrdering};
    use crate::context::linear_contexts;
    use lomon_trace::{Name, Vocabulary};

    /// Build the Fig. 4 recognizer for `n3[2,8]` with context
    /// `s=∨, B={n1,n2}, C={n4}, Ac={n5}, Af={i}`.
    struct Fix {
        voc: Vocabulary,
        n: Vec<Name>,
        i: Name,
        rec: RangeRecognizer,
    }

    fn fig4_recognizer() -> Fix {
        let mut voc = Vocabulary::new();
        let n: Vec<Name> = (1..=5).map(|k| voc.input(&format!("n{k}"))).collect();
        let i = voc.input("i");
        let ordering = LooseOrdering::new(vec![
            Fragment::new(FragmentOp::All, vec![Range::once(n[0]), Range::once(n[1])]),
            Fragment::new(
                FragmentOp::Any,
                vec![Range::new(n[2], 2, 8), Range::once(n[3])],
            ),
            Fragment::singleton(Range::once(n[4])),
        ]);
        let ctxs = linear_contexts(&ordering, &[i].into_iter().collect());
        let rec = RangeRecognizer::new(Range::new(n[2], 2, 8), ctxs[1][0].clone());
        Fix { voc, n, i, rec }
    }

    #[test]
    fn starts_idle_then_waits() {
        let mut f = fig4_recognizer();
        assert_eq!(f.rec.state(), RangeState::Idle);
        f.rec.start();
        assert_eq!(f.rec.state(), RangeState::Waiting);
    }

    #[test]
    fn interests_cover_own_name_and_context_sets() {
        let f = fig4_recognizer();
        let interests = f.rec.interests();
        // Own n3, B = {n1, n2}, C = {n4}, Ac = {n5}, Af = {i}.
        for name in &f.n {
            assert!(interests.contains(*name));
        }
        assert!(interests.contains(f.i));
        assert_eq!(interests.len(), 6);
    }

    #[test]
    fn start_with_own_name_counts_immediately() {
        let mut f = fig4_recognizer();
        f.rec.start_with(f.n[2]);
        assert_eq!(f.rec.state(), RangeState::Counting);
        assert_eq!(f.rec.count(), 1);
    }

    #[test]
    fn start_with_sibling_waits_in_s2() {
        let mut f = fig4_recognizer();
        f.rec.start_with(f.n[3]);
        assert_eq!(f.rec.state(), RangeState::WaitingOther);
    }

    #[test]
    fn counting_to_minimum_then_accept_is_ok() {
        let mut f = fig4_recognizer();
        f.rec.start();
        assert_eq!(f.rec.step(f.n[2]), RangeOutput::Progress);
        assert_eq!(f.rec.step(f.n[2]), RangeOutput::Progress);
        assert_eq!(f.rec.count(), 2);
        assert_eq!(f.rec.step(f.n[4]), RangeOutput::Ok);
        assert_eq!(f.rec.state(), RangeState::Idle);
    }

    #[test]
    fn accept_below_minimum_errs() {
        let mut f = fig4_recognizer();
        f.rec.start();
        f.rec.step(f.n[2]); // cpt = 1 < u = 2
        assert_eq!(
            f.rec.step(f.n[4]),
            RangeOutput::Err(ViolationKind::PrematureStop)
        );
        assert_eq!(f.rec.state(), RangeState::Error);
    }

    #[test]
    fn exceeding_maximum_errs() {
        let mut f = fig4_recognizer();
        f.rec.start();
        for _ in 0..8 {
            assert_eq!(f.rec.step(f.n[2]), RangeOutput::Progress);
        }
        assert_eq!(f.rec.count(), 8);
        assert_eq!(f.rec.step(f.n[2]), RangeOutput::Err(ViolationKind::TooMany));
    }

    #[test]
    fn sibling_interrupt_after_min_parks_in_s4() {
        let mut f = fig4_recognizer();
        f.rec.start();
        f.rec.step(f.n[2]);
        f.rec.step(f.n[2]);
        assert_eq!(f.rec.step(f.n[3]), RangeOutput::Progress);
        assert_eq!(f.rec.state(), RangeState::Done);
        // Stopping name from s4 gives ok.
        assert_eq!(f.rec.step(f.n[4]), RangeOutput::Ok);
    }

    #[test]
    fn sibling_interrupt_below_min_errs() {
        let mut f = fig4_recognizer();
        f.rec.start();
        f.rec.step(f.n[2]); // cpt = 1 < 2
        assert_eq!(
            f.rec.step(f.n[3]),
            RangeOutput::Err(ViolationKind::PrematureInterrupt)
        );
    }

    #[test]
    fn own_name_after_block_closed_errs() {
        let mut f = fig4_recognizer();
        f.rec.start();
        f.rec.step(f.n[2]);
        f.rec.step(f.n[2]);
        f.rec.step(f.n[3]); // -> s4
        assert_eq!(
            f.rec.step(f.n[2]),
            RangeOutput::Err(ViolationKind::BlockSplit)
        );
    }

    #[test]
    fn nok_when_skipped_in_any_fragment() {
        let mut f = fig4_recognizer();
        f.rec.start();
        f.rec.step(f.n[3]); // sibling starts -> s2
        assert_eq!(f.rec.state(), RangeState::WaitingOther);
        assert_eq!(f.rec.step(f.n[4]), RangeOutput::Nok);
        assert_eq!(f.rec.state(), RangeState::Idle);
    }

    #[test]
    fn missing_range_in_all_fragment_errs() {
        // n1 in the ∧ fragment F1, sibling n2, Ac = {n3, n4}.
        let mut f = fig4_recognizer();
        let ordering = LooseOrdering::new(vec![
            Fragment::new(
                FragmentOp::All,
                vec![Range::once(f.n[0]), Range::once(f.n[1])],
            ),
            Fragment::singleton(Range::once(f.n[4])),
        ]);
        let ctxs = linear_contexts(&ordering, &[f.i].into_iter().collect());
        let mut rec = RangeRecognizer::new(Range::once(f.n[0]), ctxs[0][0].clone());
        rec.start();
        assert_eq!(rec.step(f.n[1]), RangeOutput::Progress); // sibling -> s2
        assert_eq!(
            rec.step(f.n[4]),
            RangeOutput::Err(ViolationKind::MissingRange)
        );
        let _ = &mut f;
    }

    #[test]
    fn accept_in_s1_errs_fragment_skipped() {
        let mut f = fig4_recognizer();
        f.rec.start();
        assert_eq!(
            f.rec.step(f.n[4]),
            RangeOutput::Err(ViolationKind::PrematureStop)
        );
    }

    #[test]
    fn before_and_after_names_err_everywhere() {
        // In s1.
        let mut f = fig4_recognizer();
        f.rec.start();
        assert_eq!(
            f.rec.step(f.n[0]),
            RangeOutput::Err(ViolationKind::BeforeName)
        );
        // In s3.
        let mut f = fig4_recognizer();
        f.rec.start();
        f.rec.step(f.n[2]);
        assert_eq!(f.rec.step(f.i), RangeOutput::Err(ViolationKind::AfterName));
        // In s4.
        let mut f = fig4_recognizer();
        f.rec.start();
        f.rec.step(f.n[2]);
        f.rec.step(f.n[2]);
        f.rec.step(f.n[3]);
        assert_eq!(
            f.rec.step(f.n[1]),
            RangeOutput::Err(ViolationKind::BeforeName)
        );
    }

    #[test]
    fn error_state_is_sticky() {
        let mut f = fig4_recognizer();
        f.rec.start();
        f.rec.step(f.i);
        assert_eq!(f.rec.state(), RangeState::Error);
        assert_eq!(f.rec.step(f.n[2]), RangeOutput::Progress);
        assert_eq!(f.rec.state(), RangeState::Error);
    }

    #[test]
    fn completion_reporting() {
        let mut f = fig4_recognizer();
        assert_eq!(f.rec.completion(), RangeCompletion::NotParticipated);
        f.rec.start();
        assert_eq!(f.rec.completion(), RangeCompletion::NotParticipated);
        f.rec.step(f.n[2]);
        assert_eq!(f.rec.completion(), RangeCompletion::Incomplete);
        f.rec.step(f.n[2]);
        assert_eq!(f.rec.completion(), RangeCompletion::Complete);
    }

    #[test]
    fn expected_sets_track_state() {
        let mut f = fig4_recognizer();
        assert!(f.rec.expected().is_empty()); // idle
        f.rec.start();
        let exp = f.rec.expected();
        assert!(exp.contains(f.n[2]) && exp.contains(f.n[3]));
        assert!(!exp.contains(f.n[4]));
        f.rec.step(f.n[2]); // cpt = 1 < u: only n3 would be wrong…
        let exp = f.rec.expected();
        assert!(exp.contains(f.n[2]));
        assert!(!exp.contains(f.n[3]) && !exp.contains(f.n[4]));
        f.rec.step(f.n[2]); // cpt = 2 ≥ u
        let exp = f.rec.expected();
        assert!(exp.contains(f.n[2]) && exp.contains(f.n[3]) && exp.contains(f.n[4]));
    }

    #[test]
    fn expected_at_max_excludes_own_name() {
        let mut f = fig4_recognizer();
        f.rec.start();
        for _ in 0..8 {
            f.rec.step(f.n[2]);
        }
        let exp = f.rec.expected();
        assert!(!exp.contains(f.n[2]));
        assert!(exp.contains(f.n[4]));
    }

    #[test]
    fn reset_returns_to_idle() {
        let mut f = fig4_recognizer();
        f.rec.start();
        f.rec.step(f.n[2]);
        f.rec.reset();
        assert_eq!(f.rec.state(), RangeState::Idle);
        assert_eq!(f.rec.count(), 0);
    }

    #[test]
    fn ops_accumulate_and_bits_are_constant() {
        let mut f = fig4_recognizer();
        let bits = f.rec.state_bits();
        assert_eq!(bits, 3 + 4); // 8 needs 4 counter bits
        let before = f.rec.ops();
        f.rec.start();
        f.rec.step(f.n[2]);
        assert!(f.rec.ops() > before);
        assert_eq!(f.rec.state_bits(), bits);
    }

    #[test]
    fn counter_bits_examples() {
        assert_eq!(counter_bits(1), 1);
        assert_eq!(counter_bits(8), 4);
        assert_eq!(counter_bits(60_000), 16);
    }

    #[test]
    fn dot_export_mentions_states_and_bounds() {
        let f = fig4_recognizer();
        let dot = f.rec.dot(&f.voc);
        for s in ["s0", "s1", "s2", "s3", "s4", "s5"] {
            assert!(dot.contains(s));
        }
        assert!(dot.contains("n3[2,8]"));
        assert!(dot.contains("digraph"));
    }

    #[test]
    fn state_labels_match_paper() {
        assert_eq!(RangeState::Idle.label(), "s0");
        assert_eq!(RangeState::Error.label(), "s5");
    }
}
