//! Vendored, self-contained stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace cannot pull
//! the real `rand` from crates.io. This crate implements exactly the API
//! surface the workspace uses — [`rngs::StdRng`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] and
//! [`seq::SliceRandom::shuffle`] — over a deterministic SplitMix64 generator.
//! Determinism per seed is the property the callers rely on (reproducible
//! schedules, stimuli and mutations); statistical quality beyond that is
//! best-effort but SplitMix64 passes BigCrush and is more than adequate for
//! test workloads.

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random value generation (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Generate a value uniformly distributed in `range`.
    ///
    /// Panics on an empty range, matching the real `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range [0,1]");
        // 53 random mantissa bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        // SplitMix64 expansion of the 64-bit seed, as rand_core does.
        let mut x = state;
        for chunk in bytes.chunks_mut(8) {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Ranges that can be sampled from (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform sample from `[0, width)` by widening multiply (Lemire reduction
/// without the rejection loop; the bias is < 2⁻⁶⁴·width, irrelevant here).
#[inline]
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    ((u128::from(rng.next_u64()) * u128::from(width)) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u64;
                self.start + sample_below(rng, width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end - start) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + sample_below(rng, width + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(sample_below(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i64).wrapping_sub(start as i64) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(sample_below(rng, width + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(9usize..=9);
            assert_eq!(z, 9);
        }
    }

    #[test]
    fn gen_range_covers_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
