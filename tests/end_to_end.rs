//! End-to-end integration: property text → monitors → virtual platform →
//! recorded trace → offline replay → same verdicts, across all the
//! workspace crates.

use lomon::core::monitor::build_monitor;
use lomon::core::parse::parse_property;
use lomon::core::verdict::{run_to_end, Verdict};
use lomon::gen::{generate, GeneratorConfig};
use lomon::psl::monitor::PslMonitor;
use lomon::tlm::platform::FaultPlan;
use lomon::tlm::scenario::{run_scenario, ScenarioConfig};
use lomon::trace::{read_trace, write_trace, Vocabulary};

#[test]
fn platform_run_replays_identically_through_files() {
    let report = run_scenario(&ScenarioConfig::nominal(1234));
    assert!(report.all_ok());

    // Serialize the trace, read it back into a fresh vocabulary.
    let text = write_trace(&report.trace, &report.vocabulary);
    let mut voc = Vocabulary::new();
    let trace = read_trace(&text, &mut voc).expect("file parses");
    assert_eq!(trace.len(), report.trace.len());
    assert_eq!(trace.end_time(), report.trace.end_time());

    // Replay through freshly built monitors: verdicts match online ones.
    let config = ScenarioConfig::nominal(1234);
    let gl = config.gallery_size;
    let budget = config.budget.as_ns();
    for (label, property_text) in [
        (
            "example2",
            "all{set_imgAddr, set_glAddr, set_glSize} << start repeated".to_owned(),
        ),
        (
            "example3",
            format!("start => read_img[{gl},{gl}] < set_irq within {budget} ns"),
        ),
    ] {
        let property = parse_property(&property_text, &mut voc).expect("parses");
        let mut monitor = build_monitor(property, &voc).expect("well-formed");
        let offline = run_to_end(&mut monitor, &trace);
        let online = report
            .verdicts
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, v)| *v)
            .expect("verdict present");
        assert_eq!(offline, online, "{label}");
    }
}

#[test]
fn faulty_platform_trace_fails_replay_with_both_strategies() {
    let config = ScenarioConfig::nominal(55).with_fault(FaultPlan {
        skip_register: Some(0),
        ..FaultPlan::default()
    });
    let report = run_scenario(&config);
    assert!(!report.all_ok());

    // Offline, the untimed Example 2 violation must be caught by the Drct
    // monitor *and* the ViaPSL monitor.
    let mut voc = report.vocabulary.clone();
    let property = parse_property(
        "all{set_imgAddr, set_glAddr, set_glSize} << start repeated",
        &mut voc,
    )
    .expect("parses");

    let mut drct = build_monitor(property.clone(), &voc).expect("well-formed");
    assert_eq!(run_to_end(&mut drct, &report.trace), Verdict::Violated);

    let mut viapsl = PslMonitor::build(&property).expect("translatable");
    assert_eq!(run_to_end(&mut viapsl, &report.trace), Verdict::Violated);
}

#[test]
fn generated_stimuli_accepted_by_both_strategies() {
    let mut voc = Vocabulary::new();
    let property = parse_property(
        "all{set_imgAddr, set_glAddr, set_glSize} << start repeated",
        &mut voc,
    )
    .expect("parses");
    for seed in 0..10 {
        let trace = generate(&property, &GeneratorConfig::new(seed)).trace;
        let mut drct = build_monitor(property.clone(), &voc).expect("well-formed");
        assert!(run_to_end(&mut drct, &trace).is_ok(), "seed {seed}");
        let mut viapsl = PslMonitor::build(&property).expect("translatable");
        assert!(run_to_end(&mut viapsl, &trace).is_ok(), "seed {seed}");
    }
}

#[test]
fn umbrella_reexports_are_usable() {
    // The umbrella crate exposes every subsystem under one namespace.
    let mut voc = lomon::trace::Vocabulary::new();
    let a = voc.input("a");
    let i = voc.input("i");
    let property = lomon::core::Antecedent::new(
        lomon::core::LooseOrdering::new(vec![lomon::core::Fragment::singleton(
            lomon::core::Range::once(a),
        )]),
        i,
        false,
    );
    let mut monitor = lomon::core::AntecedentMonitor::new(property);
    let verdict = run_to_end(&mut monitor, &lomon::trace::Trace::from_names([a, i]));
    assert_eq!(verdict, Verdict::Satisfied);

    // Kernel + sync are reachable too.
    let mut sim = lomon::kernel::Simulator::new(1);
    sim.kernel()
        .call_in(lomon::trace::SimTime::from_ns(5), |_| {});
    assert_eq!(sim.run(10), 1);
    let net = lomon::sync::RangeRecognizerNet::new(1, 2, false);
    assert!(net.state_bits() > 0);
}

#[test]
fn fig6_pipeline_smoke() {
    // The full Fig. 6 pipeline (property → workload → both strategies)
    // runs for every row; detailed shape checks live in lomon-bench.
    use lomon::psl::complexity::viapsl_cost;
    for text in [
        "n << i repeated",
        "all{n1, n2, n3, n4} << i once",
        "n1 => n2 < n3 < n4 within 1 ms",
    ] {
        let mut voc = Vocabulary::new();
        let property = parse_property(text, &mut voc).expect(text);
        let workload = generate(&property, &GeneratorConfig::new(2)).trace;
        let drct = lomon::core::complexity::measure_drct(&property, &workload, &voc);
        let psl = viapsl_cost(&property).expect("translatable");
        assert!(
            (drct.ops_per_event as u64) < psl.ops_per_event,
            "{text}: Drct must be cheaper"
        );
    }
}
