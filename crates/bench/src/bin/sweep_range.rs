//! Sweep S1: monitor cost vs range width `v` for `n[1,v] << i repeated` —
//! the curve behind Fig. 6 rows 1/2 and 5/6. Drct stays flat; ViaPSL grows
//! as `v²`.
//!
//! Run with `cargo run -p lomon-bench --bin sweep_range --release`.

use lomon_bench::scale;
use lomon_core::complexity::{drct_cost, measure_drct};
use lomon_gen::{generate, GeneratorConfig};
use lomon_psl::complexity::viapsl_cost;
use lomon_trace::Vocabulary;

fn main() {
    println!("S1 — cost vs range width, property n[1,v] << i repeated");
    println!(
        "{:>8} {:>14} {:>14} {:>18} {:>18}",
        "v", "Drct ops", "Drct bits", "ViaPSL ops", "ViaPSL bits"
    );
    for width in [1u32, 2, 4, 8, 16, 64, 256, 1024, 4096, 16384, 60000] {
        let mut voc = Vocabulary::new();
        let property = lomon_bench::range_sweep_property(width, &mut voc);
        let workload = generate(
            &property,
            &GeneratorConfig {
                episodes: 2,
                ..GeneratorConfig::new(7)
            },
        )
        .trace;
        let measured = measure_drct(&property, &workload, &voc);
        let bits = drct_cost(&property).state_bits;
        let psl = viapsl_cost(&property).expect("translatable");
        println!(
            "{:>8} {:>14} {:>14} {:>18} {:>18}",
            width,
            scale(measured.ops_per_event),
            bits,
            scale(psl.ops_per_event as f64),
            scale(psl.state_bits as f64),
        );
    }
    println!();
    println!("Expected shape: Drct columns constant (modulo counter bits);");
    println!("ViaPSL columns quadratic in v — the paper's headline contrast.");
}
