//! Top-level monitor construction: validate a property, build the matching
//! direct monitor.

use lomon_trace::{NameSet, SimTime, TimedEvent, Vocabulary};

use crate::antecedent::AntecedentMonitor;
use crate::ast::Property;
use crate::timed::TimedImplicationMonitor;
use crate::verdict::{Monitor, Verdict, Violation};
use crate::wf::{self, WfError};
use crate::witness::Witness;

/// A monitor for either root pattern, built by [`build_monitor`].
///
/// Dispatches the [`Monitor`] interface to the underlying
/// [`AntecedentMonitor`] or [`TimedImplicationMonitor`].
#[derive(Debug, Clone)]
pub enum PropertyMonitor {
    /// Monitor of an antecedent requirement.
    Antecedent(AntecedentMonitor),
    /// Monitor of a timed implication constraint.
    Timed(TimedImplicationMonitor),
}

/// Validate `property` against `voc` and build its direct (Drct) monitor.
///
/// # Errors
///
/// Returns the well-formedness violations if the property breaks any Fig. 3
/// side condition.
///
/// # Example
///
/// ```
/// use lomon_core::ast::{Antecedent, Fragment, FragmentOp, LooseOrdering, Range};
/// use lomon_core::monitor::build_monitor;
/// use lomon_trace::Vocabulary;
///
/// let mut voc = Vocabulary::new();
/// let a = voc.input("set_addr");
/// let start = voc.input("start");
/// let prop = Antecedent::new(
///     LooseOrdering::new(vec![Fragment::singleton(Range::once(a))]),
///     start,
///     true,
/// )
/// .into();
/// let monitor = build_monitor(prop, &voc).expect("well-formed");
/// ```
pub fn build_monitor(
    property: Property,
    voc: &Vocabulary,
) -> Result<PropertyMonitor, Vec<WfError>> {
    let property = wf::validate(property, voc)?;
    Ok(match property {
        Property::Antecedent(a) => PropertyMonitor::Antecedent(AntecedentMonitor::new(a)),
        Property::Timed(t) => PropertyMonitor::Timed(TimedImplicationMonitor::new(t)),
    })
}

impl PropertyMonitor {
    /// The monitored property.
    pub fn property(&self) -> Property {
        match self {
            PropertyMonitor::Antecedent(m) => Property::Antecedent(m.property().clone()),
            PropertyMonitor::Timed(m) => Property::Timed(m.property().clone()),
        }
    }

    /// The property's alphabet `α` (derived from the AST at construction):
    /// the only names this monitor can react to. Event routers (such as
    /// `lomon-engine`'s inverted dispatch index) subscribe the monitor to
    /// exactly these names and skip it for everything else.
    ///
    /// This is the owned counterpart of the borrowed
    /// [`Monitor::alphabet`](crate::verdict::Monitor::alphabet) accessor —
    /// usable without importing the trait, and guaranteed to be the very
    /// set the monitor projects events with.
    ///
    /// # Example
    ///
    /// ```
    /// use lomon_core::monitor::build_monitor;
    /// use lomon_core::parse::parse_property;
    /// use lomon_trace::Vocabulary;
    ///
    /// let mut voc = Vocabulary::new();
    /// let prop = parse_property("all{set_addr, set_size} << start once", &mut voc).unwrap();
    /// let monitor = build_monitor(prop, &voc).expect("well-formed");
    ///
    /// let alphabet = monitor.alphabet();
    /// assert_eq!(alphabet.len(), 3);
    /// assert!(alphabet.contains(voc.lookup("start").unwrap()));
    /// ```
    pub fn alphabet(&self) -> NameSet {
        Monitor::alphabet(self).clone()
    }

    /// Episodes in which the property's obligation was discharged
    /// non-vacuously: completed `P << i` episodes for antecedents,
    /// in-budget `Q` completions for timed implications.
    pub fn satisfied_episodes(&self) -> u64 {
        match self {
            PropertyMonitor::Antecedent(m) => m.satisfied_episodes(),
            PropertyMonitor::Timed(m) => m.satisfied_episodes(),
        }
    }

    /// Disable diagnostics (expected-set snapshots) on the wrapped monitor.
    pub fn without_diagnostics(self) -> Self {
        match self {
            PropertyMonitor::Antecedent(m) => PropertyMonitor::Antecedent(m.without_diagnostics()),
            PropertyMonitor::Timed(m) => PropertyMonitor::Timed(m.without_diagnostics()),
        }
    }
}

impl Monitor for PropertyMonitor {
    fn observe(&mut self, event: TimedEvent) -> Verdict {
        match self {
            PropertyMonitor::Antecedent(m) => m.observe(event),
            PropertyMonitor::Timed(m) => m.observe(event),
        }
    }

    fn advance_time(&mut self, now: SimTime) -> Verdict {
        match self {
            PropertyMonitor::Antecedent(m) => m.advance_time(now),
            PropertyMonitor::Timed(m) => m.advance_time(now),
        }
    }

    fn finish(&mut self, end_time: SimTime) -> Verdict {
        match self {
            PropertyMonitor::Antecedent(m) => m.finish(end_time),
            PropertyMonitor::Timed(m) => m.finish(end_time),
        }
    }

    fn verdict(&self) -> Verdict {
        match self {
            PropertyMonitor::Antecedent(m) => m.verdict(),
            PropertyMonitor::Timed(m) => m.verdict(),
        }
    }

    fn alphabet(&self) -> &NameSet {
        match self {
            PropertyMonitor::Antecedent(m) => m.alphabet(),
            PropertyMonitor::Timed(m) => m.alphabet(),
        }
    }

    fn expected(&self) -> NameSet {
        match self {
            PropertyMonitor::Antecedent(m) => m.expected(),
            PropertyMonitor::Timed(m) => m.expected(),
        }
    }

    fn violation(&self) -> Option<&Violation> {
        match self {
            PropertyMonitor::Antecedent(m) => m.violation(),
            PropertyMonitor::Timed(m) => m.violation(),
        }
    }

    fn deadline(&self) -> Option<SimTime> {
        match self {
            PropertyMonitor::Antecedent(m) => m.deadline(),
            PropertyMonitor::Timed(m) => m.deadline(),
        }
    }

    fn reset(&mut self) {
        match self {
            PropertyMonitor::Antecedent(m) => m.reset(),
            PropertyMonitor::Timed(m) => m.reset(),
        }
    }

    fn ops(&self) -> u64 {
        match self {
            PropertyMonitor::Antecedent(m) => m.ops(),
            PropertyMonitor::Timed(m) => m.ops(),
        }
    }

    fn state_bits(&self) -> u64 {
        match self {
            PropertyMonitor::Antecedent(m) => m.state_bits(),
            PropertyMonitor::Timed(m) => m.state_bits(),
        }
    }

    fn set_explain(&mut self, capacity: usize) {
        match self {
            PropertyMonitor::Antecedent(m) => m.set_explain(capacity),
            PropertyMonitor::Timed(m) => m.set_explain(capacity),
        }
    }

    fn witness(&self) -> Option<Witness> {
        match self {
            PropertyMonitor::Antecedent(m) => m.witness(),
            PropertyMonitor::Timed(m) => m.witness(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Antecedent, Fragment, LooseOrdering, Range, TimedImplication};
    use crate::verdict::run_to_end;
    use lomon_trace::Trace;

    #[test]
    fn build_rejects_ill_formed() {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let prop: Property = Antecedent::new(
            LooseOrdering::new(vec![Fragment::singleton(Range::once(a))]),
            a, // trigger inside P
            true,
        )
        .into();
        assert!(build_monitor(prop, &voc).is_err());
    }

    #[test]
    fn build_and_run_antecedent() {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let i = voc.input("i");
        let prop: Property = Antecedent::new(
            LooseOrdering::new(vec![Fragment::singleton(Range::once(a))]),
            i,
            false,
        )
        .into();
        let mut m = build_monitor(prop.clone(), &voc).expect("well-formed");
        assert_eq!(m.property(), prop);
        assert_eq!(
            run_to_end(&mut m, &Trace::from_names([a, i])),
            Verdict::Satisfied
        );
        m.reset();
        assert_eq!(
            run_to_end(&mut m, &Trace::from_names([i])),
            Verdict::Violated
        );
        assert!(m.violation().is_some());
    }

    #[test]
    fn build_and_run_timed() {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let o = voc.output("o");
        let prop: Property = TimedImplication::new(
            LooseOrdering::new(vec![Fragment::singleton(Range::once(a))]),
            LooseOrdering::new(vec![Fragment::singleton(Range::once(o))]),
            SimTime::from_ns(50),
        )
        .into();
        let mut m = build_monitor(prop, &voc).expect("well-formed");
        let trace = Trace::from_pairs([(SimTime::from_ns(10), a), (SimTime::from_ns(30), o)]);
        assert_eq!(run_to_end(&mut m, &trace), Verdict::PresumablySatisfied);
        assert!(m.alphabet().contains(a) && m.alphabet().contains(o));
        assert!(m.ops() > 0);
        assert!(m.state_bits() > 0);
        assert_eq!(m.deadline(), None);
    }

    #[test]
    fn dispatch_without_diagnostics() {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let i = voc.input("i");
        let prop: Property = Antecedent::new(
            LooseOrdering::new(vec![Fragment::singleton(Range::once(a))]),
            i,
            false,
        )
        .into();
        let mut m = build_monitor(prop, &voc)
            .expect("well-formed")
            .without_diagnostics();
        run_to_end(&mut m, &Trace::from_names([i]));
        assert!(m.violation().unwrap().expected.is_empty());
    }
}
