//! Interface names, simulated time, timed events and traces.
//!
//! This crate is the shared vocabulary of the whole `lomon` workspace. The
//! loose-ordering patterns of the DATE 2016 paper ("Efficient Monitoring of
//! Loose-Ordering Properties for SystemC/TLM", Romenska & Maraninchi) are
//! written over the *input/output interface* `(I, O)` of a component: an
//! event is the occurrence of one interface **name** (such as `set_imgAddr`
//! or `start`) at one instant of **simulated time**. Everything downstream —
//! the direct monitors, the PSL baseline, the stimuli generator and the
//! virtual platform — exchanges the types defined here:
//!
//! * [`Name`] — a cheap interned symbol for one interface name;
//! * [`Vocabulary`] — the interner, which also records each name's
//!   [`Direction`] (input or output, needed by the well-formedness rules);
//! * [`SimTime`] — simulated time as an integer number of picoseconds;
//! * [`TimedEvent`] — one name occurrence with its timestamp;
//! * [`Trace`] — a time-ordered sequence of events with projection and
//!   text-file I/O;
//! * [`RunLengthLexer`] — the "lexical analyzer" of the paper's Section 5
//!   that rewrites maximal runs `n…n` into per-length tokens, used by the
//!   translation of ranges to PSL.
//!
//! # Example
//!
//! ```
//! use lomon_trace::{Direction, SimTime, Trace, Vocabulary};
//!
//! let mut voc = Vocabulary::new();
//! let set_addr = voc.intern("set_imgAddr", Direction::Input);
//! let start = voc.intern("start", Direction::Input);
//!
//! let trace = Trace::from_pairs([(SimTime::from_ns(10), set_addr),
//!                                (SimTime::from_ns(25), start)]);
//! assert_eq!(trace.len(), 2);
//! assert_eq!(voc.resolve(trace.events()[1].name), "start");
//! ```

pub mod event;
pub mod frame;
pub mod io;
pub mod json;
pub mod lexer;
pub mod mmap;
pub mod name;
pub mod ndjson;
pub mod time;
pub mod trace;
pub mod vcd;
pub mod wire;

pub use event::TimedEvent;
pub use frame::{Frame, FrameDecoder};
pub use io::{
    parse_trace_line, read_trace, read_trace_observed, write_trace, IoMetrics, TraceLine,
    TraceParseError,
};
pub use json::json_escape;
pub use lexer::{LexedEvent, LexedToken, RunLengthLexer};
pub use mmap::MappedFile;
pub use name::{Direction, Name, NameSet, Vocabulary};
pub use ndjson::{
    parse_ndjson_line_ref, parse_stream_line, parse_stream_line_bytes, parse_stream_line_ref,
    StreamFormat, StreamLine, StreamLineRef,
};
pub use time::SimTime;
pub use trace::Trace;
pub use vcd::write_vcd;
pub use wire::{
    byte_lines, decode_events_into, decode_events_into_observed, parse_trace_line_bytes,
    read_trace_bytes, read_trace_bytes_into, read_trace_bytes_observed, DecodeSummary,
};
