//! Property tests for the trace infrastructure: text-format roundtrips,
//! projection laws, and run-length lexing invariants.

use proptest::prelude::*;

use lomon_trace::{
    read_trace, write_trace, Direction, Name, NameSet, RunLengthLexer, SimTime, Trace, Vocabulary,
};

fn build_trace(steps: &[(u8, u16)], voc: &mut Vocabulary) -> Trace {
    let mut clock = 0u64;
    let mut trace = Trace::new();
    for &(name_ix, gap) in steps {
        clock += u64::from(gap);
        let name = if name_ix % 2 == 0 {
            voc.intern(&format!("in{}", name_ix % 8), Direction::Input)
        } else {
            voc.intern(&format!("out{}", name_ix % 8), Direction::Output)
        };
        trace.push(name, SimTime::from_ps(clock));
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// write → read is the identity on events, directions and end time.
    #[test]
    fn text_format_roundtrip(
        steps in prop::collection::vec((any::<u8>(), 0u16..5000), 0..60),
        extra_end in 0u64..10_000,
    ) {
        let mut voc = Vocabulary::new();
        let mut trace = build_trace(&steps, &mut voc);
        trace.set_end_time(trace.end_time() + SimTime::from_ps(extra_end));

        let text = write_trace(&trace, &voc);
        let mut voc2 = Vocabulary::new();
        let back = read_trace(&text, &mut voc2).expect("roundtrip parses");

        prop_assert_eq!(back.len(), trace.len());
        prop_assert_eq!(back.end_time(), trace.end_time());
        for (a, b) in trace.iter().zip(back.iter()) {
            prop_assert_eq!(a.time, b.time);
            prop_assert_eq!(voc.resolve(a.name), voc2.resolve(b.name));
            prop_assert_eq!(voc.direction(a.name), voc2.direction(b.name));
        }
    }

    /// Projection is idempotent and commutes with intersection order.
    #[test]
    fn projection_laws(
        steps in prop::collection::vec((any::<u8>(), 0u16..100), 0..60),
        keep in prop::collection::vec(any::<bool>(), 16),
    ) {
        let mut voc = Vocabulary::new();
        let trace = build_trace(&steps, &mut voc);
        let alphabet: NameSet = voc
            .iter()
            .filter(|n| keep[n.index() % keep.len()])
            .collect();
        let once = trace.project(&alphabet);
        let twice = once.project(&alphabet);
        prop_assert_eq!(&once, &twice, "projection must be idempotent");
        prop_assert!(once.names().all(|n| alphabet.contains(n)));
        prop_assert_eq!(once.end_time(), trace.end_time());
    }

    /// Lexing never loses events: the run lengths of the tokens sum to the
    /// number of collapsible events, and non-collapsible names pass 1:1.
    #[test]
    fn lexer_conserves_events(
        steps in prop::collection::vec((0u8..6, 0u16..100), 0..80),
        collapse_mask in 0u8..64,
    ) {
        let mut voc = Vocabulary::new();
        let trace = build_trace(&steps, &mut voc);
        let collapsible: NameSet = voc
            .iter()
            .filter(|n| collapse_mask & (1 << (n.index() % 6)) != 0)
            .collect();
        let tokens = RunLengthLexer::lex_trace(collapsible.clone(), &trace);
        let total: u64 = tokens.iter().map(|t| u64::from(t.token.run)).sum();
        prop_assert_eq!(total, trace.len() as u64);
        // Tokens of non-collapsible names always have run 1.
        for t in &tokens {
            if !collapsible.contains(t.token.name) {
                prop_assert_eq!(t.token.run, 1);
            }
            prop_assert!(t.first_time <= t.last_time);
        }
        // Replaying the tokens reconstructs the original name sequence.
        let replayed: Vec<Name> = tokens
            .iter()
            .flat_map(|t| std::iter::repeat_n(t.token.name, t.token.run as usize))
            .collect();
        prop_assert_eq!(replayed, trace.names().collect::<Vec<_>>());
    }

    /// With per-name bounds, every emitted token of a bounded name is at
    /// most one over its bound (the eager overflow token).
    #[test]
    fn bounded_lexer_caps_runs(
        repeats in prop::collection::vec(1u32..12, 1..20),
        bound in 1u32..6,
    ) {
        let mut voc = Vocabulary::new();
        let n = voc.input("n");
        let sep = voc.input("sep");
        let mut clock = 0u64;
        let mut trace = Trace::new();
        for &r in &repeats {
            for _ in 0..r {
                clock += 1;
                trace.push(n, SimTime::from_ps(clock));
            }
            clock += 1;
            trace.push(sep, SimTime::from_ps(clock));
        }
        let mut lexer =
            RunLengthLexer::new([n].into_iter().collect::<NameSet>()).with_bound(n, bound);
        let mut tokens = Vec::new();
        for &e in trace.iter() {
            tokens.extend(lexer.push(e));
        }
        tokens.extend(lexer.finish());
        for t in tokens.iter().filter(|t| t.token.name == n) {
            prop_assert!(t.token.run <= bound + 1, "run {} > bound+1", t.token.run);
        }
    }
}
