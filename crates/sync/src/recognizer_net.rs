//! The Fig. 5 range recognizer as a synchronous network.
//!
//! "The proposed constructions have been programmed in Lustre; it allows to
//! check their correctness with respect to the intuitive semantics […]
//! using automatic testing tools" (paper, Section 6). This module is that
//! second, independent encoding: the elementary recognizer expressed as
//! boolean/integer dataflow equations over the [`crate::network`] runtime —
//! one-hot state registers `s0..s5`, a counter register `cpt`, and
//! combinational `ok`/`nok`/`err` pulses.
//!
//! Property tests (see `tests/lustre_equivalence.rs`) drive this network
//! and the imperative [`lomon_core::recognizer::RangeRecognizer`] with the
//! same input sequences and require identical states and outputs at every
//! tick.

use crate::network::{Network, NetworkBuilder, Signal, Value};

/// The event classification fed to the network at each tick (at most one
/// per tick, mirroring the asynchronous interleaving of TLM models).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassInput {
    /// The range's own name `n`.
    Own,
    /// A sibling range's name (`C`).
    Concurrent,
    /// A stopping name (`Ac`).
    Accept,
    /// A later-than-next name (`Af`).
    After,
    /// A preceding fragment's name (`B`).
    Before,
}

/// Outputs of one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetOutput {
    /// Recognition finished successfully.
    pub ok: bool,
    /// Stopped without participating (allowed under `∨`).
    pub nok: bool,
    /// The tick violated the range's obligations.
    pub err: bool,
}

/// Mirror of [`lomon_core::recognizer::RangeState`] read back from the
/// one-hot registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetState {
    /// `s0`.
    Idle,
    /// `s1`.
    Waiting,
    /// `s2`.
    WaitingOther,
    /// `s3`.
    Counting,
    /// `s4`.
    Done,
    /// `s5`.
    Error,
}

/// The synchronous-network encoding of one range recognizer.
#[derive(Debug, Clone)]
pub struct RangeRecognizerNet {
    net: Network,
    start: Signal,
    n: Signal,
    c: Signal,
    ac: Signal,
    af: Signal,
    b: Signal,
    s: [Signal; 6],
    cpt: Signal,
    ok: Signal,
    nok: Signal,
    err: Signal,
}

impl RangeRecognizerNet {
    /// Build the network for a range `n[u,v]` whose parent fragment has
    /// disjunctive semantics iff `is_or`.
    pub fn new(u: u32, v: u32, is_or: bool) -> Self {
        let mut bld = NetworkBuilder::new();
        // Inputs.
        let start = bld.input_bool("start");
        let n = bld.input_bool("n");
        let c = bld.input_bool("c");
        let ac = bld.input_bool("ac");
        let af = bld.input_bool("af");
        let b = bld.input_bool("b");
        // State registers (one-hot, s0 initially).
        let s0 = bld.register_bool("s0", true);
        let s1 = bld.register_bool("s1", false);
        let s2 = bld.register_bool("s2", false);
        let s3 = bld.register_bool("s3", false);
        let s4 = bld.register_bool("s4", false);
        let s5 = bld.register_bool("s5", false);
        let cpt = bld.register_int("cpt", 0);
        // Constants and derived conditions.
        let is_or_sig = bld.const_bool(is_or);
        let is_and_sig = bld.const_bool(!is_or);
        let u_const = bld.const_int(i64::from(u));
        let v_const = bld.const_int(i64::from(v));
        let one = bld.const_int(1);
        let cpt_ge_u = bld.ge(cpt, u_const);
        let cpt_lt_u = bld.not(cpt_ge_u);
        let cpt_eq_v = bld.eq_int(cpt, v_const);
        let cpt_lt_v = bld.not(cpt_eq_v); // cpt never exceeds v
        let not_n = bld.not(n);
        let not_c = bld.not(c);
        let any_event = bld.or(&[n, c, ac, af, b]);
        let none = bld.not(any_event);
        let af_or_b = bld.or(&[af, b]);

        // Output pulses (Fig. 5 transitions).
        let s3_ac_ok = bld.and(&[s3, ac, cpt_ge_u]);
        let s4_ac = bld.and(&[s4, ac]);
        let ok = bld.or(&[s3_ac_ok, s4_ac]);
        let nok = bld.and(&[s2, ac, is_or_sig]);
        let ac_af_b = bld.or(&[ac, af, b]);
        let af_b_n = bld.or(&[af, b, n]);
        let e1 = bld.and(&[s1, ac_af_b]);
        let e2a = bld.and(&[s2, af_or_b]);
        let e2b = bld.and(&[s2, ac, is_and_sig]);
        let e3a = bld.and(&[s3, af_or_b]);
        let e3b = bld.and(&[s3, n, cpt_eq_v]);
        let e3c = bld.and(&[s3, c, cpt_lt_u]);
        let e3d = bld.and(&[s3, ac, cpt_lt_u]);
        let e4 = bld.and(&[s4, af_b_n]);
        let err = bld.or(&[e1, e2a, e2b, e3a, e3b, e3c, e3d, e4]);

        // Next-state equations.
        let not_start = bld.not(start);
        let s0_stay = bld.and(&[s0, not_start]);
        let next_s0 = bld.or(&[s0_stay, ok, nok]);

        let start_alone = bld.and(&[s0, start, not_n, not_c]);
        let s1_stay = bld.and(&[s1, none]);
        let next_s1 = bld.or(&[start_alone, s1_stay]);

        let start_c = bld.and(&[s0, start, c, not_n]);
        let s1_c = bld.and(&[s1, c]);
        let c_or_none = bld.or(&[c, none]);
        let s2_stay = bld.and(&[s2, c_or_none]);
        let next_s2 = bld.or(&[start_c, s1_c, s2_stay]);

        let start_n = bld.and(&[s0, start, n]);
        let s1_n = bld.and(&[s1, n]);
        let s2_n = bld.and(&[s2, n]);
        let enter_s3 = bld.or(&[start_n, s1_n, s2_n]);
        let s3_count = bld.and(&[s3, n, cpt_lt_v]);
        let s3_stay = bld.and(&[s3, none]);
        let next_s3 = bld.or(&[enter_s3, s3_count, s3_stay]);

        let s3_to_s4 = bld.and(&[s3, c, cpt_ge_u]);
        let s4_stay = bld.and(&[s4, c_or_none]);
        let next_s4 = bld.or(&[s3_to_s4, s4_stay]);

        let next_s5 = bld.or(&[s5, err]);

        // Counter: 1 on block entry, +1 while counting, else hold.
        let cpt_plus = bld.add(cpt, one);
        let counting = bld.and(&[s3, n, cpt_lt_v]);
        let hold_or_inc = bld.mux_int(counting, cpt_plus, cpt);
        let next_cpt = bld.mux_int(enter_s3, one, hold_or_inc);

        bld.drive_register(s0, next_s0);
        bld.drive_register(s1, next_s1);
        bld.drive_register(s2, next_s2);
        bld.drive_register(s3, next_s3);
        bld.drive_register(s4, next_s4);
        bld.drive_register(s5, next_s5);
        bld.drive_register(cpt, next_cpt);

        RangeRecognizerNet {
            net: bld.build(),
            start,
            n,
            c,
            ac,
            af,
            b,
            s: [s0, s1, s2, s3, s4, s5],
            cpt,
            ok,
            nok,
            err,
        }
    }

    /// Run one synchronous instant with the given inputs.
    pub fn step(&mut self, start: bool, class: Option<ClassInput>) -> NetOutput {
        self.net.clear_inputs();
        self.net.set_bool(self.start, start);
        if let Some(class) = class {
            let signal = match class {
                ClassInput::Own => self.n,
                ClassInput::Concurrent => self.c,
                ClassInput::Accept => self.ac,
                ClassInput::After => self.af,
                ClassInput::Before => self.b,
            };
            self.net.set_bool(signal, true);
        }
        self.net.tick();
        NetOutput {
            ok: self.net.get(self.ok).as_bool(),
            nok: self.net.get(self.nok).as_bool(),
            err: self.net.get(self.err).as_bool(),
        }
    }

    /// The current (one-hot decoded) state.
    ///
    /// # Panics
    ///
    /// Panics if the one-hot invariant is broken — that would be a bug in
    /// the equations, and the property tests are there to find it.
    pub fn state(&self) -> NetState {
        let states = [
            NetState::Idle,
            NetState::Waiting,
            NetState::WaitingOther,
            NetState::Counting,
            NetState::Done,
            NetState::Error,
        ];
        let mut found = None;
        for (sig, state) in self.s.iter().zip(states) {
            if self.net.get(*sig).as_bool() {
                assert!(found.is_none(), "one-hot violation: two states active");
                found = Some(state);
            }
        }
        found.expect("one-hot violation: no state active")
    }

    /// The current counter value.
    pub fn count(&self) -> i64 {
        self.net.get(self.cpt).as_int()
    }

    /// Total register bits (compare with the paper's space accounting).
    pub fn state_bits(&self) -> u64 {
        self.net.state_bits()
    }
}

/// One-hot consistency check helper used in tests.
pub fn value_is_true(v: Value) -> bool {
    v == Value::Bool(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_recognition_sequence() {
        // n[2,8] in an ∨-fragment: start, n, n, Ac → ok.
        let mut net = RangeRecognizerNet::new(2, 8, true);
        assert_eq!(net.state(), NetState::Idle);
        net.step(true, None);
        assert_eq!(net.state(), NetState::Waiting);
        net.step(false, Some(ClassInput::Own));
        assert_eq!(net.state(), NetState::Counting);
        assert_eq!(net.count(), 1);
        net.step(false, Some(ClassInput::Own));
        assert_eq!(net.count(), 2);
        let out = net.step(false, Some(ClassInput::Accept));
        assert!(out.ok && !out.nok && !out.err);
        assert_eq!(net.state(), NetState::Idle);
    }

    #[test]
    fn start_coinciding_with_own_name() {
        let mut net = RangeRecognizerNet::new(1, 1, false);
        net.step(true, Some(ClassInput::Own));
        assert_eq!(net.state(), NetState::Counting);
        assert_eq!(net.count(), 1);
    }

    #[test]
    fn start_coinciding_with_sibling() {
        let mut net = RangeRecognizerNet::new(1, 1, false);
        net.step(true, Some(ClassInput::Concurrent));
        assert_eq!(net.state(), NetState::WaitingOther);
    }

    #[test]
    fn premature_accept_errs() {
        let mut net = RangeRecognizerNet::new(2, 8, true);
        net.step(true, None);
        net.step(false, Some(ClassInput::Own));
        let out = net.step(false, Some(ClassInput::Accept));
        assert!(out.err);
        assert_eq!(net.state(), NetState::Error);
    }

    #[test]
    fn error_is_latched_without_further_pulses() {
        let mut net = RangeRecognizerNet::new(1, 1, false);
        net.step(true, None);
        let out = net.step(false, Some(ClassInput::Before));
        assert!(out.err);
        let out = net.step(false, Some(ClassInput::Own));
        assert!(!out.err && !out.ok && !out.nok);
        assert_eq!(net.state(), NetState::Error);
    }

    #[test]
    fn skipped_range_noks_under_or() {
        let mut net = RangeRecognizerNet::new(1, 1, true);
        net.step(true, None);
        net.step(false, Some(ClassInput::Concurrent));
        let out = net.step(false, Some(ClassInput::Accept));
        assert!(out.nok && !out.ok && !out.err);
        assert_eq!(net.state(), NetState::Idle);
    }

    #[test]
    fn skipped_range_errs_under_and() {
        let mut net = RangeRecognizerNet::new(1, 1, false);
        net.step(true, None);
        net.step(false, Some(ClassInput::Concurrent));
        let out = net.step(false, Some(ClassInput::Accept));
        assert!(out.err);
    }

    #[test]
    fn overcount_errs() {
        let mut net = RangeRecognizerNet::new(1, 2, false);
        net.step(true, None);
        net.step(false, Some(ClassInput::Own));
        net.step(false, Some(ClassInput::Own));
        let out = net.step(false, Some(ClassInput::Own));
        assert!(out.err);
    }

    #[test]
    fn no_event_tick_holds_state() {
        let mut net = RangeRecognizerNet::new(1, 2, false);
        net.step(true, None);
        net.step(false, Some(ClassInput::Own));
        let before = (net.state(), net.count());
        net.step(false, None);
        assert_eq!((net.state(), net.count()), before);
    }

    #[test]
    fn state_bits_account_registers() {
        let net = RangeRecognizerNet::new(1, 2, false);
        // 6 boolean one-hot registers + one 64-bit counter.
        assert_eq!(net.state_bits(), 6 + 64);
    }
}
