//! # lomon-bench — the evaluation harness
//!
//! Regenerates the paper's evaluation exhibits (see DESIGN.md §4):
//!
//! * **F6** — the Fig. 6 table (`cargo run -p lomon-bench --bin fig6`);
//! * **S1** — range-width sweep (`--bin sweep_range`);
//! * **S2** — fragment-size sweep (`--bin sweep_names`);
//! * **S3** — platform monitoring overhead (`--bin platform_overhead`);
//! * **S4** — generator agreement & throughput (`--bin gen_check`);
//! * criterion wall-clock benches (`cargo bench -p lomon-bench`).
//!
//! This library holds the shared harness: the six Fig. 6 configurations,
//! per-strategy measurement, and table formatting.

pub mod workloads;

use lomon_core::ast::Property;
use lomon_core::complexity::{drct_cost, measure_drct};
use lomon_core::parse::parse_property;
use lomon_core::verdict::Monitor as _;
use lomon_gen::{generate, GeneratorConfig};
use lomon_psl::complexity::viapsl_cost;
use lomon_psl::monitor::PslMonitor;
use lomon_psl::translate::TranslateOptions;
use lomon_trace::{Trace, Vocabulary};

/// The paper's numbers for one Fig. 6 row (`ViaPSL` entries are `+∆`).
#[derive(Debug, Clone, Copy)]
pub struct PaperNumbers {
    /// Drct time (operations per event).
    pub drct_ops: f64,
    /// Drct space (bits).
    pub drct_bits: f64,
    /// ViaPSL time (operations per event, excluding ∆).
    pub viapsl_ops: f64,
    /// ViaPSL space (bits, excluding ∆).
    pub viapsl_bits: f64,
}

/// One Fig. 6 configuration.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Row number (1-based, as in the paper).
    pub id: usize,
    /// The paper's notation for the configuration.
    pub label: &'static str,
    /// The property in this repository's textual language.
    pub text: &'static str,
    /// The paper's reported numbers.
    pub paper: PaperNumbers,
}

/// The six configurations of the paper's Fig. 6, verbatim.
pub fn fig6_rows() -> Vec<Fig6Row> {
    vec![
        Fig6Row {
            id: 1,
            label: "(n << i, true)",
            text: "n << i repeated",
            paper: PaperNumbers {
                drct_ops: 80.0,
                drct_bits: 192.0,
                viapsl_ops: 238.0,
                viapsl_bits: 896.0,
            },
        },
        Fig6Row {
            id: 2,
            label: "(n[100,60K] << i, true)",
            text: "n[100,60000] << i repeated",
            paper: PaperNumbers {
                drct_ops: 80.0,
                drct_bits: 192.0,
                viapsl_ops: 4e11,
                viapsl_bits: 2e12,
            },
        },
        Fig6Row {
            id: 3,
            label: "(({n1..n4},∧) << i, false)",
            text: "all{n1, n2, n3, n4} << i once",
            paper: PaperNumbers {
                drct_ops: 230.0,
                drct_bits: 1132.0,
                viapsl_ops: 1785.0,
                viapsl_bits: 6720.0,
            },
        },
        Fig6Row {
            id: 4,
            label: "(({n1..n5},∧) << i, false)",
            text: "all{n1, n2, n3, n4, n5} << i once",
            paper: PaperNumbers {
                drct_ops: 280.0,
                drct_bits: 1568.0,
                viapsl_ops: 2142.0,
                viapsl_bits: 8064.0,
            },
        },
        Fig6Row {
            id: 5,
            label: "(n1 ⇒ n2 < n3 < n4, T)",
            text: "n1 => n2 < n3 < n4 within 1 ms",
            paper: PaperNumbers {
                drct_ops: 296.0,
                drct_bits: 1051.0,
                viapsl_ops: 1428.0,
                viapsl_bits: 5376.0,
            },
        },
        Fig6Row {
            id: 6,
            label: "(n1 ⇒ n2[100,60K] < n3 < n4, T)",
            text: "n1 => n2[100,60000] < n3 < n4 within 1 ms",
            paper: PaperNumbers {
                drct_ops: 296.0,
                drct_bits: 1051.0,
                viapsl_ops: 4e11,
                viapsl_bits: 2e12,
            },
        },
    ]
}

/// Our measurements for one configuration.
#[derive(Debug, Clone)]
pub struct RowResult {
    /// The parsed property.
    pub property: Property,
    /// Vocabulary the property is written against.
    pub vocabulary: Vocabulary,
    /// The satisfying workload the monitors were driven with.
    pub workload: Trace,
    /// Drct: measured average operations per event.
    pub drct_ops: f64,
    /// Drct: exact mutable state bits.
    pub drct_bits: u64,
    /// Drct: the paper's Θ-unit (max fragment alphabet).
    pub drct_theta: u64,
    /// ViaPSL: closed-form operations per event (formula nodes).
    pub viapsl_ops_model: u64,
    /// ViaPSL: closed-form state bits.
    pub viapsl_bits_model: u64,
    /// ViaPSL: measured ops/event on the workload (materializable only).
    pub viapsl_ops_measured: Option<f64>,
    /// ViaPSL: measured state bits (materializable only).
    pub viapsl_bits_measured: Option<u64>,
    /// The lexer ∆ (per-event ops, state bits).
    pub delta: (u64, u64),
}

/// Build the property, generate a satisfying workload and measure both
/// strategies.
///
/// # Panics
///
/// Panics if the row's property text fails to parse (a harness bug).
pub fn evaluate_row(row: &Fig6Row, seed: u64) -> RowResult {
    let mut vocabulary = Vocabulary::new();
    let property = parse_property(row.text, &mut vocabulary).expect("row property parses");
    let workload = generate(
        &property,
        &GeneratorConfig {
            episodes: 3,
            ..GeneratorConfig::new(seed)
        },
    )
    .trace;

    let drct_static = drct_cost(&property);
    let drct_measured = measure_drct(&property, &workload, &vocabulary);

    let psl_model = viapsl_cost(&property).expect("fig6 rows are translatable");
    let (viapsl_ops_measured, viapsl_bits_measured) = match PslMonitor::build_with(
        &property,
        TranslateOptions {
            conjunct_limit: 100_000,
        },
    ) {
        Ok(mut monitor) => {
            for &event in workload.iter() {
                monitor.observe(event);
            }
            monitor.finish(workload.end_time());
            let events = workload.len().max(1) as f64;
            (
                Some(monitor.ops() as f64 / events),
                Some(monitor.state_bits()),
            )
        }
        Err(_) => (None, None),
    };

    RowResult {
        property,
        vocabulary,
        workload,
        drct_ops: drct_measured.ops_per_event,
        drct_bits: drct_measured.state_bits,
        drct_theta: drct_static.theta_time,
        viapsl_ops_model: psl_model.ops_per_event,
        viapsl_bits_model: psl_model.state_bits,
        viapsl_ops_measured,
        viapsl_bits_measured,
        delta: (psl_model.delta_ops, psl_model.delta_bits),
    }
}

/// Human-scale rendering of large counts (`3.59e9`-style above 10⁶).
pub fn scale(value: f64) -> String {
    if value >= 1e6 {
        format!("{value:.2e}")
    } else if value >= 100.0 {
        format!("{value:.0}")
    } else {
        format!("{value:.1}")
    }
}

/// A property of the sweep family `n[1,v] << i repeated`.
pub fn range_sweep_property(width: u32, voc: &mut Vocabulary) -> Property {
    parse_property(&format!("n[1,{width}] << i repeated"), voc).expect("sweep property parses")
}

/// A property of the sweep family `all{n1..nk} << i once`.
pub fn names_sweep_property(k: usize, voc: &mut Vocabulary) -> Property {
    let names: Vec<String> = (1..=k).map(|j| format!("n{j}")).collect();
    parse_property(&format!("all{{{}}} << i once", names.join(", ")), voc)
        .expect("sweep property parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_evaluate() {
        for row in fig6_rows() {
            let result = evaluate_row(&row, 1);
            assert!(result.drct_ops > 0.0, "row {}", row.id);
            assert!(result.drct_bits > 0, "row {}", row.id);
            assert!(result.viapsl_ops_model > 0, "row {}", row.id);
        }
    }

    #[test]
    fn headline_shape_drct_flat_viapsl_explodes() {
        let rows = fig6_rows();
        let r1 = evaluate_row(&rows[0], 1);
        let r2 = evaluate_row(&rows[1], 1);
        // Drct: same Θ, measured ops within a small constant factor (the
        // event mix differs, the width plays no role), small bit growth
        // (counter width only).
        assert_eq!(r1.drct_theta, r2.drct_theta);
        let ratio = r2.drct_ops / r1.drct_ops;
        assert!((0.5..1.5).contains(&ratio), "Drct ops ratio {ratio}");
        assert!(r2.drct_bits - r1.drct_bits <= 16);
        // ViaPSL: ≥ 10⁶× blow-up in the model.
        assert!(r2.viapsl_ops_model / r1.viapsl_ops_model.max(1) > 1_000_000);
        // Row 2 is not materializable.
        assert!(r2.viapsl_ops_measured.is_none());
        assert!(r1.viapsl_ops_measured.is_some());
    }

    #[test]
    fn fragment_rows_grow_mildly() {
        let rows = fig6_rows();
        let r3 = evaluate_row(&rows[2], 1);
        let r4 = evaluate_row(&rows[3], 1);
        assert!(r4.drct_bits > r3.drct_bits);
        assert!(r4.viapsl_ops_model > r3.viapsl_ops_model);
        assert!(r4.viapsl_ops_model < 2 * r3.viapsl_ops_model);
    }

    #[test]
    fn timed_rows_match_between_widths() {
        let rows = fig6_rows();
        let r5 = evaluate_row(&rows[4], 1);
        let r6 = evaluate_row(&rows[5], 1);
        assert_eq!(r5.drct_theta, r6.drct_theta);
        assert!(r6.viapsl_ops_model / r5.viapsl_ops_model.max(1) > 1_000_000);
    }

    #[test]
    fn scale_formats() {
        assert_eq!(scale(3.0), "3.0");
        assert_eq!(scale(238.0), "238");
        assert_eq!(scale(4e11), "4.00e11");
    }
}
