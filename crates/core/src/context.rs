//! Recognition contexts — the inherited attributes of the paper's Fig. 4.
//!
//! A range recognizer does not work in isolation: how it must react to a
//! name depends on *where its range sits* in the syntax tree of the root
//! pattern. The paper captures this as a tuple `(B, C, Ac, Af, s)` computed
//! per range:
//!
//! * `B`  — names of *preceding* fragments: they are supposed to have
//!   happened already, so seeing one is an error;
//! * `C`  — names of *sibling* ranges in the same fragment: allowed at block
//!   boundaries (before this range starts, or once its minimum is reached);
//! * `Ac` — names of the *next* fragment (or the stop set for the last
//!   fragment): they terminate recognition — `ok` if the minimum was
//!   reached, `nok`/`err` otherwise;
//! * `Af` — names that must come strictly *after* (fragments beyond the next
//!   one, and the antecedent trigger): always an error while this range's
//!   fragment is active;
//! * `s`  — the connective (`∧`/`∨`) of the parent fragment, which decides
//!   whether a never-started range may be skipped (`nok`) on termination.
//!
//! Two layouts are computed from the same ordering:
//! * [`linear_contexts`] — for antecedent requirements `P << i`: the stop
//!   set of the last fragment is `{i}`;
//! * [`cyclic_contexts`] — for timed implications: the concatenated
//!   `P`-then-`Q` fragments wrap around, the fragment after the last one
//!   being the first (each observation of `P` re-arms the obligation).

use lomon_trace::{Name, NameSet};

use crate::ast::{Fragment, FragmentOp, LooseOrdering};

/// The recognition context `(B, C, Ac, Af, s)` of one range (paper Fig. 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeContext {
    /// Names of preceding fragments (forbidden; "already happened").
    pub before: NameSet,
    /// Names of sibling ranges in the same fragment.
    pub concurrent: NameSet,
    /// Names that stop recognition of this fragment.
    pub accept: NameSet,
    /// Names that may only occur in strictly later fragments (forbidden).
    pub after: NameSet,
    /// Connective of the parent fragment.
    pub semantics: FragmentOp,
}

impl RangeContext {
    /// Classify `name` relative to this context. `own` is the range's own
    /// name. Returns `None` when the name is outside the root alphabet (the
    /// caller should have projected it away).
    pub fn classify(&self, own: Name, name: Name) -> Option<NameClass> {
        if name == own {
            Some(NameClass::Own)
        } else if self.concurrent.contains(name) {
            Some(NameClass::Concurrent)
        } else if self.accept.contains(name) {
            Some(NameClass::Accept)
        } else if self.after.contains(name) {
            Some(NameClass::After)
        } else if self.before.contains(name) {
            Some(NameClass::Before)
        } else {
            None
        }
    }
}

/// How a name relates to a range recognizer, per its context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameClass {
    /// The range's own name `n`.
    Own,
    /// A sibling range's name (`C`).
    Concurrent,
    /// A stopping name (`Ac`).
    Accept,
    /// A name of a later-than-next fragment or the trigger (`Af`).
    After,
    /// A name of a preceding fragment (`B`).
    Before,
}

/// Contexts for every range of every fragment of a *linear* ordering
/// (antecedent layout): `stop` is the termination set of the last fragment —
/// `{i}` for `(P << i, b)`.
///
/// The result is indexed `[fragment][range]`, parallel to
/// `ordering.fragments[j].ranges[k]`.
pub fn linear_contexts(ordering: &LooseOrdering, stop: &NameSet) -> Vec<Vec<RangeContext>> {
    let q = ordering.fragments.len();
    let alphas: Vec<NameSet> = ordering.fragments.iter().map(Fragment::alpha).collect();

    (0..q)
        .map(|j| {
            // B: fragments strictly before j.
            let mut before = NameSet::new();
            for alpha in alphas.iter().take(j) {
                before.union_with(alpha);
            }
            // Ac: next fragment, or the stop set for the last.
            let accept = if j + 1 < q {
                alphas[j + 1].clone()
            } else {
                stop.clone()
            };
            // Af: fragments strictly after j+1, plus the stop set (the
            // trigger may only come after everything).
            let mut after = NameSet::new();
            for alpha in alphas.iter().skip(j + 2) {
                after.union_with(alpha);
            }
            if j + 1 < q {
                after.union_with(stop);
            }
            fragment_contexts(&ordering.fragments[j], &before, &accept, &after)
        })
        .collect()
}

/// Contexts for every range of a *cyclic* fragment chain (timed-implication
/// layout over the concatenated `P`-then-`Q` fragments): the fragment after
/// the last is the first, so a new episode can begin as soon as the previous
/// one is complete.
pub fn cyclic_contexts(fragments: &[Fragment]) -> Vec<Vec<RangeContext>> {
    let m = fragments.len();
    let alphas: Vec<NameSet> = fragments.iter().map(Fragment::alpha).collect();

    (0..m)
        .map(|j| {
            let accept = alphas[(j + 1) % m].clone();
            // Everything that is neither this fragment nor the next is
            // forbidden while fragment j is active. In a cycle the B/Af
            // distinction is positional only; we put it all in Af and leave
            // B empty (both classes are errors in the recognizer).
            let mut after = NameSet::new();
            for (k, alpha) in alphas.iter().enumerate() {
                if k != j && k != (j + 1) % m {
                    after.union_with(alpha);
                }
            }
            fragment_contexts(&fragments[j], &NameSet::new(), &accept, &after)
        })
        .collect()
}

fn fragment_contexts(
    fragment: &Fragment,
    before: &NameSet,
    accept: &NameSet,
    after: &NameSet,
) -> Vec<RangeContext> {
    let alpha = fragment.alpha();
    fragment
        .ranges
        .iter()
        .map(|range| {
            let mut concurrent = alpha.clone();
            concurrent.remove(range.name);
            RangeContext {
                before: before.clone(),
                concurrent,
                accept: accept.clone(),
                after: after.clone(),
                semantics: fragment.op,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Range;
    use lomon_trace::Vocabulary;

    /// The paper's Fig. 4 example:
    /// `(({n1, n2}, ∧) < ({n3[2,8], n4}, ∨) < n5 << i, false)`.
    fn fig4() -> (Vocabulary, Vec<Name>, LooseOrdering, NameSet) {
        let mut voc = Vocabulary::new();
        let n: Vec<Name> = (1..=5).map(|k| voc.input(&format!("n{k}"))).collect();
        let i = voc.input("i");
        let ordering = LooseOrdering::new(vec![
            Fragment::new(FragmentOp::All, vec![Range::once(n[0]), Range::once(n[1])]),
            Fragment::new(
                FragmentOp::Any,
                vec![Range::new(n[2], 2, 8), Range::once(n[3])],
            ),
            Fragment::singleton(Range::once(n[4])),
        ]);
        let stop: NameSet = [i].into_iter().collect();
        (voc, n, ordering, stop)
    }

    #[test]
    fn fig4_attributes_for_n3() {
        let (voc, n, ordering, stop) = fig4();
        let i = voc.lookup("i").unwrap();
        let ctxs = linear_contexts(&ordering, &stop);
        // n3 is fragment 1, range 0.
        let ctx = &ctxs[1][0];
        assert_eq!(ctx.semantics, FragmentOp::Any);
        assert_eq!(ctx.before, [n[0], n[1]].into_iter().collect());
        assert_eq!(ctx.concurrent, [n[3]].into_iter().collect());
        assert_eq!(ctx.accept, [n[4]].into_iter().collect());
        assert_eq!(ctx.after, [i].into_iter().collect());
    }

    #[test]
    fn fig4_attributes_for_last_fragment() {
        let (voc, n, ordering, stop) = fig4();
        let i = voc.lookup("i").unwrap();
        let ctxs = linear_contexts(&ordering, &stop);
        // n5 is fragment 2, range 0: Ac = {i}, Af = ∅.
        let ctx = &ctxs[2][0];
        assert_eq!(ctx.semantics, FragmentOp::All);
        assert_eq!(
            ctx.before,
            [n[0], n[1], n[2], n[3]].into_iter().collect::<NameSet>()
        );
        assert!(ctx.concurrent.is_empty());
        assert_eq!(ctx.accept, [i].into_iter().collect());
        assert!(ctx.after.is_empty());
    }

    #[test]
    fn fig4_attributes_for_first_fragment() {
        let (voc, n, ordering, stop) = fig4();
        let i = voc.lookup("i").unwrap();
        let ctxs = linear_contexts(&ordering, &stop);
        let ctx = &ctxs[0][0]; // n1
        assert!(ctx.before.is_empty());
        assert_eq!(ctx.concurrent, [n[1]].into_iter().collect());
        assert_eq!(ctx.accept, [n[2], n[3]].into_iter().collect());
        // Af: n5 (beyond next) and the trigger i.
        assert_eq!(ctx.after, [n[4], i].into_iter().collect());
    }

    #[test]
    fn classify_follows_priority() {
        let (voc, n, ordering, stop) = fig4();
        let i = voc.lookup("i").unwrap();
        let ctxs = linear_contexts(&ordering, &stop);
        let ctx = &ctxs[1][0]; // n3
        assert_eq!(ctx.classify(n[2], n[2]), Some(NameClass::Own));
        assert_eq!(ctx.classify(n[2], n[3]), Some(NameClass::Concurrent));
        assert_eq!(ctx.classify(n[2], n[4]), Some(NameClass::Accept));
        assert_eq!(ctx.classify(n[2], i), Some(NameClass::After));
        assert_eq!(ctx.classify(n[2], n[0]), Some(NameClass::Before));
        let mut voc2 = voc;
        let stranger = voc2.input("stranger");
        assert_eq!(ctx.classify(n[2], stranger), None);
    }

    #[test]
    fn cyclic_wraps_accept_to_first_fragment() {
        // (n1 ⇒ n2 < n3, t): fragments [n1][n2][n3] in a ring.
        let mut voc = Vocabulary::new();
        let n1 = voc.input("n1");
        let n2 = voc.output("n2");
        let n3 = voc.output("n3");
        let fragments = vec![
            Fragment::singleton(Range::once(n1)),
            Fragment::singleton(Range::once(n2)),
            Fragment::singleton(Range::once(n3)),
        ];
        let ctxs = cyclic_contexts(&fragments);
        // Last fragment's Ac is the first fragment's alphabet.
        assert_eq!(ctxs[2][0].accept, [n1].into_iter().collect());
        // Middle fragment forbids n1 (neither own nor next).
        assert_eq!(ctxs[1][0].after, [n1].into_iter().collect());
        assert!(ctxs[1][0].before.is_empty());
    }

    #[test]
    fn cyclic_two_fragment_ring_has_no_forbidden_names() {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let b = voc.output("b");
        let fragments = vec![
            Fragment::singleton(Range::once(a)),
            Fragment::singleton(Range::once(b)),
        ];
        let ctxs = cyclic_contexts(&fragments);
        assert!(ctxs[0][0].after.is_empty());
        assert!(ctxs[1][0].after.is_empty());
        assert_eq!(ctxs[0][0].accept, [b].into_iter().collect());
        assert_eq!(ctxs[1][0].accept, [a].into_iter().collect());
    }

    #[test]
    fn sibling_contexts_share_everything_but_concurrent() {
        let (_voc, n, ordering, stop) = fig4();
        let ctxs = linear_contexts(&ordering, &stop);
        let c_n3 = &ctxs[1][0];
        let c_n4 = &ctxs[1][1];
        assert_eq!(c_n3.before, c_n4.before);
        assert_eq!(c_n3.accept, c_n4.accept);
        assert_eq!(c_n3.after, c_n4.after);
        assert_eq!(c_n3.concurrent, [n[3]].into_iter().collect());
        assert_eq!(c_n4.concurrent, [n[2]].into_iter().collect());
    }
}
