//! Integration tests for the metrics HTTP listener: routing, draining,
//! concurrent scrape-during-update safety, and clean shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use lomon_obs::{MetricsServer, Registry};

fn http_get(addr: std::net::SocketAddr, request: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(request.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head.to_owned(), body.to_owned())
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String, String) {
    http_get(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"),
    )
}

#[test]
fn serves_prometheus_text_and_ndjson() {
    let registry = Arc::new(Registry::new());
    registry
        .counter("lomon_events_total", "Events ingested")
        .add(9);
    let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).expect("bind");
    let addr = server.local_addr();

    let (status, head, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(head.contains("text/plain; version=0.0.4"), "head: {head}");
    assert!(body.contains("lomon_events_total 9\n"), "body: {body}");

    let (status, head, body) = get(addr, "/metrics.json");
    assert_eq!(status, 200);
    assert!(head.contains("application/x-ndjson"), "head: {head}");
    assert!(
        body.contains("\"name\":\"lomon_events_total\""),
        "body: {body}"
    );
}

#[test]
fn scrapes_observe_live_updates() {
    let registry = Arc::new(Registry::new());
    let counter = registry.counter("lomon_events_total", "Events ingested");
    let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).expect("bind");
    let addr = server.local_addr();
    let (_, _, before) = get(addr, "/metrics");
    assert!(before.contains("lomon_events_total 0\n"));
    counter.add(1234);
    let (_, _, after) = get(addr, "/metrics");
    assert!(after.contains("lomon_events_total 1234\n"), "body: {after}");
}

#[test]
fn scrape_races_concurrent_updates_without_tearing() {
    // A scrape racing a registry reset/update (e.g. engine reset between
    // files, or campaign completion) must never see a torn value or take
    // the server down. Hammer the counter from one thread while scraping
    // from this one; every observed value must be one the writer produced.
    let registry = Arc::new(Registry::new());
    let counter = registry.counter("lomon_events_total", "Events ingested");
    let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).expect("bind");
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for _ in 0..50_000 {
                counter.add(1);
            }
        });
        for _ in 0..20 {
            let (status, _, body) = get(addr, "/metrics");
            assert_eq!(status, 200);
            let value: u64 = body
                .lines()
                .find_map(|l| l.strip_prefix("lomon_events_total "))
                .expect("counter line present")
                .parse()
                .expect("counter value is a clean integer");
            assert!(value <= 50_000);
        }
        writer.join().unwrap();
    });
    let (_, _, body) = get(addr, "/metrics");
    assert!(body.contains("lomon_events_total 50000\n"), "body: {body}");
}

#[test]
fn unknown_path_is_404_and_non_get_is_405() {
    let registry = Arc::new(Registry::new());
    let server = MetricsServer::bind("127.0.0.1:0", registry).expect("bind");
    let addr = server.local_addr();
    let (status, _, _) = get(addr, "/nope");
    assert_eq!(status, 404);
    let (status, _, _) = http_get(
        addr,
        "POST /metrics HTTP/1.1\r\nHost: localhost\r\nContent-Length: 0\r\n\
         Connection: close\r\n\r\n",
    );
    assert_eq!(status, 405);
}

#[test]
fn draining_server_answers_503() {
    let registry = Arc::new(Registry::new());
    let server = MetricsServer::bind("127.0.0.1:0", registry).expect("bind");
    let addr = server.local_addr();
    let (status, _, _) = get(addr, "/metrics");
    assert_eq!(status, 200);
    server.drain();
    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 503);
    assert!(body.contains("draining"), "body: {body}");
}

#[test]
fn bind_conflict_surfaces_as_error() {
    let registry = Arc::new(Registry::new());
    let first = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).expect("bind");
    let addr = first.local_addr();
    let second = MetricsServer::bind(&addr.to_string(), registry);
    assert!(second.is_err(), "second bind on {addr} should fail");
}

#[test]
fn drop_releases_the_port() {
    let registry = Arc::new(Registry::new());
    let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).expect("bind");
    let addr = server.local_addr();
    drop(server);
    // The port must be re-bindable once the listener thread has exited.
    MetricsServer::bind(&addr.to_string(), registry).expect("rebind after drop");
}

#[test]
fn half_open_connection_cannot_starve_other_scrapers() {
    // Regression: the listener is single-threaded, so a client that
    // connects and then goes silent (half-open socket, no request bytes)
    // must be cut off by the read deadline — not hold the endpoint
    // hostage. With a short deadline, a live scraper right behind the
    // silent one still gets its snapshot promptly.
    let registry = Arc::new(Registry::new());
    registry
        .counter("lomon_events_total", "Events ingested")
        .add(7);
    let server = MetricsServer::bind_with_timeout(
        "127.0.0.1:0",
        Arc::clone(&registry),
        Duration::from_millis(100),
    )
    .expect("bind");
    let addr = server.local_addr();

    // Occupy the serial listener with a connection that never speaks.
    let half_open = TcpStream::connect(addr).expect("connect half-open");
    let start = std::time::Instant::now();
    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("lomon_events_total 7\n"), "body: {body}");
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "scrape behind a half-open connection took {:?}",
        start.elapsed()
    );
    drop(half_open);
}

#[test]
fn malformed_request_gets_400_not_a_panic() {
    let registry = Arc::new(Registry::new());
    let server = MetricsServer::bind("127.0.0.1:0", registry).expect("bind");
    let addr = server.local_addr();
    let (status, _, _) = http_get(addr, "\r\n\r\n");
    assert_eq!(status, 400);
    // The listener survives the bad request.
    let (status, _, _) = get(addr, "/metrics");
    assert_eq!(status, 200);
}
