//! The admin endpoint: health, rulebook hot-reload, drain shutdown.
//!
//! A deliberately tiny HTTP/1.1 surface in the style of the
//! `lomon-obs` metrics listener: one background thread, serial
//! connections, hard I/O timeouts, `Connection: close` on every response.
//!
//! | Route | Effect |
//! |---|---|
//! | `GET /health` | liveness + generation + stream counts |
//! | `POST /reload` | body = rulebook text; compile aside, swap for new streams, `422` + diagnostics on failure (program untouched) |
//! | `POST /shutdown` | begin drain-then-exit |

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::time::Duration;

use crate::server::Shared;

/// Cap on the request head.
const MAX_HEAD: u64 = 8 * 1024;
/// Cap on a reload body: a rulebook is text, not a dataset.
const MAX_BODY: usize = 1024 * 1024;
/// Per-connection read/write deadline — a stalled admin client cannot
/// wedge the (single-threaded) endpoint.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Serve admin requests until the server stops.
pub(crate) fn run(listener: &TcpListener, shared: &Shared) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // One bad connection must not take the endpoint down.
        let _ = serve_one(stream, shared);
        // /shutdown flips `stop` *after* its response is written; check
        // again so the endpoint dies with the server, not one request late.
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
    }
}

fn serve_one(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut head = (&mut reader).take(MAX_HEAD);
    let mut request_line = String::new();
    head.read_line(&mut request_line)?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        match head.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => {
                let lower = line.to_ascii_lowercase();
                if let Some(value) = lower.strip_prefix("content-length:") {
                    content_length = value.trim().parse().unwrap_or(0);
                }
            }
            Err(_) => break,
        }
    }

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let mut stream = stream;

    if method.is_empty() || target.is_empty() {
        return respond(
            &mut stream,
            400,
            "Bad Request",
            "{\"error\": \"bad request\"}\n",
        );
    }
    match (method, target) {
        ("GET", "/health") => {
            let body = format!(
                "{{\"status\": \"{}\", \"generation\": {}, \"active_streams\": {}, \
                 \"pooled_sessions\": {}}}\n",
                if shared.draining.load(Ordering::Acquire) {
                    "draining"
                } else {
                    "ok"
                },
                shared.generation(),
                shared.in_flight.load(Ordering::Acquire),
                shared.pool.len(),
            );
            respond(&mut stream, 200, "OK", &body)
        }
        ("POST", "/reload") => {
            if content_length > MAX_BODY {
                return respond(
                    &mut stream,
                    413,
                    "Payload Too Large",
                    "{\"ok\": false, \"error\": \"rulebook too large\"}\n",
                );
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body)?;
            let Ok(text) = String::from_utf8(body) else {
                return respond(
                    &mut stream,
                    400,
                    "Bad Request",
                    "{\"ok\": false, \"error\": \"rulebook is not valid UTF-8\"}\n",
                );
            };
            match shared.reload(&text) {
                Ok(program) => {
                    let body = format!(
                        "{{\"ok\": true, \"generation\": {}, \"properties\": {}}}\n",
                        program.generation,
                        program.engine.len(),
                    );
                    respond(&mut stream, 200, "OK", &body)
                }
                Err(diagnostics) => {
                    // Structured rollback report: the old program is still
                    // serving; here is everything wrong with the new one.
                    let rendered: Vec<String> =
                        diagnostics.iter().map(|d| d.render_json()).collect();
                    let body = format!(
                        "{{\"ok\": false, \"generation\": {}, \"diagnostics\": [{}]}}\n",
                        shared.generation(),
                        rendered.join(", "),
                    );
                    respond(&mut stream, 422, "Unprocessable Entity", &body)
                }
            }
        }
        ("POST", "/shutdown") => {
            respond(
                &mut stream,
                200,
                "OK",
                "{\"ok\": true, \"draining\": true}\n",
            )?;
            shared.request_shutdown();
            Ok(())
        }
        _ => respond(
            &mut stream,
            404,
            "Not Found",
            "{\"error\": \"not found\"}\n",
        ),
    }
}

fn respond(stream: &mut TcpStream, status: u16, reason: &str, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
