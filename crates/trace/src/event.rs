//! Timed interface events.

use crate::{Name, SimTime};

/// One occurrence of an interface name at an instant of simulated time.
///
/// Loose-ordering properties are interpreted over sequences of such events;
/// "only one name at a time can occur due to asynchrony of considered
/// models" (paper, Section 4), so a trace is a plain sequence — two events
/// may carry the same timestamp (e.g. within one delta cycle) but they are
/// still totally ordered by their position.
///
/// # Example
///
/// ```
/// use lomon_trace::{Direction, SimTime, TimedEvent, Vocabulary};
/// let mut voc = Vocabulary::new();
/// let start = voc.input("start");
/// let ev = TimedEvent::new(start, SimTime::from_ns(42));
/// assert_eq!(ev.time.as_ns(), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimedEvent {
    /// Which interface name occurred.
    pub name: Name,
    /// When it occurred (absolute simulated time).
    pub time: SimTime,
}

impl TimedEvent {
    /// Create an event of `name` at `time`.
    pub fn new(name: Name, time: SimTime) -> Self {
        TimedEvent { name, time }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vocabulary;

    #[test]
    fn construction_and_fields() {
        let mut voc = Vocabulary::new();
        let n = voc.input("x");
        let ev = TimedEvent::new(n, SimTime::from_ns(5));
        assert_eq!(ev.name, n);
        assert_eq!(ev.time, SimTime::from_ns(5));
    }

    #[test]
    fn events_compare_by_value() {
        let mut voc = Vocabulary::new();
        let n = voc.input("x");
        assert_eq!(
            TimedEvent::new(n, SimTime::ZERO),
            TimedEvent::new(n, SimTime::ZERO)
        );
        assert_ne!(
            TimedEvent::new(n, SimTime::ZERO),
            TimedEvent::new(n, SimTime::from_ns(1))
        );
    }
}
