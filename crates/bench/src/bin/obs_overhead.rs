//! Telemetry overhead gate: the zero-overhead claim, measured.
//!
//! Replays the four `hot_loop` workloads through the fused backend three
//! times — detached, with a live [`Registry`] and an attached
//! [`SessionMetrics`] sink, and in explain mode (a bounded flight
//! recorder armed per monitor) — interleaved rep by rep, and compares the
//! best-of-[`REPS`] ns/event. The instrumentation flushes watermark deltas
//! at batch boundaries only, so the hot loop itself is untouched; the
//! `--check` CI gate holds the instrumented/plain ratio at
//! [`OVERHEAD_GATE`], the explain/plain ratio at [`EXPLAIN_GATE`], and
//! additionally requires
//!
//! * verdict *and* per-property ops identity across all three sessions
//!   (telemetry and witness capture observe, never perturb), and
//! * exact counter accounting: after `REPS` replays the registry's
//!   `lomon_events_total` equals `REPS × events` and
//!   `lomon_streams_total` equals `REPS` — the deltas neither drop nor
//!   double-count across session resets.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use lomon_bench::workloads::{disjoint, overlapping};
use lomon_engine::{Backend, DispatchMode, Engine, Session, SessionMetrics};
use lomon_obs::Registry;
use lomon_trace::{SimTime, TimedEvent};

/// The `--check` gate: instrumented ns/event at most this multiple of the
/// detached session's. The measured overhead is a few percent at worst —
/// one relaxed-atomic delta flush per batch, amortized over thousands of
/// events — so 1.10× leaves room for timer noise without ever excusing a
/// counter on the hot path.
const OVERHEAD_GATE: f64 = 1.10;

/// The `--check` gate for explain mode: fused ns/event with a flight
/// recorder armed at most this multiple of the detached session's. Witness
/// capture does real per-step work (a ring append per contributing step),
/// so its budget is looser than the batch-boundary telemetry's — but it
/// must stay cheap enough to arm on any suspicious run.
const EXPLAIN_GATE: f64 = 1.15;

/// Flight-recorder capacity armed on the explain-mode session, matching
/// the CLI's `--explain`.
const EXPLAIN_CAPACITY: usize = 64;

/// Timed repetitions per workload; the minimum is reported. Interleaved
/// between the plain and instrumented sessions so load drift on a shared
/// machine cannot skew the ratio.
const REPS: usize = 15;

struct Workload {
    name: &'static str,
    engine: Engine,
    events: Vec<TimedEvent>,
}

/// One timed replay of `events` through `session` (reset first, outside
/// the timer — identical to the `hot_loop` measurement).
fn replay(session: &mut Session<'_>, events: &[TimedEvent], end: SimTime) -> u128 {
    session.reset();
    let started = Instant::now();
    session.ingest_batch(events);
    session.close(end);
    started.elapsed().as_nanos()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_mode = args.iter().any(|a| a == "--check");

    // The same matrix sizes as `hot_loop`: smaller in check mode so the CI
    // gate stays fast; the per-event ratio is stable across the sizes.
    let (single_rounds, multi_rounds) = if check_mode {
        (20_000, 2_000)
    } else {
        (100_000, 10_000)
    };
    let workloads: Vec<Workload> = vec![
        {
            let (engine, events) = disjoint(1, single_rounds);
            Workload {
                name: "single",
                engine,
                events,
            }
        },
        {
            let (engine, events) = disjoint(50, multi_rounds);
            Workload {
                name: "disjoint-50",
                engine,
                events,
            }
        },
        {
            let (engine, events) = overlapping(50, multi_rounds * 5);
            Workload {
                name: "overlap-50",
                engine,
                events,
            }
        },
        {
            let (engine, events) = overlapping(200, multi_rounds * 5);
            Workload {
                name: "overlap-200",
                engine,
                events,
            }
        },
    ];

    println!(
        "telemetry overhead — fused backend, detached vs live registry vs explain \
         (best of {REPS})"
    );
    println!(
        "{:>12} {:>9} {:>12} {:>14} {:>8} {:>14} {:>8}",
        "workload", "events", "plain ns/ev", "metrics ns/ev", "ratio", "explain ns/ev", "ratio"
    );

    let mut ok = true;
    for w in &workloads {
        let end = w.events.last().map(|e| e.time).unwrap_or(SimTime::ZERO);
        let registry = Registry::new();
        let metrics = SessionMetrics::register(&registry);
        let mut plain = w
            .engine
            .session_with_backend(DispatchMode::Indexed, Backend::Fused);
        let mut instrumented = w
            .engine
            .session_with_backend(DispatchMode::Indexed, Backend::Fused);
        instrumented.attach_metrics(Arc::clone(&metrics));
        let mut explained = w
            .engine
            .session_with_backend(DispatchMode::Indexed, Backend::Fused);
        explained.enable_explain(EXPLAIN_CAPACITY);

        let mut best = [u128::MAX; 3];
        for _ in 0..REPS {
            best[0] = best[0].min(replay(&mut plain, &w.events, end));
            best[1] = best[1].min(replay(&mut instrumented, &w.events, end));
            best[2] = best[2].min(replay(&mut explained, &w.events, end));
        }

        // Telemetry and witness capture observe, never perturb: every
        // verdict and every per-property ops counter must be identical
        // across all three sessions.
        for id in 0..w.engine.len() {
            let same = plain.verdict(id) == instrumented.verdict(id)
                && plain.ops(id) == instrumented.ops(id)
                && plain.verdict(id) == explained.verdict(id)
                && plain.ops(id) == explained.ops(id);
            if !same {
                println!(
                    "FAIL: {}: property {id} diverges under instrumentation \
                     ({:?}/{} vs {:?}/{} metrics vs {:?}/{} explain)",
                    w.name,
                    plain.verdict(id),
                    plain.ops(id),
                    instrumented.verdict(id),
                    instrumented.ops(id),
                    explained.verdict(id),
                    explained.ops(id),
                );
                ok = false;
            }
        }
        // Exact accounting across resets: each replay flushes its deltas.
        let expected_events = (REPS * w.events.len()) as u64;
        if metrics.events.get() != expected_events {
            println!(
                "FAIL: {}: lomon_events_total {} != {expected_events} (= {REPS} x {})",
                w.name,
                metrics.events.get(),
                w.events.len(),
            );
            ok = false;
        }
        if metrics.streams.get() != REPS as u64 {
            println!(
                "FAIL: {}: lomon_streams_total {} != {REPS}",
                w.name,
                metrics.streams.get(),
            );
            ok = false;
        }

        #[allow(clippy::cast_precision_loss)]
        let per_event = |ns: u128| ns as f64 / w.events.len() as f64;
        let (plain_ns, instr_ns, explain_ns) =
            (per_event(best[0]), per_event(best[1]), per_event(best[2]));
        let ratio = instr_ns / plain_ns.max(f64::MIN_POSITIVE);
        let explain_ratio = explain_ns / plain_ns.max(f64::MIN_POSITIVE);
        println!(
            "{:>12} {:>9} {:>12.1} {:>14.1} {:>7.3}x {:>14.1} {:>7.3}x",
            w.name,
            w.events.len(),
            plain_ns,
            instr_ns,
            ratio,
            explain_ns,
            explain_ratio,
        );
        if check_mode && ratio > OVERHEAD_GATE {
            println!(
                "FAIL: {}: instrumented {ratio:.3}x over the {OVERHEAD_GATE}x gate",
                w.name
            );
            ok = false;
        }
        if check_mode && explain_ratio > EXPLAIN_GATE {
            println!(
                "FAIL: {}: explain mode {explain_ratio:.3}x over the {EXPLAIN_GATE}x gate",
                w.name
            );
            ok = false;
        }
    }
    println!();

    if !check_mode {
        return ExitCode::SUCCESS;
    }
    if ok {
        println!(
            "OK: live registry within {OVERHEAD_GATE}x and explain mode within \
             {EXPLAIN_GATE}x of detached on all workloads; verdicts, ops and \
             counters exact"
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
