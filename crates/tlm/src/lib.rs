//! # lomon-tlm — TLM modelling layer and the case-study platform
//!
//! The paper's case study is "an access-control device based on face
//! recognition" prototyped in SystemC/TLM (Fig. 2). This crate rebuilds
//! that prototype on the `lomon-kernel` simulation kernel:
//!
//! * [`payload`] — TLM-2.0 generic payload (blocking transport);
//! * [`bus`] — the address decoder routing transactions to components;
//! * [`observe`] — the observation hub: publishes interface events to
//!   recorded traces and online monitors, and schedules kernel timeouts
//!   for open monitor deadlines;
//! * [`firmware`] — the embedded software as interpretable instructions;
//! * [`platform`] — GPIO, SEN, IPU, LCDC, INTC, TMR1/2, MEM, LOCK, Bus and
//!   CPU, with fault-injection switches;
//! * [`scenario`] — assembled verification scenarios: nominal runs and
//!   seven fault variants, each mapped to the property violations the
//!   monitors must catch.
//!
//! ```
//! use lomon_tlm::scenario::{run_scenario, ScenarioConfig};
//!
//! let report = run_scenario(&ScenarioConfig::nominal(1));
//! assert!(report.all_ok());
//! ```

pub mod bus;
pub mod firmware;
pub mod observe;
pub mod payload;
pub mod platform;
pub mod scenario;

pub use bus::{AddressMap, PortId, Region};
pub use firmware::{Firmware, Instr, Operand};
pub use observe::ObservationHub;
pub use payload::{GenericPayload, TlmCommand, TlmResponse};
pub use platform::{EventNames, FaultPlan, Platform, PlatformHandle, TimingConfig};
pub use scenario::{run_scenario, ScenarioConfig, ScenarioReport};
