//! Trace mutations: near-miss negative tests for the monitors.
//!
//! A generated satisfying trace is mutated by one small edit — dropping,
//! duplicating or swapping an event, or injecting the trigger early. The
//! result is *usually* a violation but not always (dropping one event of an
//! `∨`-fragment may stay legal), so each mutant carries the ground-truth
//! verdict computed by the independent pattern oracle; monitors must agree
//! with it. This gives the verification framework of Fig. 1 an endless
//! supply of labelled positive *and* negative stimuli.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lomon_core::ast::Property;
use lomon_core::semantics::PatternOracle;
use lomon_trace::{Name, Trace};

/// The edit applied to the base trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Remove the event at `index`.
    Drop {
        /// Position removed.
        index: usize,
    },
    /// Duplicate the event at `index` right after itself.
    Duplicate {
        /// Position duplicated.
        index: usize,
    },
    /// Swap the events at `index` and `index + 1`.
    SwapAdjacent {
        /// First position of the swapped pair.
        index: usize,
    },
    /// Insert an extra occurrence of `name` at `index`.
    Inject {
        /// Insertion position.
        index: usize,
        /// Injected name.
        name: Name,
    },
}

/// A mutated trace with its oracle verdict.
#[derive(Debug, Clone)]
pub struct Mutant {
    /// The mutated trace (timestamps re-spaced uniformly).
    pub trace: Trace,
    /// What was edited.
    pub kind: MutationKind,
    /// Ground truth: `Ok(())` if every prefix is still acceptable,
    /// `Err(k)` if the oracle rejects at projected position `k`.
    pub oracle: Result<(), usize>,
}

impl Mutant {
    /// Whether the mutation produced an (untimed) violation.
    pub fn violates(&self) -> bool {
        self.oracle.is_err()
    }
}

/// Generate `count` single-edit mutants of `base` (which should satisfy
/// `property`), labelling each with the oracle verdict.
pub fn mutate(property: &Property, base: &Trace, count: u32, seed: u64) -> Vec<Mutant> {
    let mut rng = StdRng::seed_from_u64(seed);
    let oracle = PatternOracle::new(property);
    let alphabet: Vec<Name> = property.alpha().iter().collect();
    let names: Vec<Name> = base.names().collect();
    let mut out = Vec::new();
    if names.is_empty() {
        return out;
    }
    for _ in 0..count {
        let kind = match rng.gen_range(0..4) {
            0 => MutationKind::Drop {
                index: rng.gen_range(0..names.len()),
            },
            1 => MutationKind::Duplicate {
                index: rng.gen_range(0..names.len()),
            },
            2 if names.len() >= 2 => MutationKind::SwapAdjacent {
                index: rng.gen_range(0..names.len() - 1),
            },
            _ => MutationKind::Inject {
                index: rng.gen_range(0..=names.len()),
                name: alphabet[rng.gen_range(0..alphabet.len())],
            },
        };
        let mutated_names = apply(&names, kind);
        let trace = Trace::from_names(mutated_names);
        let oracle_verdict = oracle.check(&trace);
        out.push(Mutant {
            trace,
            kind,
            oracle: oracle_verdict,
        });
    }
    out
}

fn apply(names: &[Name], kind: MutationKind) -> Vec<Name> {
    let mut out = names.to_vec();
    match kind {
        MutationKind::Drop { index } => {
            out.remove(index);
        }
        MutationKind::Duplicate { index } => {
            let name = out[index];
            out.insert(index, name);
        }
        MutationKind::SwapAdjacent { index } => {
            out.swap(index, index + 1);
        }
        MutationKind::Inject { index, name } => {
            out.insert(index, name);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GeneratorConfig};
    use lomon_core::monitor::build_monitor;
    use lomon_core::parse::parse_property;
    use lomon_core::verdict::{Monitor, Verdict};
    use lomon_trace::Vocabulary;

    /// Monitors must agree with the oracle label on every mutant.
    #[test]
    fn monitors_agree_with_mutant_labels() {
        let texts = [
            "all{a, b, c} << go repeated",
            "all{a, b} < any{c[2,3], d} < e << i repeated",
            "n[2,4] << i once",
        ];
        for text in texts {
            let mut voc = Vocabulary::new();
            let property = parse_property(text, &mut voc).expect(text);
            let base = generate(&property, &GeneratorConfig::new(1)).trace;
            for mutant in mutate(&property, &base, 60, 99) {
                let mut monitor = build_monitor(property.clone(), &voc).expect("wf");
                for &e in mutant.trace.iter() {
                    monitor.observe(e);
                }
                let monitor_ok = monitor.verdict() != Verdict::Violated;
                assert_eq!(
                    monitor_ok,
                    !mutant.violates(),
                    "{text}: monitor disagrees with oracle on {:?}",
                    mutant.kind
                );
            }
        }
    }

    #[test]
    fn most_duplicates_of_trivial_ranges_violate() {
        let mut voc = Vocabulary::new();
        let property = parse_property("all{a, b} << go repeated", &mut voc).unwrap();
        let base = generate(&property, &GeneratorConfig::new(2)).trace;
        let mutants = mutate(&property, &base, 40, 7);
        let violating = mutants.iter().filter(|m| m.violates()).count();
        // With [1,1] ranges, almost any duplicate/drop breaks the pattern.
        assert!(violating > 0, "no violating mutants found");
        // …but swaps inside a fragment may be legal: not all must violate.
        assert!(
            violating < mutants.len(),
            "every mutant violated; expected some legal reorderings"
        );
    }

    #[test]
    fn mutants_are_deterministic_per_seed() {
        let mut voc = Vocabulary::new();
        let property = parse_property("all{a, b} << go once", &mut voc).unwrap();
        let base = generate(&property, &GeneratorConfig::new(3)).trace;
        let a = mutate(&property, &base, 10, 5);
        let b = mutate(&property, &base, 10, 5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.trace, y.trace);
        }
    }

    #[test]
    fn empty_base_produces_no_mutants() {
        let mut voc = Vocabulary::new();
        let property = parse_property("a << i once", &mut voc).unwrap();
        assert!(mutate(&property, &Trace::new(), 5, 1).is_empty());
    }
}
