//! Chaos e2e: fault injection against a live server, with healthy
//! streams running alongside.
//!
//! The acceptance bar of the serve tentpole: under injected torn frames,
//! garbage bytes, slow-loris writers, abrupt disconnects and oversized
//! lines, the server never panics, faulty streams finalize with error
//! frames, and healthy streams' full byte output is **identical** to a
//! fault-free run.

mod common;

use std::net::{Shutdown, SocketAddr};
use std::thread;
use std::time::Duration;

use common::{test_config, Client, RULEBOOK};
use lomon_serve::Server;

/// How many healthy clients run in each round.
const HEALTHY: usize = 9;

fn chaos_config() -> lomon_serve::ServeConfig {
    let mut config = test_config();
    // Short enough that the slow-loris injector is reaped within the
    // test, long enough that healthy clients (which never pause) are not.
    config.idle_timeout = Duration::from_millis(400);
    config
}

/// Deterministic per-client scripts, three behaviors round-robin:
/// a clean double stream, an ordering violation, a satisfied deadline.
fn healthy_script(i: usize) -> Vec<&'static str> {
    match i % 3 {
        0 => vec![
            "{\"time\": \"10ns\", \"name\": \"set_imgAddr\"}",
            "{\"time\": \"20ns\", \"name\": \"set_glAddr\"}",
            "{\"time\": \"30ns\", \"name\": \"set_glSize\"}",
            "{\"time\": \"40ns\", \"name\": \"start\"}",
            "{\"end\": \"1us\"}",
            // Second stream on the recycled session, same connection.
            "{\"time\": \"10ns\", \"name\": \"set_glSize\"}",
            "{\"time\": \"20ns\", \"name\": \"set_glAddr\"}",
            "{\"time\": \"30ns\", \"name\": \"set_imgAddr\"}",
            "{\"time\": \"40ns\", \"name\": \"start\"}",
            "{\"end\": \"2us\"}",
        ],
        1 => vec![
            "{\"time\": \"5ns\", \"name\": \"start\"}",
            "{\"end\": \"1us\"}",
        ],
        _ => vec![
            "{\"time\": \"10ns\", \"dir\": \"in\", \"name\": \"go\"}",
            "{\"time\": \"30ns\", \"dir\": \"out\", \"name\": \"done\"}",
            "{\"end\": \"1us\"}",
        ],
    }
}

/// Run one healthy client to completion and return its entire byte
/// output (ready + verdicts + summaries), which must be deterministic.
fn run_healthy(addr: SocketAddr, i: usize) -> String {
    let mut client = Client::connect(addr);
    for frame in healthy_script(i) {
        client.send(frame);
    }
    client.finish()
}

fn spawn_healthy(addr: SocketAddr) -> Vec<thread::JoinHandle<String>> {
    (0..HEALTHY)
        .map(|i| thread::spawn(move || run_healthy(addr, i)))
        .collect()
}

#[test]
fn healthy_streams_are_unaffected_by_concurrent_faults() {
    // Round 1: fault-free baseline.
    let baseline_server = Server::start(chaos_config(), RULEBOOK).expect("baseline server");
    let baseline: Vec<String> = spawn_healthy(baseline_server.local_addr())
        .into_iter()
        .map(|h| h.join().expect("healthy client"))
        .collect();
    assert_eq!(baseline_server.metrics().panics.get(), 0);
    drop(baseline_server);
    for (i, out) in baseline.iter().enumerate() {
        assert!(
            out.contains("\"type\": \"summary\""),
            "baseline client {i} got no summary: {out}"
        );
    }

    // Round 2: the same healthy clients, now sharing the server with
    // every fault injector at once.
    let server = Server::start(chaos_config(), RULEBOOK).expect("chaos server");
    let addr = server.local_addr();
    let healthy = spawn_healthy(addr);

    let garbage = thread::spawn(move || {
        let mut c = Client::connect(addr);
        c.read_line(); // ready
        c.send_raw(b"\x01\x02 this is not json at all\n");
        c.read_to_eof()
    });
    let torn = thread::spawn(move || {
        // Half a frame, then vanish: a torn final frame.
        let mut c = Client::connect(addr);
        c.read_line(); // ready — guarantees the handler is up
        c.send_raw(b"{\"time\": \"10ns\", \"na");
        let _ = c.stream.shutdown(Shutdown::Both);
    });
    let oversized = thread::spawn(move || {
        let mut c = Client::connect(addr);
        c.read_line(); // ready
        let mut line = vec![b'x'; 80 * 1024];
        line.push(b'\n');
        c.send_raw(&line);
        c.read_to_eof()
    });
    let time_travel = thread::spawn(move || {
        let mut c = Client::connect(addr);
        c.read_line(); // ready
        c.send("{\"time\": \"50ns\", \"name\": \"set_imgAddr\"}");
        c.send("{\"time\": \"10ns\", \"name\": \"set_glAddr\"}");
        c.read_to_eof()
    });
    let slow_loris = thread::spawn(move || {
        // Two bytes, then silence: reaped by the idle timeout.
        let mut c = Client::connect(addr);
        c.read_line(); // ready
        c.send_raw(b"{\"");
        c.read_to_eof()
    });

    let outputs: Vec<String> = healthy
        .into_iter()
        .map(|h| h.join().expect("healthy client"))
        .collect();
    let garbage_out = garbage.join().expect("garbage injector");
    torn.join().expect("torn injector");
    let oversized_out = oversized.join().expect("oversized injector");
    let time_travel_out = time_travel.join().expect("time-travel injector");
    let slow_loris_out = slow_loris.join().expect("slow-loris injector");

    // Healthy streams: byte-identical to the fault-free run.
    for (i, (chaos, clean)) in outputs.iter().zip(&baseline).enumerate() {
        assert_eq!(
            chaos, clean,
            "healthy client {i} diverged from the fault-free run"
        );
    }

    // Faulty streams finalized with error frames naming the fault.
    assert!(
        garbage_out.contains("\"type\": \"error\""),
        "got: {garbage_out}"
    );
    assert!(
        oversized_out.contains("\"type\": \"error\""),
        "got: {oversized_out}"
    );
    assert!(
        oversized_out.contains("exceeds 65536 bytes"),
        "got: {oversized_out}"
    );
    assert!(
        time_travel_out.contains("\"type\": \"error\""),
        "got: {time_travel_out}"
    );
    assert!(
        time_travel_out.contains("precedes"),
        "got: {time_travel_out}"
    );
    assert!(
        slow_loris_out.contains("idle timeout"),
        "got: {slow_loris_out}"
    );

    // Every isolation class was hit; nothing panicked.
    let metrics = server.metrics();
    assert_eq!(metrics.panics.get(), 0, "a handler panicked under chaos");
    assert!(metrics.parse_errors.get() >= 1, "garbage not counted");
    assert!(
        metrics.protocol_errors.get() >= 2,
        "oversized/time-travel not counted"
    );
    assert!(metrics.disconnects.get() >= 1, "torn frame not counted");
    assert!(metrics.idle_reaps.get() >= 1, "slow loris not reaped");
    // All 2 * HEALTHY healthy streams (variant 0 runs two per connection)
    // finalized cleanly despite the chaos.
    let healthy_streams: u64 = (0..HEALTHY).map(|i| if i % 3 == 0 { 2 } else { 1 }).sum();
    assert_eq!(metrics.streams.get(), healthy_streams);
}

/// An abrupt disconnect between frames (not mid-frame) is a clean EOF:
/// the stream finalizes with a summary, not an error.
#[test]
fn disconnect_between_frames_finalizes_cleanly() {
    let server = Server::start(chaos_config(), RULEBOOK).expect("server");
    let mut client = Client::connect(server.local_addr());
    client.read_line(); // ready
    client.send("{\"time\": \"10ns\", \"name\": \"start\"}");
    client.read_line(); // pushed verdict: event fully processed
    let out = client.finish();
    assert!(out.contains("\"type\": \"summary\""), "got: {out}");
    assert_eq!(server.metrics().streams.get(), 1);
    assert_eq!(server.metrics().panics.get(), 0);
}

/// Faults on one connection never leak into a session that is later
/// recycled: after a protocol fault, the next connection's stream starts
/// from a pristine state.
#[test]
fn fault_does_not_poison_the_recycled_session() {
    let server = Server::start(chaos_config(), RULEBOOK).expect("server");
    let addr = server.local_addr();

    // Dirty a session mid-episode, then fault the stream.
    let mut faulty = Client::connect(addr);
    faulty.read_line(); // ready
    faulty.send("{\"time\": \"50ns\", \"name\": \"set_imgAddr\"}");
    faulty.send("{\"time\": \"10ns\", \"name\": \"set_glAddr\"}"); // time travel
    let out = faulty.read_to_eof();
    assert!(out.contains("\"type\": \"error\""), "got: {out}");

    // The recycled session must not remember the half-finished episode:
    // a clean configuration on the next connection stays clean.
    let mut fresh = Client::connect(addr);
    fresh.read_line(); // ready
    for frame in [
        "{\"time\": \"10ns\", \"name\": \"set_imgAddr\"}",
        "{\"time\": \"20ns\", \"name\": \"set_glAddr\"}",
        "{\"time\": \"30ns\", \"name\": \"set_glSize\"}",
        "{\"time\": \"40ns\", \"name\": \"start\"}",
        "{\"end\": \"1us\"}",
    ] {
        fresh.send(frame);
    }
    let out = fresh.finish();
    let summary = out
        .lines()
        .find(|l| l.contains("\"type\": \"summary\""))
        .expect("summary");
    assert!(summary.contains("\"ok\": true"), "got: {summary}");
    assert_eq!(server.metrics().panics.get(), 0);
}
