//! The paper's §8 future work, implemented: generate random stimuli from a
//! loose-ordering pattern, measure specification coverage, and stress the
//! monitors with labelled near-miss mutants.
//!
//! ```sh
//! cargo run --example stimuli_generation
//! ```

use lomon::core::monitor::build_monitor;
use lomon::core::parse::parse_property;
use lomon::core::verdict::{run_to_end, Verdict};
use lomon::gen::{generate_until_covered, mutate, GeneratorConfig};
use lomon::trace::Vocabulary;

fn main() {
    let mut voc = Vocabulary::new();
    // The Fig. 4 property of the paper.
    let property = parse_property(
        "all{n1, n2} < any{n3[2,8], n4} < n5 << i repeated",
        &mut voc,
    )
    .unwrap();
    println!("pattern: {}", property.display(&voc));
    println!();

    // Coverage-directed generation (Fig. 1's "coverage improver").
    let (traces, coverage) = generate_until_covered(&property, &GeneratorConfig::new(1), 1.0, 500);
    println!("generated {} satisfying traces; coverage:", traces.len());
    println!(
        "  range boundaries : {:>5.1}%",
        coverage.boundary_coverage() * 100.0
    );
    println!(
        "  ∨-subsets        : {:>5.1}%",
        coverage.subset_coverage() * 100.0
    );
    println!(
        "  fragment orders  : {:>5.1}%",
        coverage.order_coverage() * 100.0
    );
    println!();

    // Every generated trace must be accepted by the monitor.
    let mut accepted = 0;
    for generated in &traces {
        let mut monitor = build_monitor(property.clone(), &voc).unwrap();
        if run_to_end(&mut monitor, &generated.trace).is_ok() {
            accepted += 1;
        }
    }
    println!("monitor accepted {accepted}/{} positives", traces.len());

    // Mutants carry ground-truth labels from the reference semantics; the
    // monitor must agree with every label.
    let base = &traces[0].trace;
    let mutants = mutate(&property, base, 200, 13);
    let mut agreements = 0;
    let mut violating = 0;
    for mutant in &mutants {
        let mut monitor = build_monitor(property.clone(), &voc).unwrap();
        let verdict = run_to_end(&mut monitor, &mutant.trace);
        let monitor_ok = verdict != Verdict::Violated;
        if monitor_ok != mutant.violates() {
            agreements += 1;
        }
        if mutant.violates() {
            violating += 1;
        }
    }
    println!(
        "mutants: {} total, {} violating; monitor agreed with the oracle on {}/{}",
        mutants.len(),
        violating,
        agreements,
        mutants.len()
    );
}
