//! The streaming event-line grammar shared by `lomon watch` and
//! `lomon serve`.
//!
//! Both stream surfaces accept the same two line formats —
//!
//! * the trace text format, `<time> <in|out> <name>` with an optional
//!   `end <time>` marker (one source of truth with
//!   [`read_trace`](crate::read_trace), via
//!   [`parse_trace_line`](crate::parse_trace_line)); and
//! * NDJSON: one flat JSON object per line,
//!   `{"time": "10ns", "dir": "in", "name": "x"}` or `{"end": "500ns"}`
//!
//! — and parse them into the same [`StreamLine`]. Keeping the grammar
//! here (rather than in the CLI binary) is what guarantees a frame that
//! `watch` accepts is byte-for-byte a frame `serve` accepts.

use std::borrow::Cow;

use crate::name::Direction;
use crate::time::{parse_sim_time, SimTime};

/// Input format of an event stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StreamFormat {
    /// The trace text format: `<time> <in|out> <name>`, optional `end <t>`.
    Trace,
    /// One flat JSON object per line:
    /// `{"time": "10ns", "dir": "in", "name": "x"}` or `{"end": "500ns"}`.
    Ndjson,
}

/// One parsed stream line.
#[derive(Debug, PartialEq, Eq)]
pub enum StreamLine {
    /// An interface event.
    Event {
        /// Timestamp of the occurrence.
        time: SimTime,
        /// Interface direction the name will be interned with.
        direction: Direction,
        /// The interface name, still raw text (interning needs a mutable
        /// vocabulary the parser does not have).
        name: String,
    },
    /// An `end`/`{"end": …}` marker: observation time advanced with no
    /// event.
    End(SimTime),
}

/// One parsed stream line with the name **borrowed** from the input
/// buffer whenever possible (it goes owned only when a JSON escape forced
/// a copy). This is the zero-copy twin of [`StreamLine`], used by the
/// wire-speed paths in `lomon watch` and `lomon serve` where the next
/// step is a byte-keyed vocabulary probe, not an allocation.
#[derive(Debug, PartialEq, Eq)]
pub enum StreamLineRef<'a> {
    /// An interface event.
    Event {
        /// Timestamp of the occurrence.
        time: SimTime,
        /// Interface direction the name would be interned with.
        direction: Direction,
        /// The interface name, borrowed from the line unless a JSON
        /// escape forced an owned copy.
        name: Cow<'a, str>,
    },
    /// An `end`/`{"end": …}` marker: observation time advanced with no
    /// event.
    End(SimTime),
}

impl StreamLineRef<'_> {
    /// Convert to the owned [`StreamLine`], copying the name.
    pub fn into_owned(self) -> StreamLine {
        match self {
            StreamLineRef::Event {
                time,
                direction,
                name,
            } => StreamLine::Event {
                time,
                direction,
                name: name.into_owned(),
            },
            StreamLineRef::End(time) => StreamLine::End(time),
        }
    }
}

/// Parse one stream line in the given format. `Ok(None)` is a blank line
/// or comment — skippable, not an error.
///
/// # Errors
///
/// A human-readable description of the first grammar fault on the line.
pub fn parse_stream_line(format: StreamFormat, line: &str) -> Result<Option<StreamLine>, String> {
    Ok(parse_stream_line_ref(format, line)?.map(StreamLineRef::into_owned))
}

/// Zero-copy variant of [`parse_stream_line`]: the event name borrows
/// from `line` (owned only when a JSON escape forced a copy). Grammar and
/// error text are identical — [`parse_stream_line`] is this plus
/// [`StreamLineRef::into_owned`].
///
/// # Errors
///
/// See [`parse_stream_line`].
pub fn parse_stream_line_ref(
    format: StreamFormat,
    line: &str,
) -> Result<Option<StreamLineRef<'_>>, String> {
    match format {
        StreamFormat::Trace => Ok(
            crate::io::parse_trace_line(line)?.map(|parsed| match parsed {
                crate::io::TraceLine::Event {
                    time,
                    direction,
                    name,
                } => StreamLineRef::Event {
                    time,
                    direction,
                    name: Cow::Borrowed(name),
                },
                crate::io::TraceLine::End(time) => StreamLineRef::End(time),
            }),
        ),
        StreamFormat::Ndjson => parse_ndjson_line_ref(line),
    }
}

/// Byte-slice variant of [`parse_stream_line_ref`] for decoders that hold
/// raw frames: the trace text grammar is lexed directly from bytes (via
/// [`parse_trace_line_bytes`](crate::parse_trace_line_bytes)); NDJSON is
/// validated as UTF-8 once and then parsed borrowing from the frame.
///
/// # Errors
///
/// See [`parse_stream_line`]; additionally `line is not valid UTF-8` on
/// non-UTF-8 input.
pub fn parse_stream_line_bytes(
    format: StreamFormat,
    raw: &[u8],
) -> Result<Option<StreamLineRef<'_>>, String> {
    match format {
        StreamFormat::Trace => {
            Ok(
                crate::wire::parse_trace_line_bytes(raw)?.map(|parsed| match parsed {
                    crate::io::TraceLine::Event {
                        time,
                        direction,
                        name,
                    } => StreamLineRef::Event {
                        time,
                        direction,
                        name: Cow::Borrowed(name),
                    },
                    crate::io::TraceLine::End(time) => StreamLineRef::End(time),
                }),
            )
        }
        StreamFormat::Ndjson => match std::str::from_utf8(raw) {
            Ok(line) => parse_ndjson_line_ref(line),
            Err(_) => Err("line is not valid UTF-8".into()),
        },
    }
}

/// Parse one line of the trace text format, delegating the grammar to
/// [`parse_trace_line`](crate::parse_trace_line) (one source of truth
/// with [`read_trace`](crate::read_trace)).
///
/// # Errors
///
/// See [`parse_stream_line`].
pub fn parse_stream_trace_line(line: &str) -> Result<Option<StreamLine>, String> {
    Ok(
        crate::io::parse_trace_line(line)?.map(|parsed| match parsed {
            crate::io::TraceLine::Event {
                time,
                direction,
                name,
            } => StreamLine::Event {
                time,
                direction,
                name: name.to_owned(),
            },
            crate::io::TraceLine::End(time) => StreamLine::End(time),
        }),
    )
}

/// Parse one NDJSON stream line: a flat JSON object with string values,
/// either `{"time": …, "dir": …, "name": …}` (`dir` optional, default
/// `in`) or `{"end": …}`.
///
/// # Errors
///
/// See [`parse_stream_line`].
pub fn parse_ndjson_line(line: &str) -> Result<Option<StreamLine>, String> {
    Ok(parse_ndjson_line_ref(line)?.map(StreamLineRef::into_owned))
}

/// Zero-copy variant of [`parse_ndjson_line`]: the object is scanned in
/// place and only the fields the event grammar cares about are kept, each
/// borrowed from `line` unless a JSON escape forced an owned copy. No
/// per-field `String`s, no intermediate pair list.
///
/// # Errors
///
/// See [`parse_stream_line`].
pub fn parse_ndjson_line_ref(line: &str) -> Result<Option<StreamLineRef<'_>>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    // Scan the whole object first (so syntax faults anywhere on the line
    // win over missing-field complaints, exactly like the pair-list
    // parser did), keeping the first occurrence of each known key.
    let mut end: Option<Cow<'_, str>> = None;
    let mut time_field: Option<Cow<'_, str>> = None;
    let mut dir: Option<Cow<'_, str>> = None;
    let mut name: Option<Cow<'_, str>> = None;
    scan_flat_json(trimmed, |key, value| {
        let slot = match key {
            "end" => &mut end,
            "time" => &mut time_field,
            "dir" => &mut dir,
            "name" => &mut name,
            _ => return,
        };
        if slot.is_none() {
            *slot = Some(value);
        }
    })?;
    if let Some(end) = end {
        return Ok(Some(StreamLineRef::End(parse_sim_time(&end)?)));
    }
    let time_text = time_field.ok_or("missing `time` field")?;
    let time = parse_sim_time(&time_text)?;
    let direction = match dir.as_deref() {
        None | Some("in") => Direction::Input,
        Some("out") => Direction::Output,
        Some(other) => {
            return Err(format!(
                "unknown direction `{other}` (expected `in` or `out`)"
            ))
        }
    };
    let name = name.ok_or("missing `name` field")?;
    if name.is_empty() {
        return Err("empty event name".into());
    }
    Ok(Some(StreamLineRef::Event {
        time,
        direction,
        name,
    }))
}

/// Minimal flat-JSON-object parser: `{"key": "value", …}` with string
/// values only (`\"`, `\\`, `\n`, `\t` escapes). Enough for an event
/// stream; a full JSON parser would be an external dependency.
///
/// # Errors
///
/// A human-readable description of the first syntax fault.
pub fn parse_flat_json(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    scan_flat_json(text, |key, value| {
        pairs.push((key.to_owned(), value.into_owned()));
    })?;
    Ok(pairs)
}

/// Offset-tracking scanner behind [`parse_flat_json`] and
/// [`parse_ndjson_line_ref`]: walks the object once, invoking `visit` for
/// every key/value pair with the value **borrowed** from `text` whenever
/// it contains no escape. Keys of the event grammar are plain
/// identifiers, so in the steady state nothing is copied.
fn scan_flat_json<'a>(
    text: &'a str,
    mut visit: impl FnMut(&str, Cow<'a, str>),
) -> Result<(), String> {
    let mut s = Scanner { text, pos: 0 };
    s.skip_ws();
    if s.next_char() != Some('{') {
        return Err("expected `{`".into());
    }
    s.skip_ws();
    if s.peek() == Some('}') {
        s.next_char();
    } else {
        loop {
            let key = s.string()?;
            s.skip_ws();
            if s.next_char() != Some(':') {
                return Err(format!("expected `:` after key `{key}`"));
            }
            let value = s.string()?;
            visit(&key, value);
            s.skip_ws();
            match s.next_char() {
                Some(',') => continue,
                Some('}') => break,
                _ => return Err("expected `,` or `}`".into()),
            }
        }
    }
    s.skip_ws();
    if s.next_char().is_some() {
        return Err("trailing characters after object".into());
    }
    Ok(())
}

/// Byte-offset cursor over `text`; `char`-aware where the grammar is
/// (whitespace, string contents) but able to hand back borrowed slices.
struct Scanner<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn peek(&self) -> Option<char> {
        self.text[self.pos..].chars().next()
    }

    fn next_char(&mut self) -> Option<char> {
        let c = self.text[self.pos..].chars().next()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if !c.is_whitespace() {
                break;
            }
            self.pos += c.len_utf8();
        }
    }

    /// Parse a JSON string literal. Escape-free literals — every key and
    /// essentially every value of the event grammar — borrow straight
    /// from the input; the first escape falls back to an owned
    /// accumulator seeded with the literal prefix.
    fn string(&mut self) -> Result<Cow<'a, str>, String> {
        self.skip_ws();
        if self.next_char() != Some('"') {
            return Err("expected `\"`".into());
        }
        let start = self.pos;
        loop {
            match self.next_char() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(Cow::Borrowed(&self.text[start..self.pos - 1])),
                Some('\\') => {
                    let mut out = String::from(&self.text[start..self.pos - 1]);
                    self.push_escape(&mut out)?;
                    return self.string_rest(out).map(Cow::Owned);
                }
                Some(_) => {}
            }
        }
    }

    /// Continue a string after the borrowed fast path hit an escape.
    fn string_rest(&mut self, mut out: String) -> Result<String, String> {
        loop {
            match self.next_char() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(out),
                Some('\\') => self.push_escape(&mut out)?,
                Some(c) => out.push(c),
            }
        }
    }

    fn push_escape(&mut self, out: &mut String) -> Result<(), String> {
        match self.next_char() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            other => return Err(format!("unsupported escape `\\{other:?}`")),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndjson_event_with_default_direction() {
        let line = r#"{"time": "10ns", "name": "set_imgAddr"}"#;
        let parsed = parse_ndjson_line(line).expect("parses").expect("a line");
        assert_eq!(
            parsed,
            StreamLine::Event {
                time: SimTime::from_ns(10),
                direction: Direction::Input,
                name: "set_imgAddr".into(),
            }
        );
    }

    #[test]
    fn ndjson_end_marker() {
        let parsed = parse_ndjson_line(r#"{"end": "500ns"}"#).expect("parses");
        assert_eq!(parsed, Some(StreamLine::End(SimTime::from_ns(500))));
    }

    #[test]
    fn blank_lines_are_skipped_in_both_formats() {
        for format in [StreamFormat::Trace, StreamFormat::Ndjson] {
            assert_eq!(parse_stream_line(format, "   "), Ok(None));
        }
        assert_eq!(
            parse_stream_line(StreamFormat::Trace, "# comment"),
            Ok(None)
        );
    }

    #[test]
    fn faults_name_the_problem() {
        assert!(parse_ndjson_line(r#"{"time": "10ns"}"#)
            .unwrap_err()
            .contains("name"));
        assert!(
            parse_ndjson_line(r#"{"time": "10ns", "dir": "sideways", "name": "x"}"#)
                .unwrap_err()
                .contains("sideways")
        );
        assert!(parse_ndjson_line("not json").is_err());
        assert!(parse_ndjson_line(r#"{"time": "10ns", "name": ""}"#).is_err());
        assert!(parse_stream_line(StreamFormat::Trace, "10ns sideways x").is_err());
    }

    #[test]
    fn ref_parser_borrows_unless_escaped() {
        let line = r#"{"time": "10ns", "dir": "out", "name": "set_irq"}"#;
        let parsed = parse_ndjson_line_ref(line).expect("parses").expect("line");
        match &parsed {
            StreamLineRef::Event { name, .. } => {
                assert!(matches!(name, Cow::Borrowed(_)), "no escape → borrowed");
                assert_eq!(name.as_ref(), "set_irq");
            }
            StreamLineRef::End(_) => panic!("expected event"),
        }
        assert_eq!(
            parsed.into_owned(),
            parse_ndjson_line(line).unwrap().unwrap()
        );

        let escaped = r#"{"time": "10ns", "name": "a\"b"}"#;
        let parsed = parse_ndjson_line_ref(escaped)
            .expect("parses")
            .expect("line");
        match &parsed {
            StreamLineRef::Event { name, .. } => {
                assert!(matches!(name, Cow::Owned(_)), "escape → owned");
                assert_eq!(name.as_ref(), "a\"b");
            }
            StreamLineRef::End(_) => panic!("expected event"),
        }
    }

    #[test]
    fn flat_json_handles_escapes_and_duplicates_like_before() {
        let pairs = parse_flat_json(r#"{"k": "a\\b\n\t\"", "k": "second"}"#).expect("parses");
        assert_eq!(
            pairs,
            vec![
                ("k".to_owned(), "a\\b\n\t\"".to_owned()),
                ("k".to_owned(), "second".to_owned()),
            ]
        );
        // First occurrence wins for the event grammar.
        let parsed = parse_ndjson_line(r#"{"time": "1ns", "name": "x", "name": "y"}"#).unwrap();
        assert_eq!(
            parsed,
            Some(StreamLine::Event {
                time: SimTime::from_ns(1),
                direction: Direction::Input,
                name: "x".into(),
            })
        );
        assert!(parse_flat_json(r#"{"k": "\q"}"#)
            .unwrap_err()
            .contains("unsupported escape"));
        assert!(parse_flat_json(r#"{"k": "open"#)
            .unwrap_err()
            .contains("unterminated"));
        assert!(parse_flat_json(r#"{"k" "v"}"#)
            .unwrap_err()
            .contains("expected `:` after key `k`"));
        assert!(parse_flat_json(r#"{} trailing"#)
            .unwrap_err()
            .contains("trailing characters"));
        assert_eq!(parse_flat_json("{}").expect("empty object"), vec![]);
    }

    #[test]
    fn byte_stream_line_matches_str_variant() {
        let cases: [(&str, StreamFormat); 4] = [
            ("10ns out done", StreamFormat::Trace),
            ("end 5us", StreamFormat::Trace),
            (r#"{"time": "10ns", "name": "done"}"#, StreamFormat::Ndjson),
            (r#"{"end": "5us"}"#, StreamFormat::Ndjson),
        ];
        for (line, format) in cases {
            let from_str = parse_stream_line_ref(format, line);
            let from_bytes = parse_stream_line_bytes(format, line.as_bytes());
            assert_eq!(from_str, from_bytes, "mismatch on {line:?}");
        }
        assert!(
            parse_stream_line_bytes(StreamFormat::Ndjson, b"{\"name\": \"a\xff\"}")
                .unwrap_err()
                .contains("UTF-8")
        );
    }

    #[test]
    fn trace_and_ndjson_agree_on_the_same_event() {
        let a = parse_stream_line(StreamFormat::Trace, "10ns out done").unwrap();
        let b = parse_stream_line(
            StreamFormat::Ndjson,
            r#"{"time": "10ns", "dir": "out", "name": "done"}"#,
        )
        .unwrap();
        assert_eq!(a, b);
    }
}
