//! Differential test of the two cost models: `lomon-core`'s Drct estimate
//! and `lomon-psl`'s ViaPSL estimate are computed by independent code in
//! different crates, but both describe the *same* properties — the shared
//! paper examples of Section 7 / Fig. 6. This suite recomputes every
//! Θ-level quantity a third time, directly from the shared AST, and checks
//! that each crate agrees with it (and hence with the other), then checks
//! the cross-model relations the paper's comparison rests on.

use lomon::core::ast::{LooseOrdering, Property};
use lomon::core::complexity::drct_cost;
use lomon::core::parse::parse_property;
use lomon::psl::complexity::viapsl_cost;
use lomon::trace::Vocabulary;

/// The examples shared by the two crates' suites and EXPERIMENTS: the
/// Fig. 6-style rows plus the paper's Examples 2 and 3.
const SHARED_EXAMPLES: &[&str] = &[
    "n << i repeated",
    "n << i once",
    "n[2,8] << i repeated",
    "n[100,60000] << i repeated",
    "all{n1, n2, n3, n4} << i once",
    "all{n1, n2, n3, n4, n5} << i once",
    "all{a, b} < any{c[2,8], d} < e << i repeated",
    "all{set_imgAddr, set_glAddr, set_glSize} << start once",
    "n1 => n2 < n3 < n4 within 1 ms",
    "start => read_img[2,4] < set_irq within 1 ms",
    "n1 => n2[100,60000] < n3 < n4 within 1 ms",
];

fn parse(text: &str) -> (Property, Vocabulary) {
    let mut voc = Vocabulary::new();
    let property = parse_property(text, &mut voc).expect(text);
    (property, voc)
}

fn orderings(property: &Property) -> Vec<&LooseOrdering> {
    match property {
        Property::Antecedent(a) => vec![&a.antecedent],
        Property::Timed(t) => vec![&t.premise, &t.response],
    }
}

/// The paper's Drct Θ quantities, recomputed here from the AST alone.
fn ast_theta(property: &Property) -> (u64, u64, u32) {
    let orderings = orderings(property);
    let time = orderings
        .iter()
        .map(|l| l.max_fragment_alpha() as u64)
        .max()
        .unwrap_or(0);
    let space = orderings.iter().map(|l| l.total_alpha() as u64).sum();
    let max_bound = orderings
        .iter()
        .flat_map(|l| l.ranges())
        .map(|r| r.max)
        .max()
        .unwrap_or(0);
    (time, space, max_bound)
}

/// The paper's ViaPSL Θ expression `Σ widths² + Σ |F_j|·|F_{j−1}|`,
/// recomputed here from the AST alone, mirroring the translation's episode
/// normalization without touching `lomon-psl` internals: an antecedent's
/// content is `P`'s fragments (the trigger is a bare token, no range); a
/// timed implication's content is `P·Q` minus its final fragment, whose
/// single range becomes the episode boundary and still contributes its
/// squared width.
fn ast_viapsl_theta(property: &Property) -> u64 {
    let (content, trigger_width) = match property {
        Property::Antecedent(a) => (a.antecedent.fragments.clone(), None),
        Property::Timed(t) => {
            let mut content = t.all_fragments();
            let last = content.pop().expect("well-formed response is non-empty");
            (content, Some(last.ranges[0].width()))
        }
    };
    let mut units: u64 = content
        .iter()
        .flat_map(|f| f.ranges.iter())
        .map(|r| r.width() * r.width())
        .sum();
    if let Some(width) = trigger_width {
        units += width * width;
    }
    for j in 1..content.len() {
        units += (content[j].ranges.len() * content[j - 1].ranges.len()) as u64;
    }
    units
}

/// Both crates must agree with the AST-level recomputation (and therefore
/// with each other) on every shared example.
#[test]
fn both_estimates_agree_with_the_shared_ast() {
    for text in SHARED_EXAMPLES {
        let (property, _) = parse(text);
        let drct = drct_cost(&property);
        let viapsl = viapsl_cost(&property).expect(text);

        let (theta_time, theta_space, max_bound) = ast_theta(&property);
        assert_eq!(drct.theta_time, theta_time, "Drct θ-time for {text}");
        assert_eq!(drct.theta_space, theta_space, "Drct θ-space for {text}");
        assert_eq!(drct.max_bound, max_bound, "Drct max bound for {text}");

        assert_eq!(
            viapsl.theta_units,
            ast_viapsl_theta(&property),
            "ViaPSL θ-units for {text}"
        );
        // Internal consistency of the ViaPSL closed form.
        assert_eq!(viapsl.ops_per_event, viapsl.formula_nodes, "{text}");
        assert_eq!(
            viapsl.state_bits,
            lomon::psl::complexity::BITS_PER_NODE * viapsl.formula_nodes,
            "{text}"
        );
    }
}

/// The cross-model relations of Section 7, on every shared example:
/// ViaPSL can never beat Drct, the gap is driven by range widths, and the
/// bound-tracking agrees across the two crates.
#[test]
fn cross_model_relations_hold_on_every_shared_example() {
    for text in SHARED_EXAMPLES {
        let (property, _) = parse(text);
        let drct = drct_cost(&property);
        let viapsl = viapsl_cost(&property).expect(text);

        // ViaPSL per-event work dominates Drct's Θ-time on every example.
        assert!(
            viapsl.ops_per_event >= drct.theta_time,
            "{text}: ViaPSL {} ops/event below Drct θ-time {}",
            viapsl.ops_per_event,
            drct.theta_time
        );
        // Same for state.
        assert!(
            viapsl.state_bits >= drct.state_bits,
            "{text}: ViaPSL {} state bits below Drct {}",
            viapsl.state_bits,
            drct.state_bits
        );
        // Both models see the same widest range: ViaPSL's quadratic term
        // must reach the square of the bound Drct tracks (when any range
        // is non-trivial, i.e. the lexer is engaged).
        if viapsl.delta_ops > 0 {
            let width = u64::from(drct.max_bound);
            assert!(
                viapsl.theta_units >= width,
                "{text}: θ-units {} below the max bound {width} Drct tracks",
                viapsl.theta_units
            );
        }
        // The headline separation: a range width of 60000 explodes ViaPSL
        // by orders of magnitude while Drct's θ-time stays put.
        if text.contains("60000") {
            assert!(viapsl.ops_per_event > 1_000_000_000, "{text}");
            assert!(drct.theta_time <= 2, "{text}");
        }
    }
}

/// The Fig. 6 shape, stated differentially: widening one range changes
/// *neither* Drct θ-measure but multiplies the ViaPSL estimate.
#[test]
fn widening_a_range_separates_the_models() {
    let (narrow, _) = parse("n << i repeated");
    let (wide, _) = parse("n[100,60000] << i repeated");
    let drct_narrow = drct_cost(&narrow);
    let drct_wide = drct_cost(&wide);
    assert_eq!(drct_narrow.theta_time, drct_wide.theta_time);
    assert_eq!(drct_narrow.theta_space, drct_wide.theta_space);
    let viapsl_narrow = viapsl_cost(&narrow).unwrap();
    let viapsl_wide = viapsl_cost(&wide).unwrap();
    assert!(viapsl_wide.ops_per_event > 1_000_000 * viapsl_narrow.ops_per_event.max(1));
}
