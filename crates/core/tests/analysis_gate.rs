//! Differential gate for the bounded-model lint walkers.
//!
//! The static analyses (`L004` vacuity, `L005` subsumption, `L006`
//! conflict) rest on two walkers in `lomon_core::analysis`: `satisfiable`
//! and `pair_facts`, breadth-first searches over compiled-monitor state
//! deduplicated through `analysis_key`. Their soundness claim is that the
//! key is *exact* for the unit-step model — deduplication loses no facts.
//!
//! This gate checks that claim differentially: for randomly generated
//! small properties it enumerates **every** bounded trace literally (all
//! event/gap choice sequences up to the same horizon, no deduplication at
//! all) through the *interpreter* backend — a different lowering and a
//! different execution path — and demands bit-identical verdicts for
//! every fact the lint relies on.

use std::sync::Arc;

use proptest::prelude::*;

use lomon_core::analysis::{pair_facts, satisfiable, PairFacts};
use lomon_core::compiled::CompiledProgram;
use lomon_core::monitor::{build_monitor, PropertyMonitor};
use lomon_core::parse::parse_property;
use lomon_core::verdict::{Monitor, Verdict};
use lomon_trace::{Name, SimTime, TimedEvent, Vocabulary};

/// Far beyond what any generated property needs: the walkers must never
/// give up on these models, so a `None` (budget exceeded) fails the gate.
const BUDGET: usize = 1 << 22;

/// Small loose-orderings over the inputs `a`, `b` — every pattern shape:
/// single events, ranges, `all`/`any` fragments, fragment sequences.
const ORDERINGS: &[&str] = &[
    "a",
    "b",
    "all{a, b}",
    "any{a, b}",
    "a[1,2]",
    "all{a[1,2], b}",
    "any{a, b[1,2]}",
    "a < b",
    "a[1,2] < b",
];

/// A full property: an antecedent requirement triggered by `i`, or a timed
/// implication answered by the output `o` (deadline 0 included on purpose
/// — it is vacuous under the unit-step model, exercising `L004`).
fn property_text() -> impl Strategy<Value = String> {
    (0usize..ORDERINGS.len(), 0usize..2, 0u64..4, 0usize..2).prop_map(
        |(ordering, mode, within, kind)| {
            let ordering = ORDERINGS[ordering];
            if kind == 0 {
                let mode = if mode == 0 { "once" } else { "repeated" };
                format!("{ordering} << i {mode}")
            } else {
                format!("{ordering} => out:o within {within} ns")
            }
        },
    )
}

/// Compile one property text both ways: the flat program the walkers
/// explore, and the interpreter monitor the ground truth steps.
fn both_backends(text: &str, voc: &mut Vocabulary) -> (Arc<CompiledProgram>, PropertyMonitor) {
    let property = parse_property(text, voc).expect("generated text parses");
    let program = Arc::new(CompiledProgram::lower(
        &lomon_core::wf::validate(property.clone(), voc).expect("well-formed"),
    ));
    let interp = build_monitor(property, voc)
        .expect("well-formed")
        .without_diagnostics();
    (program, interp)
}

/// `(ok, success)` of the interpreter monitor if observation ended now —
/// the interp mirror of the walkers' `finish_facts`.
fn interp_finish_facts(mon: &PropertyMonitor, now: SimTime) -> (bool, bool) {
    let mut probe = mon.clone();
    let ok = probe.finish(now) != Verdict::Violated;
    (ok, ok && probe.satisfied_episodes() > 0)
}

/// Every successor of a node in the bounded model: one gap (time advances
/// without an event) plus one per branch name, all at `depth + 1` ns.
fn successors(mon: &PropertyMonitor, depth: usize, branch: &[Name]) -> Vec<PropertyMonitor> {
    let next = SimTime::from_ns(depth as u64 + 1);
    let mut out = Vec::with_capacity(branch.len() + 1);
    let mut gap = mon.clone();
    gap.advance_time(next);
    out.push(gap);
    for &name in branch {
        let mut step = mon.clone();
        step.observe(TimedEvent::new(name, next));
        out.push(step);
    }
    out
}

/// Ground truth for `satisfiable`: literal enumeration of every choice
/// sequence of at most `horizon` steps, no state deduplication.
fn enumerate_success(mon: &PropertyMonitor, depth: usize, horizon: usize, branch: &[Name]) -> bool {
    let (_, succ) = interp_finish_facts(mon, SimTime::from_ns(depth as u64));
    if succ {
        return true;
    }
    // A final monitor ignores every further event, so extensions repeat
    // the same finish facts (the walkers prune identically).
    if depth == horizon || mon.verdict().is_final() {
        return false;
    }
    successors(mon, depth, branch)
        .iter()
        .any(|next| enumerate_success(next, depth + 1, horizon, branch))
}

/// Ground truth for `pair_facts`: the same literal enumeration over the
/// shared trace, stepping both interpreter monitors in lock-step.
fn enumerate_pair(
    ma: &PropertyMonitor,
    mb: &PropertyMonitor,
    depth: usize,
    horizon: usize,
    branch: &[Name],
    facts: &mut PairFacts,
) {
    let now = SimTime::from_ns(depth as u64);
    let (ok_i, succ_i) = interp_finish_facts(ma, now);
    let (ok_j, succ_j) = interp_finish_facts(mb, now);
    facts.ok_i_not_j |= ok_i && !ok_j;
    facts.ok_j_not_i |= ok_j && !ok_i;
    facts.succ_i_ok_j |= succ_i && ok_j;
    facts.succ_j_ok_i |= succ_j && ok_i;
    facts.succ_i |= succ_i;
    facts.succ_j |= succ_j;
    if depth == horizon || (ma.verdict().is_final() && mb.verdict().is_final()) {
        return;
    }
    for (na, nb) in successors(ma, depth, branch)
        .into_iter()
        .zip(successors(mb, depth, branch))
    {
        enumerate_pair(&na, &nb, depth + 1, horizon, branch, facts);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The vacuity verdict agrees with literal trace enumeration.
    #[test]
    fn satisfiable_matches_exhaustive_enumeration(text in property_text()) {
        let mut voc = Vocabulary::new();
        let (program, interp) = both_backends(&text, &mut voc);
        let horizon = program.bounded_horizon();
        prop_assume!(horizon <= 7);
        let branch: Vec<Name> = program.alphabet().iter().collect();
        let walked = satisfiable(&program, horizon, BUDGET)
            .expect("budget generous enough for every generated model");
        let enumerated = enumerate_success(&interp, 0, horizon, &branch);
        prop_assert_eq!(walked, enumerated, "property: {}", text);
    }

    /// Every joint fact behind the subsumption and conflict lints agrees
    /// with literal product enumeration.
    #[test]
    fn pair_facts_match_exhaustive_enumeration(
        ta in property_text(),
        tb in property_text(),
    ) {
        let mut voc = Vocabulary::new();
        let (pa, ia) = both_backends(&ta, &mut voc);
        let (pb, ib) = both_backends(&tb, &mut voc);
        let horizon = pa.bounded_horizon().max(pb.bounded_horizon());
        prop_assume!(horizon <= 7);
        let mut alpha = pa.alphabet().clone();
        alpha.union_with(pb.alphabet());
        let branch: Vec<Name> = alpha.iter().collect();
        let walked = pair_facts(&pa, &pb, horizon, BUDGET)
            .expect("budget generous enough for every generated model");
        let mut enumerated = PairFacts::default();
        enumerate_pair(&ia, &ib, 0, horizon, &branch, &mut enumerated);
        // The walker may stop early once every fact is set; that is only
        // sound if "every fact" really is the fixpoint — compare exactly.
        prop_assert_eq!(walked, enumerated, "pair: {} / {}", ta, tb);
    }
}
