//! Sessions: per-stream monitor state over a shared compiled [`Engine`].

use lomon_core::monitor::PropertyMonitor;
use lomon_core::verdict::{Monitor, Verdict, Violation};
use lomon_trace::{SimTime, TimedEvent};

use crate::compile::Engine;
use crate::report::{DispatchStats, EngineReport, PropertyReport};

/// How a session routes events to monitors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Inverted-index dispatch: an event only steps subscribed, still-live
    /// monitors (plus a deadline sweep for timed monitors). The default.
    Indexed,
    /// Naive baseline: every live monitor is stepped on every event. Kept
    /// for the benchmarks and as a differential-testing oracle — both modes
    /// produce identical verdicts.
    Broadcast,
}

/// One monitored event stream: a clone of the engine's prototype monitors
/// plus the per-stream dispatch state.
///
/// Verdict-wise, a session behaves exactly as if each property's monitor had
/// individually observed the whole stream and then
/// [`lomon_core::verdict::Monitor::finish`]ed — see the crate docs for why
/// indexed dispatch preserves this.
///
/// Monitors whose verdict goes final are *retired*: they stop receiving
/// events, and their ids are queued for [`Session::take_newly_final`] so a
/// streaming caller can report verdicts as they happen.
#[derive(Debug, Clone)]
pub struct Session<'e> {
    engine: &'e Engine,
    mode: DispatchMode,
    monitors: Vec<PropertyMonitor>,
    active: Vec<bool>,
    active_count: usize,
    /// Per-property open hard deadline (timed properties only).
    deadlines: Vec<Option<SimTime>>,
    /// Cached minimum of `deadlines` over live timed monitors.
    next_deadline: Option<SimTime>,
    deadline_dirty: bool,
    newly_final: Vec<u32>,
    stats: DispatchStats,
    finished: bool,
}

impl<'e> Session<'e> {
    pub(crate) fn new(engine: &'e Engine, mode: DispatchMode) -> Self {
        let monitors: Vec<PropertyMonitor> = engine
            .properties
            .iter()
            .map(|p| p.prototype.clone())
            .collect();
        let n = monitors.len();
        Session {
            engine,
            mode,
            monitors,
            active: vec![true; n],
            active_count: n,
            deadlines: vec![None; n],
            next_deadline: None,
            deadline_dirty: false,
            newly_final: Vec::new(),
            stats: DispatchStats::default(),
            finished: false,
        }
    }

    /// The engine this session was opened from.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    /// The dispatch mode this session runs with.
    pub fn mode(&self) -> DispatchMode {
        self.mode
    }

    /// Feed one event to every monitor that can react to it.
    pub fn ingest(&mut self, event: TimedEvent) {
        self.stats.events += 1;
        match self.mode {
            DispatchMode::Broadcast => {
                for id in 0..self.monitors.len() {
                    if self.active[id] {
                        self.step_observe(id, event);
                    }
                }
            }
            DispatchMode::Indexed => {
                let subscribers = self.engine.subscribers(event.name);
                let live_before = self.active_count;
                let mut stepped = 0u64;
                // Timed monitors can flip to Violated on *any* event whose
                // timestamp passes their hard deadline; sweep those first
                // (skipping subscribers, whose own `observe` re-checks the
                // deadline anyway).
                stepped += self.sweep_deadlines(event.time, subscribers);
                for &id in subscribers {
                    let id = id as usize;
                    if self.active[id] {
                        self.step_observe(id, event);
                        stepped += 1;
                    }
                }
                self.stats.steps_skipped += (live_before as u64).saturating_sub(stepped);
            }
        }
    }

    /// Feed a batch of events (the bulk path: one call per recorded trace
    /// chunk instead of one per event).
    pub fn ingest_batch(&mut self, events: &[TimedEvent]) {
        for (k, &event) in events.iter().enumerate() {
            // Every monitor is quiescent once all verdicts are final; the
            // remaining events can only bump the event counter.
            if self.active_count == 0 {
                self.stats.events += (events.len() - k) as u64;
                return;
            }
            self.ingest(event);
        }
    }

    /// Notify the session that simulated time has advanced to `now` with no
    /// new event — lets timed monitors detect expired deadlines online.
    pub fn advance_time(&mut self, now: SimTime) {
        match self.mode {
            DispatchMode::Broadcast => {
                for id in 0..self.monitors.len() {
                    if self.active[id] {
                        self.step_advance(id, now);
                    }
                }
            }
            DispatchMode::Indexed => {
                self.sweep_deadlines(now, &[]);
            }
        }
    }

    /// Declare end of observation and return the report. All still-live
    /// monitors get their final deadline check at `end_time`.
    pub fn finish(&mut self, end_time: SimTime) -> EngineReport {
        self.close(end_time);
        self.report()
    }

    /// Declare end of observation without materializing a report — the
    /// allocation-free variant of [`Session::finish`] for callers that poll
    /// verdicts with [`Session::verdict`] in a tight reuse loop (e.g. an
    /// SMC campaign running millions of episodes through one session).
    /// Idempotent, like `finish`.
    pub fn close(&mut self, end_time: SimTime) {
        if !self.finished {
            for id in 0..self.monitors.len() {
                if !self.active[id] {
                    continue;
                }
                self.monitors[id].finish(end_time);
                if self.monitors[id].verdict().is_final() {
                    self.retire(id);
                }
            }
            self.finished = true;
        }
    }

    /// Snapshot the current per-property verdicts and dispatch statistics
    /// without ending the stream.
    pub fn report(&self) -> EngineReport {
        let properties = (0..self.monitors.len())
            .map(|id| PropertyReport {
                index: id,
                property: self.engine.properties[id].display.clone(),
                verdict: self.monitors[id].verdict(),
                violation: self.monitors[id].violation().cloned(),
            })
            .collect();
        let mut stats = self.stats;
        stats.properties = self.monitors.len() as u64;
        stats.retired = (self.monitors.len() - self.active_count) as u64;
        EngineReport { properties, stats }
    }

    /// Rewind every monitor to its initial state for the next stream,
    /// keeping all allocations. Statistics restart from zero.
    pub fn reset(&mut self) {
        for (id, monitor) in self.monitors.iter_mut().enumerate() {
            monitor.reset();
            self.active[id] = true;
            self.deadlines[id] = None;
        }
        self.active_count = self.monitors.len();
        self.next_deadline = None;
        self.deadline_dirty = false;
        self.newly_final.clear();
        self.stats = DispatchStats::default();
        self.finished = false;
    }

    /// The ids of properties whose verdict went final since the last call,
    /// in finalization order. Streaming callers poll this after each
    /// [`Session::ingest`] to report verdicts as they happen.
    pub fn take_newly_final(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.newly_final)
    }

    /// Current verdict of property `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn verdict(&self, id: usize) -> Verdict {
        self.monitors[id].verdict()
    }

    /// Violation report of property `id`, if it is violated.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn violation(&self, id: usize) -> Option<&Violation> {
        self.monitors[id].violation()
    }

    /// Number of monitors still live (not retired).
    pub fn active_len(&self) -> usize {
        self.active_count
    }

    /// Whether every property has reached a final verdict — the stream can
    /// be abandoned early.
    pub fn is_settled(&self) -> bool {
        self.active_count == 0
    }

    /// Dispatch statistics so far.
    pub fn stats(&self) -> &DispatchStats {
        &self.stats
    }

    /// Step monitor `id` with `event`, recording the step and retiring the
    /// monitor if its verdict went final.
    fn step_observe(&mut self, id: usize, event: TimedEvent) {
        let verdict = self.monitors[id].observe(event);
        self.stats.monitor_steps += 1;
        if verdict.is_final() {
            self.retire(id);
        } else if self.engine.properties[id].timed {
            self.deadlines[id] = self.monitors[id].deadline();
            self.deadline_dirty = true;
        }
    }

    /// Step monitor `id` with a time notification.
    fn step_advance(&mut self, id: usize, now: SimTime) {
        let verdict = self.monitors[id].advance_time(now);
        self.stats.monitor_steps += 1;
        if verdict.is_final() {
            self.retire(id);
        } else if self.engine.properties[id].timed {
            self.deadlines[id] = self.monitors[id].deadline();
            self.deadline_dirty = true;
        }
    }

    fn retire(&mut self, id: usize) {
        if self.active[id] {
            self.active[id] = false;
            self.active_count -= 1;
            self.deadlines[id] = None;
            if self.engine.properties[id].timed {
                self.deadline_dirty = true;
            }
            self.newly_final.push(id as u32);
        }
    }

    /// Advance-time every live timed monitor whose hard deadline `now` has
    /// passed, except those in `exclude` (they are about to be observed,
    /// which performs its own deadline check). Returns the number of
    /// monitors stepped.
    fn sweep_deadlines(&mut self, now: SimTime, exclude: &[u32]) -> u64 {
        self.refresh_next_deadline();
        let Some(min) = self.next_deadline else {
            return 0;
        };
        if now <= min {
            return 0;
        }
        let mut stepped = 0;
        for k in 0..self.engine.timed_ids.len() {
            let id = self.engine.timed_ids[k] as usize;
            if !self.active[id] || exclude.contains(&(id as u32)) {
                continue;
            }
            if self.deadlines[id].is_some_and(|d| now > d) {
                self.step_advance(id, now);
                stepped += 1;
            }
        }
        self.refresh_next_deadline();
        stepped
    }

    fn refresh_next_deadline(&mut self) {
        if !self.deadline_dirty {
            return;
        }
        self.next_deadline = self
            .engine
            .timed_ids
            .iter()
            .filter(|&&id| self.active[id as usize])
            .filter_map(|&id| self.deadlines[id as usize])
            .min();
        self.deadline_dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lomon_trace::Vocabulary;

    fn event(voc: &Vocabulary, name: &str, ns: u64) -> TimedEvent {
        TimedEvent::new(voc.lookup(name).expect("known name"), SimTime::from_ns(ns))
    }

    fn two_property_engine(voc: &mut Vocabulary) -> Engine {
        Engine::compile(
            &["all{a, b} << start once", "go => out:done within 50 ns"],
            voc,
        )
        .expect("compiles")
    }

    #[test]
    fn indexed_steps_only_subscribers() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let mut session = engine.session();
        // `a` concerns only property 0: one step, one skipped.
        session.ingest(event(&voc, "a", 10));
        assert_eq!(session.stats().monitor_steps, 1);
        assert_eq!(session.stats().steps_skipped, 1);
        // A name outside every alphabet steps nothing.
        voc.input("noise");
        session.ingest(event(&voc, "noise", 20));
        assert_eq!(session.stats().monitor_steps, 1);
        assert_eq!(session.stats().steps_skipped, 3);
        assert_eq!(session.stats().events, 2);
    }

    #[test]
    fn broadcast_steps_every_live_monitor() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let mut session = engine.session_with(DispatchMode::Broadcast);
        session.ingest(event(&voc, "a", 10));
        assert_eq!(session.stats().monitor_steps, 2);
        assert_eq!(session.stats().steps_skipped, 0);
    }

    #[test]
    fn final_monitors_are_retired_and_reported() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let mut session = engine.session();
        for (name, ns) in [("a", 10), ("b", 20), ("start", 30)] {
            session.ingest(event(&voc, name, ns));
        }
        // Property 0 is one-shot: Satisfied and retired.
        assert_eq!(session.take_newly_final(), vec![0]);
        assert_eq!(session.verdict(0), Verdict::Satisfied);
        assert_eq!(session.active_len(), 1);
        let steps = session.stats().monitor_steps;
        // Further `a` events step nobody: property 0 is retired.
        session.ingest(event(&voc, "a", 40));
        assert_eq!(session.stats().monitor_steps, steps);
        assert!(!session.is_settled());
    }

    #[test]
    fn deadline_sweep_catches_timeout_on_unrelated_event() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let mut session = engine.session();
        session.ingest(event(&voc, "go", 10)); // deadline now 60ns
                                               // `a` is outside the timed property's alphabet, but its timestamp
                                               // reveals the miss — exactly as a naive broadcast would.
        session.ingest(event(&voc, "a", 200));
        assert_eq!(session.verdict(1), Verdict::Violated);
        assert_eq!(session.take_newly_final(), vec![1]);
        assert!(session.violation(1).is_some());
    }

    #[test]
    fn advance_time_detects_timeout_without_events() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let mut session = engine.session();
        session.ingest(event(&voc, "go", 10));
        session.advance_time(SimTime::from_ns(59));
        assert_eq!(session.verdict(1), Verdict::Pending);
        session.advance_time(SimTime::from_ns(61));
        assert_eq!(session.verdict(1), Verdict::Violated);
    }

    #[test]
    fn finish_settles_open_obligations() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let mut session = engine.session();
        session.ingest(event(&voc, "go", 10));
        let report = session.finish(SimTime::from_ns(500));
        assert_eq!(report.properties[1].verdict, Verdict::Violated);
        assert!(!report.is_ok());
        // The antecedent never went final (safety, still consistent); only
        // the timed property is retired.
        assert_eq!(report.properties[0].verdict, Verdict::PresumablySatisfied);
        assert_eq!(report.stats.retired, 1);
        // Finishing twice is idempotent.
        let again = session.finish(SimTime::from_ns(500));
        assert_eq!(again.properties[1].verdict, Verdict::Violated);
    }

    #[test]
    fn batch_equals_one_by_one() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let events: Vec<TimedEvent> = [("a", 10), ("go", 20), ("b", 30), ("done", 40)]
            .into_iter()
            .map(|(n, t)| event(&voc, n, t))
            .collect();
        let mut one = engine.session();
        for &e in &events {
            one.ingest(e);
        }
        let mut batch = engine.session();
        batch.ingest_batch(&events);
        let (a, b) = (
            one.finish(SimTime::from_ns(50)),
            batch.finish(SimTime::from_ns(50)),
        );
        assert_eq!(a.stats.monitor_steps, b.stats.monitor_steps);
        for (x, y) in a.properties.iter().zip(&b.properties) {
            assert_eq!(x.verdict, y.verdict);
        }
    }

    #[test]
    fn reset_reuses_the_session() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let mut session = engine.session();
        for (name, ns) in [("a", 10), ("b", 20), ("start", 30)] {
            session.ingest(event(&voc, name, ns));
        }
        session.finish(SimTime::from_ns(40));
        session.reset();
        assert_eq!(session.active_len(), 2);
        assert_eq!(session.stats().events, 0);
        assert_eq!(session.verdict(0), Verdict::PresumablySatisfied);
        assert!(session.take_newly_final().is_empty());
        // The reused session still works.
        session.ingest(event(&voc, "start", 10));
        assert_eq!(session.verdict(0), Verdict::Violated);
    }

    #[test]
    fn modes_agree_on_verdicts() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let events: Vec<TimedEvent> = [("go", 10), ("a", 100), ("b", 120), ("start", 130)]
            .into_iter()
            .map(|(n, t)| event(&voc, n, t))
            .collect();
        let mut indexed = engine.session();
        let mut broadcast = engine.session_with(DispatchMode::Broadcast);
        indexed.ingest_batch(&events);
        broadcast.ingest_batch(&events);
        let (i, b) = (
            indexed.finish(SimTime::from_ns(200)),
            broadcast.finish(SimTime::from_ns(200)),
        );
        for (x, y) in i.properties.iter().zip(&b.properties) {
            assert_eq!(x.verdict, y.verdict, "property {}", x.property);
            assert_eq!(
                x.violation.as_ref().map(|v| v.kind),
                y.violation.as_ref().map(|v| v.kind)
            );
        }
        assert!(i.stats.monitor_steps < b.stats.monitor_steps);
    }
}
