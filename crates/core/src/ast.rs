//! Abstract syntax of loose-ordering patterns (paper Fig. 3).
//!
//! The grammar, with its well-formedness side conditions (checked separately
//! in [`crate::wf`]):
//!
//! ```text
//! R = n[u,v]                      a range        α(R) = {n}, u ≤ v ∈ ℕ
//! F = ({R1,…,Rk}, ♯), ♯ ∈ {∧,∨}   a fragment     ranges pairwise disjoint
//! L = F1 < … < Fq                 a loose-ordering; fragments disjoint
//! A = (P << i, b)                 an antecedent requirement, i ∈ I, b ∈ 𝔹
//! T = (P ⇒ Q, t)                  a timed implication, t ∈ ℕ, α(Q) ⊆ O
//! ```
//!
//! AST nodes hold interned [`Name`]s; rendering back to text therefore needs
//! the [`Vocabulary`] (see the `display` methods).

use lomon_trace::{Name, NameSet, SimTime, Vocabulary};

/// A range `n[u,v]`: between `u` and `v` consecutive occurrences of `n`
/// (paper Definition 1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Range {
    /// The repeated interface name.
    pub name: Name,
    /// Minimum number of occurrences (well-formedness requires `u ≥ 1`).
    pub min: u32,
    /// Maximum number of occurrences (`v ≥ u`).
    pub max: u32,
}

impl Range {
    /// A range `n[u,v]`.
    pub fn new(name: Name, min: u32, max: u32) -> Self {
        Range { name, min, max }
    }

    /// The trivial range `n[1,1]` — a single occurrence.
    pub fn once(name: Name) -> Self {
        Range::new(name, 1, 1)
    }

    /// Whether this range is `[1,1]` (needs no counting, and no run-length
    /// lexing in the PSL translation).
    pub fn is_trivial(&self) -> bool {
        self.min == 1 && self.max == 1
    }

    /// Width of the interval, `v − u + 1` — the factor that drives the
    /// ViaPSL explosion.
    pub fn width(&self) -> u64 {
        u64::from(self.max) - u64::from(self.min) + 1
    }

    /// Render as `n` or `n[u,v]`.
    pub fn display(&self, voc: &Vocabulary) -> String {
        if self.is_trivial() {
            voc.resolve(self.name).to_owned()
        } else {
            format!("{}[{},{}]", voc.resolve(self.name), self.min, self.max)
        }
    }
}

/// The connective of a fragment: `∧` (all ranges) or `∨` (a non-empty
/// subset of the ranges), paper Definition 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FragmentOp {
    /// `∧`: every range's block must appear (in any order).
    All,
    /// `∨`: at least one range's block must appear; any subset may.
    Any,
}

impl FragmentOp {
    /// The paper's symbol for this connective.
    pub fn symbol(self) -> &'static str {
        match self {
            FragmentOp::All => "∧",
            FragmentOp::Any => "∨",
        }
    }

    /// The property-language keyword for this connective.
    pub fn keyword(self) -> &'static str {
        match self {
            FragmentOp::All => "all",
            FragmentOp::Any => "any",
        }
    }
}

/// A fragment `({R1,…,Rk}, ♯)`: the selected ranges' blocks, concatenated in
/// any order (paper Definition 2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fragment {
    /// The member ranges (their alphabets are pairwise disjoint).
    pub ranges: Vec<Range>,
    /// `∧` or `∨`.
    pub op: FragmentOp,
}

impl Fragment {
    /// A fragment with the given connective.
    pub fn new(op: FragmentOp, ranges: Vec<Range>) -> Self {
        Fragment { ranges, op }
    }

    /// An `∧`-fragment containing a single range — what a bare range in a
    /// loose-ordering denotes.
    pub fn singleton(range: Range) -> Self {
        Fragment::new(FragmentOp::All, vec![range])
    }

    /// `α(F)`: the set of names appearing in this fragment.
    pub fn alpha(&self) -> NameSet {
        self.ranges.iter().map(|r| r.name).collect()
    }

    /// Number of distinct names, `|α(F)|`.
    pub fn alpha_len(&self) -> usize {
        self.ranges.len()
    }

    /// Render as `all{…}` / `any{…}`, or the bare range for a trivial
    /// singleton `∧`-fragment.
    pub fn display(&self, voc: &Vocabulary) -> String {
        if self.op == FragmentOp::All && self.ranges.len() == 1 {
            return self.ranges[0].display(voc);
        }
        let inner: Vec<String> = self.ranges.iter().map(|r| r.display(voc)).collect();
        format!("{}{{{}}}", self.op.keyword(), inner.join(", "))
    }
}

/// A loose-ordering `L = F1 < … < Fq`: the fragments' sequences in this
/// exact order — "loose" because the order *inside* each fragment is free
/// (paper Definition 3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LooseOrdering {
    /// The ordered fragments.
    pub fragments: Vec<Fragment>,
}

impl LooseOrdering {
    /// A loose-ordering of the given fragments.
    pub fn new(fragments: Vec<Fragment>) -> Self {
        LooseOrdering { fragments }
    }

    /// `α(L)`: all names of all fragments.
    pub fn alpha(&self) -> NameSet {
        let mut set = NameSet::new();
        for f in &self.fragments {
            set.union_with(&f.alpha());
        }
        set
    }

    /// Iterate over all ranges of all fragments.
    pub fn ranges(&self) -> impl Iterator<Item = &Range> {
        self.fragments.iter().flat_map(|f| f.ranges.iter())
    }

    /// `max_j |α(F_j)|` — the Drct per-event time measure.
    pub fn max_fragment_alpha(&self) -> usize {
        self.fragments
            .iter()
            .map(Fragment::alpha_len)
            .max()
            .unwrap_or(0)
    }

    /// `Σ_j |α(F_j)|` — the Drct space measure.
    pub fn total_alpha(&self) -> usize {
        self.fragments.iter().map(Fragment::alpha_len).sum()
    }

    /// Render as `F1 < F2 < …`.
    pub fn display(&self, voc: &Vocabulary) -> String {
        let parts: Vec<String> = self.fragments.iter().map(|f| f.display(voc)).collect();
        parts.join(" < ")
    }
}

/// An antecedent requirement `A = (P << i, b)`: `i` can occur only if `P`
/// has been observed before (paper Definition 4).
///
/// With `repeated = true` each occurrence of `i` needs its own occurrence of
/// `P` since the previous `i`; with `repeated = false` one `P` validates all
/// further occurrences of `i`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Antecedent {
    /// The loose-ordering that must precede `i`.
    pub antecedent: LooseOrdering,
    /// The guarded input.
    pub trigger: Name,
    /// The `b` flag of the paper.
    pub repeated: bool,
}

impl Antecedent {
    /// Build `(P << i, b)`.
    pub fn new(antecedent: LooseOrdering, trigger: Name, repeated: bool) -> Self {
        Antecedent {
            antecedent,
            trigger,
            repeated,
        }
    }

    /// `α(A) = α(P) ∪ {i}`.
    pub fn alpha(&self) -> NameSet {
        let mut set = self.antecedent.alpha();
        set.insert(self.trigger);
        set
    }

    /// Render as `P << i repeated|once`.
    pub fn display(&self, voc: &Vocabulary) -> String {
        format!(
            "{} << {} {}",
            self.antecedent.display(voc),
            voc.resolve(self.trigger),
            if self.repeated { "repeated" } else { "once" }
        )
    }
}

/// A timed implication constraint `T = (P ⇒ Q, t)`: whenever `P` is
/// observed, `Q` must occur and be finished within `t` time units of the end
/// of `P`; implicitly repeated (paper Definition 5).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TimedImplication {
    /// The triggering loose-ordering (over inputs and outputs).
    pub premise: LooseOrdering,
    /// The required response (over outputs only).
    pub response: LooseOrdering,
    /// The budget between end of `P` and end of `Q`.
    pub bound: SimTime,
}

impl TimedImplication {
    /// Build `(P ⇒ Q, t)`.
    pub fn new(premise: LooseOrdering, response: LooseOrdering, bound: SimTime) -> Self {
        TimedImplication {
            premise,
            response,
            bound,
        }
    }

    /// `α(T) = α(P) ∪ α(Q)`.
    pub fn alpha(&self) -> NameSet {
        let mut set = self.premise.alpha();
        set.union_with(&self.response.alpha());
        set
    }

    /// All fragments of `P` then `Q`, the concatenation the monitors run on.
    pub fn all_fragments(&self) -> Vec<Fragment> {
        let mut fs = self.premise.fragments.clone();
        fs.extend(self.response.fragments.iter().cloned());
        fs
    }

    /// Render as `P => Q within t`.
    pub fn display(&self, voc: &Vocabulary) -> String {
        format!(
            "{} => {} within {}",
            self.premise.display(voc),
            self.response.display(voc),
            self.bound
        )
    }
}

/// A root property: one of the two specification patterns.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Property {
    /// `(P << i, b)`.
    Antecedent(Antecedent),
    /// `(P ⇒ Q, t)`.
    Timed(TimedImplication),
}

impl Property {
    /// `α` of the root pattern.
    pub fn alpha(&self) -> NameSet {
        match self {
            Property::Antecedent(a) => a.alpha(),
            Property::Timed(t) => t.alpha(),
        }
    }

    /// Render in the property language.
    pub fn display(&self, voc: &Vocabulary) -> String {
        match self {
            Property::Antecedent(a) => a.display(voc),
            Property::Timed(t) => t.display(voc),
        }
    }
}

impl From<Antecedent> for Property {
    fn from(a: Antecedent) -> Self {
        Property::Antecedent(a)
    }
}

impl From<TimedImplication> for Property {
    fn from(t: TimedImplication) -> Self {
        Property::Timed(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn voc_abc() -> (Vocabulary, Name, Name, Name, Name) {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let b = voc.input("b");
        let c = voc.output("c");
        let i = voc.input("i");
        (voc, a, b, c, i)
    }

    #[test]
    fn range_properties() {
        let (voc, a, ..) = voc_abc();
        let r = Range::new(a, 2, 8);
        assert!(!r.is_trivial());
        assert_eq!(r.width(), 7);
        assert_eq!(r.display(&voc), "a[2,8]");
        assert_eq!(Range::once(a).display(&voc), "a");
        assert!(Range::once(a).is_trivial());
    }

    #[test]
    fn fragment_alpha_and_display() {
        let (voc, a, b, ..) = voc_abc();
        let f = Fragment::new(FragmentOp::Any, vec![Range::new(a, 2, 8), Range::once(b)]);
        assert_eq!(f.alpha_len(), 2);
        assert!(f.alpha().contains(a) && f.alpha().contains(b));
        assert_eq!(f.display(&voc), "any{a[2,8], b}");
        let single = Fragment::singleton(Range::once(a));
        assert_eq!(single.display(&voc), "a");
    }

    #[test]
    fn ordering_measures() {
        let (voc, a, b, c, _i) = voc_abc();
        let l = LooseOrdering::new(vec![
            Fragment::new(FragmentOp::All, vec![Range::once(a), Range::once(b)]),
            Fragment::singleton(Range::new(c, 1, 4)),
        ]);
        assert_eq!(l.max_fragment_alpha(), 2);
        assert_eq!(l.total_alpha(), 3);
        assert_eq!(l.ranges().count(), 3);
        assert_eq!(l.display(&voc), "all{a, b} < c[1,4]");
        assert_eq!(l.alpha().len(), 3);
    }

    #[test]
    fn antecedent_alpha_includes_trigger() {
        let (voc, a, _b, _c, i) = voc_abc();
        let p = LooseOrdering::new(vec![Fragment::singleton(Range::once(a))]);
        let ant = Antecedent::new(p, i, true);
        assert!(ant.alpha().contains(i));
        assert_eq!(ant.display(&voc), "a << i repeated");
    }

    #[test]
    fn timed_concatenates_fragments() {
        let (voc, a, b, c, _i) = voc_abc();
        let p = LooseOrdering::new(vec![Fragment::singleton(Range::once(a))]);
        let q = LooseOrdering::new(vec![
            Fragment::singleton(Range::once(b)),
            Fragment::singleton(Range::once(c)),
        ]);
        let t = TimedImplication::new(p, q, SimTime::from_ns(100));
        assert_eq!(t.all_fragments().len(), 3);
        assert_eq!(t.display(&voc), "a => b < c within 100ns");
        let prop: Property = t.into();
        assert_eq!(prop.alpha().len(), 3);
    }

    #[test]
    fn empty_ordering_measures_are_zero() {
        let l = LooseOrdering::new(vec![]);
        assert_eq!(l.max_fragment_alpha(), 0);
        assert_eq!(l.total_alpha(), 0);
        assert!(l.alpha().is_empty());
    }
}
