//! A minimal hand-rolled HTTP/1.1 listener serving metric snapshots.
//!
//! `GET /metrics` returns the Prometheus text exposition, `GET
//! /metrics.json` the NDJSON snapshot. One background thread accepts
//! connections serially — a scrape endpoint sees one poller every few
//! seconds, not a traffic front — and every response carries
//! `Connection: close` plus a `Content-Length`, so no keep-alive state is
//! tracked. The handler never panics: malformed requests get `400`, a
//! draining server answers `503`, and registry reads go through relaxed
//! atomics that cannot tear.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::Registry;

/// Cap on the request head we are willing to buffer.
const MAX_HEAD: u64 = 8 * 1024;
/// Default per-connection read/write deadline, so one stalled or
/// half-open client cannot wedge the (single-threaded) listener.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A running metrics endpoint. Dropping it shuts the listener down
/// cleanly: the accept loop is woken, the thread joined, the port
/// released.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9898"`; port `0` picks a free port)
    /// and start serving `registry` from a background thread. Returns the
    /// bind error untouched if the address is unavailable, so callers can
    /// surface "address already in use" directly.
    pub fn bind(addr: &str, registry: Arc<Registry>) -> io::Result<Self> {
        Self::bind_with_timeout(addr, registry, IO_TIMEOUT)
    }

    /// [`MetricsServer::bind`] with an explicit per-connection I/O
    /// deadline. The listener handles connections serially, so the
    /// deadline bounds how long a half-open or stalled client can starve
    /// every other scraper; tests shrink it to keep suites fast.
    pub fn bind_with_timeout(
        addr: &str,
        registry: Arc<Registry>,
        io_timeout: Duration,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let draining = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            let draining = Arc::clone(&draining);
            std::thread::Builder::new()
                .name("lomon-metrics".to_owned())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        // Errors on one connection (reset, timeout) must not
                        // take the endpoint down.
                        let _ = serve_one(stream, &registry, &draining, io_timeout);
                    }
                })?
        };
        Ok(MetricsServer {
            addr,
            stop,
            draining,
            thread: Some(thread),
        })
    }

    /// The address actually bound — resolves port `0` to the real port.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Switch the endpoint into draining mode: subsequent scrapes get
    /// `503 Service Unavailable` instead of a snapshot. Call this before
    /// printing a final report so a scrape racing completion sees a clean
    /// "gone" rather than a half-reset registry.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // The accept loop is blocked in `incoming()`; poke it awake with a
        // throwaway connection to our own port.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Read the request head (method + target are all we need), route, respond.
fn serve_one(
    stream: TcpStream,
    registry: &Registry,
    draining: &AtomicBool,
    io_timeout: Duration,
) -> io::Result<()> {
    stream.set_read_timeout(Some(io_timeout))?;
    stream.set_write_timeout(Some(io_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?).take(MAX_HEAD);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the header block so the client sees us consume its request
    // before the response lands (best-effort; a missing blank line just
    // means we respond early).
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let mut stream = stream;

    if method.is_empty() || target.is_empty() {
        return respond(
            &mut stream,
            400,
            "Bad Request",
            "text/plain",
            "bad request\n",
        );
    }
    if method != "GET" {
        return respond(
            &mut stream,
            405,
            "Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
        );
    }
    if draining.load(Ordering::Acquire) {
        return respond(
            &mut stream,
            503,
            "Service Unavailable",
            "text/plain",
            "metrics endpoint is draining\n",
        );
    }
    match target {
        "/metrics" => {
            let body = registry.render_prometheus();
            respond(
                &mut stream,
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/metrics.json" => {
            let body = registry.render_ndjson();
            respond(
                &mut stream,
                200,
                "OK",
                "application/x-ndjson; charset=utf-8",
                &body,
            )
        }
        _ => respond(&mut stream, 404, "Not Found", "text/plain", "not found\n"),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
