//! The full case study: simulate the access-control device of the paper's
//! Fig. 2 with both case-study properties monitored online, under a nominal
//! run and under every fault injection.
//!
//! ```sh
//! cargo run --example face_recognition
//! ```

use lomon::tlm::platform::FaultPlan;
use lomon::tlm::scenario::{run_scenario, ScenarioConfig};

fn main() {
    let scenarios: Vec<(&str, FaultPlan)> = vec![
        ("nominal", FaultPlan::default()),
        (
            "skip one register write",
            FaultPlan {
                skip_register: Some(1),
                ..FaultPlan::default()
            },
        ),
        (
            "start before last write",
            FaultPlan {
                early_start: true,
                ..FaultPlan::default()
            },
        ),
        (
            "IPU drops its interrupt",
            FaultPlan {
                drop_irq: true,
                ..FaultPlan::default()
            },
        ),
        (
            "IPU interrupts after 1 read",
            FaultPlan {
                early_irq: true,
                ..FaultPlan::default()
            },
        ),
        (
            "IPU reads beyond gallery",
            FaultPlan {
                extra_reads: 3,
                ..FaultPlan::default()
            },
        ),
        (
            "IPU 50x slower than budget",
            FaultPlan {
                slowdown: 50,
                ..FaultPlan::default()
            },
        ),
        (
            "software double start",
            FaultPlan {
                double_start: true,
                ..FaultPlan::default()
            },
        ),
    ];

    println!("Face-recognition platform, two monitored properties:");
    println!("  example2: all{{set_imgAddr, set_glAddr, set_glSize}} << start repeated");
    println!("  example3: start => read_img[gl,gl] < set_irq within budget");
    println!();

    for (label, fault) in scenarios {
        let config = ScenarioConfig::nominal(2026).with_fault(fault);
        let report = run_scenario(&config);
        println!("scenario: {label}");
        for (property, verdict) in &report.verdicts {
            println!("  {property:<10} → {verdict}");
        }
        if let Some(violation) = &report.violation {
            println!("  first violation: {violation}");
        }
        println!(
            "  ({} interface events, simulated {}, {} kernel dispatches)",
            report.trace.len(),
            report.end_time,
            report.stats.dispatched
        );
        println!();
    }
}
