//! The ViaPSL monitor: run-length lexer + one sub-monitor per conjunct.
//!
//! This is the modular synthesis of \[14\] applied to the Section 5
//! translation: each conjunct becomes an *observer* with a constant amount
//! of state, and every observed token is offered to every observer — so the
//! per-event time and the total state are proportional to the formula size,
//! exactly the cost model the paper assumes for the ViaPSL strategy. The
//! quadratically-many `Range` conjuncts of a wide range therefore make
//! these monitors quadratically slow/large, while the Drct monitors of
//! `lomon-core` stay flat: that contrast is Fig. 6.
//!
//! The monitor implements the same [`Monitor`] trait as the direct
//! monitors, so benchmarks and tests can drive both interchangeably.
//! Verdicts are untimed: a timed implication's budget is checked by the
//! Drct monitor only (the paper's ViaPSL column likewise measures the
//! recognizer logic; see DESIGN.md).

use lomon_core::ast::Property;
use lomon_core::verdict::{Monitor, Verdict, Violation, ViolationKind};
use lomon_trace::{LexedToken, NameSet, RunLengthLexer, SimTime, TimedEvent};

use crate::translate::{
    translate, Family, Observer, TranslateError, TranslateOptions, Translation,
};

/// A modular PSL monitor for a loose-ordering property (ViaPSL strategy).
///
/// # Example
///
/// ```
/// use lomon_core::parse::parse_property;
/// use lomon_core::verdict::{run_to_end, Verdict};
/// use lomon_psl::monitor::PslMonitor;
/// use lomon_trace::{Trace, Vocabulary};
///
/// let mut voc = Vocabulary::new();
/// let prop = parse_property("all{a, b} << go once", &mut voc).unwrap();
/// let mut monitor = PslMonitor::build(&prop).unwrap();
/// let a = voc.lookup("a").unwrap();
/// let b = voc.lookup("b").unwrap();
/// let go = voc.lookup("go").unwrap();
/// assert_eq!(
///     run_to_end(&mut monitor, &Trace::from_names([b, a, go])),
///     Verdict::Satisfied
/// );
/// ```
#[derive(Debug, Clone)]
pub struct PslMonitor {
    observers: Vec<Observer>,
    active: Vec<bool>,
    weights: Vec<u64>,
    trigger: crate::translate::TokenSet,
    repeated: bool,
    alphabet: NameSet,
    lexer: RunLengthLexer,
    lexer_bits: u64,
    /// Per-name eager-emission bounds (the ranged names' maxima), needed by
    /// the end-of-trace analysis of a pending run.
    bounds: Vec<(lomon_trace::Name, u32)>,
    done: bool,
    verdict: Verdict,
    violation: Option<Violation>,
    ops: u64,
}

impl PslMonitor {
    /// Translate (with default limits) and build the monitor.
    ///
    /// # Errors
    ///
    /// Propagates [`TranslateError`] for unsupported or too-large patterns.
    pub fn build(property: &Property) -> Result<Self, TranslateError> {
        Self::build_with(property, TranslateOptions::default())
    }

    /// Translate with explicit options and build the monitor.
    ///
    /// # Errors
    ///
    /// Propagates [`TranslateError`] for unsupported or too-large patterns.
    pub fn build_with(
        property: &Property,
        options: TranslateOptions,
    ) -> Result<Self, TranslateError> {
        Ok(Self::from_translation(translate(property, options)?))
    }

    /// Build from an existing translation.
    pub fn from_translation(translation: Translation) -> Self {
        let Translation {
            observers,
            collapsible,
            trigger,
            repeated,
            alphabet,
            ..
        } = translation;
        let mut lexer_names = NameSet::new();
        for r in &collapsible {
            lexer_names.insert(r.name);
        }
        let mut lexer = RunLengthLexer::new(lexer_names);
        let mut max_bound = 1u64;
        for r in &collapsible {
            lexer = lexer.with_bound(r.name, r.max);
            max_bound = max_bound.max(u64::from(r.max));
        }
        let lexer_bits = if collapsible.is_empty() {
            0
        } else {
            RunLengthLexer::state_bits(max_bound)
        };
        let active = observers
            .iter()
            .map(|o| {
                matches!(
                    o,
                    Observer::Triggered {
                        init_active: true,
                        ..
                    }
                )
            })
            .collect();
        let weights = observers.iter().map(Observer::weight).collect();
        let bounds = collapsible.iter().map(|r| (r.name, r.max)).collect();
        PslMonitor {
            observers,
            active,
            weights,
            trigger,
            repeated,
            alphabet,
            lexer,
            lexer_bits,
            bounds,
            done: false,
            verdict: Verdict::PresumablySatisfied,
            violation: None,
            ops: 0,
        }
    }

    /// Whether `token` would trip some observer in the current state
    /// (read-only; used by the end-of-trace pending-run analysis).
    fn would_violate(&self, token: LexedToken) -> bool {
        for (idx, observer) in self.observers.iter().enumerate() {
            match observer {
                Observer::Asynch { .. } => {}
                Observer::Forbid { test, .. } => {
                    if test.matches(token) {
                        return true;
                    }
                }
                Observer::Triggered { avoid, target, .. } => {
                    if self.active[idx] && !target.matches(token) && avoid.matches(token) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Number of observers (= conjuncts).
    pub fn observer_count(&self) -> usize {
        self.observers.len()
    }

    fn violate(&mut self, family: Family, token: LexedToken, time: SimTime) {
        // Family → nearest diagnostic kind (labels only; cross-strategy
        // tests compare verdicts, not kinds).
        let kind = match family {
            Family::BadToken => ViolationKind::TooMany,
            Family::MaxOne | Family::Range => ViolationKind::BlockSplit,
            Family::Order => ViolationKind::BeforeName,
            Family::Precede => ViolationKind::AfterName,
            Family::BeforeI => ViolationKind::PrematureStop,
            Family::Asynch => unreachable!("asynch never fires on sequences"),
        };
        self.verdict = Verdict::Violated;
        self.violation = Some(Violation {
            kind,
            event: Some(TimedEvent::new(token.name, time)),
            time,
            expected: NameSet::new(),
            detail: format!(
                "PSL conjunct family {} rejected token run of length {}",
                family.label(),
                token.run
            ),
            obligation: None,
        });
    }

    /// Offer one token to every observer.
    fn process_token(&mut self, lexed: lomon_trace::LexedEvent) {
        if self.verdict.is_final() || self.done {
            return;
        }
        let token = lexed.token;
        let time = lexed.last_time;
        for idx in 0..self.observers.len() {
            // The modular-synthesis cost model: every conjunct's
            // sub-monitor network is clocked on every token.
            self.ops += self.weights[idx];
            match &self.observers[idx] {
                Observer::Asynch { .. } => {}
                Observer::Forbid { test, .. } => {
                    if test.matches(token) {
                        self.violate(Family::BadToken, token, time);
                        return;
                    }
                }
                Observer::Triggered {
                    family,
                    triggers,
                    avoid,
                    target,
                    ..
                } => {
                    let family = *family;
                    if self.active[idx] {
                        if target.matches(token) {
                            self.active[idx] = false;
                        } else if avoid.matches(token) {
                            self.violate(family, token, time);
                            return;
                        }
                    }
                    if triggers.matches(token) {
                        self.active[idx] = true;
                    }
                }
            }
        }
        // A validated episode boundary: for one-shot properties the monitor
        // passivates with an irrevocable pass.
        if self.trigger.matches(token) && !self.repeated {
            self.done = true;
            self.verdict = Verdict::Satisfied;
        }
    }
}

impl Monitor for PslMonitor {
    fn observe(&mut self, event: TimedEvent) -> Verdict {
        if self.verdict.is_final() {
            return self.verdict;
        }
        self.ops += 1; // alphabet projection test
        if !self.alphabet.contains(event.name) {
            return self.verdict;
        }
        for lexed in self.lexer.push(event) {
            self.process_token(lexed);
        }
        self.verdict
    }

    fn finish(&mut self, _end_time: SimTime) -> Verdict {
        if self.verdict.is_final() {
            return self.verdict;
        }
        // A pending run at end of observation is *extendable*: the trace is
        // a prefix, so the run may still grow. Report a violation only if
        // every completion length does violate: the lengths up to the
        // eager-emission bound behave individually, everything above the
        // bound behaves like one over-long representative.
        if let Some(lexed) = self.lexer.finish() {
            if self.done {
                return self.verdict;
            }
            let name = lexed.token.name;
            let k = lexed.token.run;
            let bound = self
                .bounds
                .iter()
                .find(|(n, _)| *n == name)
                .map(|&(_, b)| b)
                .unwrap_or(k);
            let all_violate = (k..=bound.saturating_add(1)).all(|run| {
                self.ops += 1;
                self.would_violate(LexedToken { name, run })
            });
            if all_violate {
                self.violate(Family::BadToken, lexed.token, lexed.last_time);
                if let Some(v) = &mut self.violation {
                    v.detail = format!(
                        "pending run of length {k} cannot be completed without                          violating some conjunct"
                    );
                }
            }
        }
        self.verdict
    }

    fn verdict(&self) -> Verdict {
        self.verdict
    }

    fn alphabet(&self) -> &NameSet {
        &self.alphabet
    }

    /// ViaPSL monitors do not track an expected-event set (the conjunction
    /// has no cheap "acceptable next" notion); returns the empty set.
    fn expected(&self) -> NameSet {
        NameSet::new()
    }

    fn violation(&self) -> Option<&Violation> {
        self.violation.as_ref()
    }

    fn reset(&mut self) {
        for (idx, o) in self.observers.iter().enumerate() {
            self.active[idx] = matches!(
                o,
                Observer::Triggered {
                    init_active: true,
                    ..
                }
            );
        }
        self.done = false;
        self.verdict = Verdict::PresumablySatisfied;
        self.violation = None;
        self.lexer = self.lexer.clone_reset();
    }

    fn ops(&self) -> u64 {
        self.ops + self.lexer.ops()
    }

    fn state_bits(&self) -> u64 {
        // One activity bit per observer, BITS_PER_NODE−1 further bits per
        // formula node inside the sub-monitors, plus the lexer (∆) and the
        // done flag.
        let nodes: u64 = self.weights.iter().sum();
        crate::complexity::BITS_PER_NODE * nodes + self.lexer_bits + 1
    }
}

/// Helper used by `reset`: a lexer with the same configuration but cleared
/// run state.
trait CloneReset {
    fn clone_reset(&self) -> Self;
}

impl CloneReset for RunLengthLexer {
    fn clone_reset(&self) -> Self {
        // The lexer has no public state-clearing API; flushing the pending
        // run is equivalent (configuration is retained by clone).
        let mut fresh = self.clone();
        let _ = fresh.finish();
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lomon_core::parse::parse_property;
    use lomon_core::verdict::run_to_end;
    use lomon_trace::{Name, Trace, Vocabulary};

    fn setup(text: &str) -> (Vocabulary, PslMonitor) {
        let mut voc = Vocabulary::new();
        let prop = parse_property(text, &mut voc).expect(text);
        let monitor = PslMonitor::build(&prop).expect(text);
        (voc, monitor)
    }

    fn n(voc: &Vocabulary, text: &str) -> Name {
        voc.lookup(text).expect(text)
    }

    #[test]
    fn accepts_example2_any_order() {
        let (voc, monitor) = setup("all{img, gl, sz} << start once");
        let (img, gl, sz, start) = (
            n(&voc, "img"),
            n(&voc, "gl"),
            n(&voc, "sz"),
            n(&voc, "start"),
        );
        for perm in [[img, gl, sz], [sz, gl, img], [gl, img, sz]] {
            let mut m = monitor.clone();
            let trace = Trace::from_names(perm.into_iter().chain([start]));
            assert_eq!(run_to_end(&mut m, &trace), Verdict::Satisfied);
        }
    }

    #[test]
    fn rejects_missing_register() {
        let (voc, mut monitor) = setup("all{img, gl, sz} << start once");
        let trace = Trace::from_names([n(&voc, "img"), n(&voc, "gl"), n(&voc, "start")]);
        assert_eq!(run_to_end(&mut monitor, &trace), Verdict::Violated);
        assert!(monitor.violation().is_some());
    }

    #[test]
    fn rejects_trigger_first() {
        let (voc, mut monitor) = setup("all{img, gl, sz} << start once");
        let trace = Trace::from_names([n(&voc, "start")]);
        assert_eq!(run_to_end(&mut monitor, &trace), Verdict::Violated);
    }

    #[test]
    fn repeated_episodes() {
        let (voc, mut monitor) = setup("a << i repeated");
        let (a, i) = (n(&voc, "a"), n(&voc, "i"));
        assert_eq!(
            run_to_end(&mut monitor, &Trace::from_names([a, i, a, i])),
            Verdict::PresumablySatisfied
        );
        monitor.reset();
        assert_eq!(
            run_to_end(&mut monitor, &Trace::from_names([a, i, i])),
            Verdict::Violated
        );
    }

    #[test]
    fn range_counting_through_tokens() {
        let (voc, monitor) = setup("a[2,3] << i repeated");
        let (a, i) = (n(&voc, "a"), n(&voc, "i"));
        // 2 and 3 a's fine, 1 and 4 violate.
        for (count, expect_ok) in [(2usize, true), (3, true), (1, false), (4, false)] {
            let mut m = monitor.clone();
            let trace = Trace::from_names(vec![a; count].into_iter().chain([i]));
            let verdict = run_to_end(&mut m, &trace);
            assert_eq!(verdict.is_ok(), expect_ok, "count {count}");
        }
    }

    #[test]
    fn overlong_run_detected_eagerly() {
        let (voc, mut monitor) = setup("a[1,2] << i repeated");
        let a = n(&voc, "a");
        let trace = Trace::from_names([a, a, a]);
        // Violation arrives with the third a (eager overflow), before any
        // flush.
        let mut verdicts = Vec::new();
        for &e in trace.iter() {
            verdicts.push(monitor.observe(e));
        }
        assert_eq!(verdicts[2], Verdict::Violated);
    }

    #[test]
    fn ordering_between_fragments() {
        let (voc, monitor) = setup("a < b << i repeated");
        let (a, b, i) = (n(&voc, "a"), n(&voc, "b"), n(&voc, "i"));
        let mut m = monitor.clone();
        assert_eq!(
            run_to_end(&mut m, &Trace::from_names([a, b, i])),
            Verdict::PresumablySatisfied
        );
        // b before a: the Precede obligation fires.
        let mut m = monitor.clone();
        assert_eq!(
            run_to_end(&mut m, &Trace::from_names([b])),
            Verdict::Violated
        );
        // a after b (same episode): Order fires.
        let mut m = monitor;
        assert_eq!(
            run_to_end(&mut m, &Trace::from_names([a, b, a])),
            Verdict::Violated
        );
    }

    #[test]
    fn any_fragment_subset_allowed() {
        let (voc, monitor) = setup("any{a, b} << i repeated");
        let (a, b, i) = (n(&voc, "a"), n(&voc, "b"), n(&voc, "i"));
        for seq in [vec![a, i], vec![b, i], vec![a, b, i], vec![b, a, i]] {
            let mut m = monitor.clone();
            assert_eq!(
                run_to_end(&mut m, &Trace::from_names(seq.clone())),
                Verdict::PresumablySatisfied,
                "{seq:?}"
            );
        }
        let mut m = monitor;
        assert_eq!(
            run_to_end(&mut m, &Trace::from_names([i])),
            Verdict::Violated
        );
    }

    #[test]
    fn timed_untimed_language() {
        let (voc, monitor) = setup("start => read[2,4] < irq within 1 ms");
        let (start, read, irq) = (n(&voc, "start"), n(&voc, "read"), n(&voc, "irq"));
        let mut m = monitor.clone();
        assert_eq!(
            run_to_end(
                &mut m,
                &Trace::from_names([start, read, read, irq, start, read, read, read, irq])
            ),
            Verdict::PresumablySatisfied
        );
        // Too few reads.
        let mut m = monitor.clone();
        assert_eq!(
            run_to_end(&mut m, &Trace::from_names([start, read, irq])),
            Verdict::Violated
        );
        // Response without premise.
        let mut m = monitor.clone();
        assert_eq!(
            run_to_end(&mut m, &Trace::from_names([read, read])),
            Verdict::Violated
        );
        // Double irq.
        let mut m = monitor;
        assert_eq!(
            run_to_end(&mut m, &Trace::from_names([start, read, read, irq, irq])),
            Verdict::Violated
        );
    }

    #[test]
    fn projection_ignores_foreign_names() {
        let (mut voc, mut monitor) = setup("a << i once");
        let (a, i) = (n(&voc, "a"), n(&voc, "i"));
        let noise = voc.input("noise");
        assert_eq!(
            run_to_end(
                &mut monitor,
                &Trace::from_names([noise, a, noise, i, noise])
            ),
            Verdict::Satisfied
        );
    }

    #[test]
    fn ops_scale_with_observer_count() {
        let (voc, mut small) = setup("a[1,2] << i repeated");
        let (mut voc2, _) = (Vocabulary::new(), ());
        let prop = parse_property("a[1,8] << i repeated", &mut voc2).unwrap();
        let mut large = PslMonitor::build(&prop).unwrap();
        let a1 = n(&voc, "a");
        let a2 = n(&voc2, "a");
        let i1 = n(&voc, "i");
        // Same traces (names resolve to the same indices in both
        // vocabularies).
        assert_eq!(a1.index(), a2.index());
        assert_eq!(i1.index(), n(&voc2, "i").index());
        // The i flushes the a-run through the observers in both monitors.
        let trace = Trace::from_names([a1, a1, i1]);
        run_to_end(&mut small, &trace);
        run_to_end(&mut large, &trace);
        assert!(large.ops() > small.ops());
        assert!(large.state_bits() > small.state_bits());
        assert!(large.observer_count() > small.observer_count());
    }

    #[test]
    fn reset_restores_initial_state() {
        let (voc, mut monitor) = setup("a << i once");
        let (a, i) = (n(&voc, "a"), n(&voc, "i"));
        run_to_end(&mut monitor, &Trace::from_names([i]));
        assert_eq!(monitor.verdict(), Verdict::Violated);
        monitor.reset();
        assert_eq!(monitor.verdict(), Verdict::PresumablySatisfied);
        assert_eq!(
            run_to_end(&mut monitor, &Trace::from_names([a, i])),
            Verdict::Satisfied
        );
    }
}
