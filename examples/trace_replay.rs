//! Trace-replay monitoring: record a platform run to a trace file, then
//! replay the file offline through freshly built monitors — the workflow
//! this reproduction targets (there are no SystemC bindings for Rust, so
//! traces are the interchange format with real SystemC models).
//!
//! ```sh
//! cargo run --example trace_replay
//! ```

use lomon::core::monitor::build_monitor;
use lomon::core::parse::parse_property;
use lomon::core::verdict::run_to_end;
use lomon::tlm::scenario::{run_scenario, ScenarioConfig};
use lomon::trace::{read_trace, write_trace, Vocabulary};

fn main() {
    // 1. Record: run the platform once and serialize the observed trace.
    let report = run_scenario(&ScenarioConfig::nominal(77));
    let text = write_trace(&report.trace, &report.vocabulary);
    let path = std::env::temp_dir().join("lomon_replay.trace");
    std::fs::write(&path, &text).expect("trace file written");
    println!(
        "recorded {} events to {} ({} bytes)",
        report.trace.len(),
        path.display(),
        text.len()
    );
    println!("first lines:");
    for line in text.lines().take(6) {
        println!("  {line}");
    }
    println!("  …");

    // 2. Replay: read the file back into a fresh vocabulary and run the
    //    monitors offline.
    let loaded = std::fs::read_to_string(&path).expect("trace file read");
    let mut voc = Vocabulary::new();
    let trace = read_trace(&loaded, &mut voc).expect("trace parses");
    println!();
    println!("replaying {} events offline:", trace.len());

    for text in [
        "all{set_imgAddr, set_glAddr, set_glSize} << start repeated",
        "start => read_img[6,6] < set_irq within 20000 ns",
        // An extra property only checked offline: every button press is
        // eventually answered by an LCD update within 1ms.
        "btn_press => lcd_update within 1 ms",
    ] {
        let property = parse_property(text, &mut voc).expect("property parses");
        let mut monitor = build_monitor(property, &voc).expect("well-formed");
        let verdict = run_to_end(&mut monitor, &trace);
        println!("  {text:<55} → {verdict}");
    }
}
