//! The observation hub — Fig. 1's "assertions checker" wired into the
//! platform.
//!
//! Components publish their interface events (`set_imgAddr`, `start`,
//! `read_img`, `set_irq`, …) with the current simulated time; the hub
//! records them into a [`Trace`] (for trace-replay monitoring) and feeds
//! them to every attached online [`Monitor`]. After each event, monitors
//! with an open deadline get a kernel timeout scheduled, so `(P ⇒ Q, t)`
//! violations are detected *at* the deadline, not at the next event.

use std::cell::RefCell;
use std::rc::Rc;

use lomon_core::verdict::{Monitor, Verdict};
use lomon_kernel::Kernel;
use lomon_trace::{Name, SimTime, TimedEvent, Trace, Vocabulary};

struct AttachedMonitor {
    label: String,
    monitor: Box<dyn Monitor>,
    /// The deadline for which a timeout callback is already scheduled.
    armed_deadline: Option<SimTime>,
}

struct HubInner {
    vocabulary: Vocabulary,
    trace: Trace,
    monitors: Vec<AttachedMonitor>,
    record: bool,
}

/// Shared handle to the observation hub (cheap to clone; the timeout
/// callbacks capture clones).
#[derive(Clone)]
pub struct ObservationHub {
    inner: Rc<RefCell<HubInner>>,
}

impl std::fmt::Debug for ObservationHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("ObservationHub")
            .field("events", &inner.trace.len())
            .field("monitors", &inner.monitors.len())
            .finish()
    }
}

impl ObservationHub {
    /// A hub with the given vocabulary (pre-interned interface names).
    pub fn new(vocabulary: Vocabulary) -> Self {
        ObservationHub {
            inner: Rc::new(RefCell::new(HubInner {
                vocabulary,
                trace: Trace::new(),
                monitors: Vec::new(),
                record: true,
            })),
        }
    }

    /// Disable trace recording (benchmarks that only need online verdicts).
    pub fn set_recording(&self, record: bool) {
        self.inner.borrow_mut().record = record;
    }

    /// Attach an online monitor under a display label.
    pub fn attach(&self, label: impl Into<String>, monitor: Box<dyn Monitor>) {
        self.inner.borrow_mut().monitors.push(AttachedMonitor {
            label: label.into(),
            monitor,
            armed_deadline: None,
        });
    }

    /// Intern (or look up) a name in the hub's vocabulary.
    pub fn name(&self, text: &str, direction: lomon_trace::Direction) -> Name {
        self.inner.borrow_mut().vocabulary.intern(text, direction)
    }

    /// Publish one interface event at the kernel's current time.
    pub fn publish(&self, name: Name, kernel: &mut Kernel) {
        let now = kernel.now();
        let event = TimedEvent::new(name, now);
        {
            let mut inner = self.inner.borrow_mut();
            if inner.record {
                inner.trace.push(name, now);
            }
            for attached in &mut inner.monitors {
                attached.monitor.observe(event);
            }
        }
        self.arm_deadlines(kernel);
    }

    /// Schedule timeout callbacks for monitors with open deadlines.
    fn arm_deadlines(&self, kernel: &mut Kernel) {
        let deadlines: Vec<(usize, SimTime)> = {
            let mut inner = self.inner.borrow_mut();
            inner
                .monitors
                .iter_mut()
                .enumerate()
                .filter_map(|(idx, attached)| {
                    let deadline = attached.monitor.deadline()?;
                    if attached.armed_deadline == Some(deadline) {
                        None
                    } else {
                        attached.armed_deadline = Some(deadline);
                        Some((idx, deadline))
                    }
                })
                .collect()
        };
        let now = kernel.now();
        for (idx, deadline) in deadlines {
            let hub = self.clone();
            // Check just past the deadline (strictly-greater semantics).
            let delay = deadline.saturating_sub(now) + SimTime::from_ps(1);
            kernel.call_in(delay, move |k| {
                let mut inner = hub.inner.borrow_mut();
                let attached = &mut inner.monitors[idx];
                attached.monitor.advance_time(k.now());
                attached.armed_deadline = None;
            });
        }
    }

    /// Close observation at the kernel's current time and return the final
    /// per-monitor verdicts.
    pub fn finish(&self, kernel: &Kernel) -> Vec<(String, Verdict)> {
        let mut inner = self.inner.borrow_mut();
        let end = kernel.now();
        if inner.record {
            inner.trace.set_end_time(end);
        }
        inner
            .monitors
            .iter_mut()
            .map(|attached| (attached.label.clone(), attached.monitor.finish(end)))
            .collect()
    }

    /// Current per-monitor verdicts without closing.
    pub fn verdicts(&self) -> Vec<(String, Verdict)> {
        self.inner
            .borrow()
            .monitors
            .iter()
            .map(|attached| (attached.label.clone(), attached.monitor.verdict()))
            .collect()
    }

    /// First violation report, rendered, if any monitor is violated.
    pub fn first_violation(&self) -> Option<String> {
        let inner = self.inner.borrow();
        inner.monitors.iter().find_map(|attached| {
            attached
                .monitor
                .violation()
                .map(|v| format!("[{}] {}", attached.label, v.display(&inner.vocabulary)))
        })
    }

    /// Copy of the recorded trace.
    pub fn trace(&self) -> Trace {
        self.inner.borrow().trace.clone()
    }

    /// Copy of the vocabulary.
    pub fn vocabulary(&self) -> Vocabulary {
        self.inner.borrow().vocabulary.clone()
    }

    /// Number of recorded events.
    pub fn event_count(&self) -> usize {
        self.inner.borrow().trace.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lomon_core::monitor::build_monitor;
    use lomon_core::parse::parse_property;
    use lomon_kernel::Simulator;

    fn hub_with_example3(bound_ns: u64) -> (ObservationHub, Name, Name, Name) {
        let mut voc = Vocabulary::new();
        let prop = parse_property(
            &format!("start => read_img[2,4] < set_irq within {bound_ns} ns"),
            &mut voc,
        )
        .expect("parses");
        let start = voc.lookup("start").unwrap();
        let read = voc.lookup("read_img").unwrap();
        let irq = voc.lookup("set_irq").unwrap();
        let monitor = build_monitor(prop, &voc).expect("well-formed");
        let hub = ObservationHub::new(voc);
        hub.attach("example3", Box::new(monitor));
        (hub, start, read, irq)
    }

    #[test]
    fn publish_records_and_monitors() {
        let (hub, start, read, irq) = hub_with_example3(1000);
        let mut sim = Simulator::new(1);
        let h = hub.clone();
        sim.kernel().call_in(SimTime::from_ns(10), move |k| {
            h.publish(start, k);
        });
        for ns in [20, 30] {
            let h = hub.clone();
            sim.kernel().call_in(SimTime::from_ns(ns), move |k| {
                h.publish(read, k);
            });
        }
        let h = hub.clone();
        sim.kernel().call_in(SimTime::from_ns(40), move |k| {
            h.publish(irq, k);
        });
        sim.run(100);
        assert_eq!(hub.event_count(), 4);
        let verdicts = hub.finish(sim.kernel());
        assert_eq!(verdicts[0].1, Verdict::PresumablySatisfied);
        assert!(hub.first_violation().is_none());
    }

    #[test]
    fn online_deadline_detected_by_timeout_callback() {
        let (hub, start, _read, _irq) = hub_with_example3(100);
        let mut sim = Simulator::new(1);
        let h = hub.clone();
        sim.kernel().call_in(SimTime::from_ns(10), move |k| {
            h.publish(start, k);
        });
        // No response ever arrives; run far past the deadline.
        sim.run_until(SimTime::from_us(1));
        // The timeout callback must have flagged the violation online,
        // before finish().
        assert_eq!(hub.verdicts()[0].1, Verdict::Violated);
        let report = hub.first_violation().expect("violation report");
        assert!(report.contains("example3"));
    }

    #[test]
    fn finish_stamps_trace_end() {
        let (hub, start, _read, _irq) = hub_with_example3(100);
        let mut sim = Simulator::new(1);
        let h = hub.clone();
        sim.kernel().call_in(SimTime::from_ns(10), move |k| {
            h.publish(start, k);
        });
        sim.run_until(SimTime::from_ns(50));
        hub.finish(sim.kernel());
        assert_eq!(hub.trace().end_time(), SimTime::from_ns(50));
    }

    #[test]
    fn recording_can_be_disabled() {
        let (hub, start, _read, _irq) = hub_with_example3(100);
        hub.set_recording(false);
        let mut sim = Simulator::new(1);
        let h = hub.clone();
        sim.kernel().call_in(SimTime::from_ns(10), move |k| {
            h.publish(start, k);
        });
        // Stop before the 110ns deadline: the monitor is pending.
        sim.run_until(SimTime::from_ns(50));
        assert_eq!(hub.event_count(), 0);
        // Monitoring still works even though nothing was recorded.
        assert_eq!(hub.verdicts()[0].1, Verdict::Pending);
        // Past the deadline the timeout callback still fires.
        sim.run_until(SimTime::from_us(1));
        assert_eq!(hub.verdicts()[0].1, Verdict::Violated);
    }
}
