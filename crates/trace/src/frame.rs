//! Incremental newline-delimited frame decoding over partial reads.
//!
//! A TCP stream delivers bytes in arbitrary chunks: a frame (one
//! newline-terminated line) can arrive torn across many reads, glued to
//! its neighbours, or never completed at all. [`FrameDecoder`] is the
//! reusable boundary between raw socket reads and line-oriented parsing:
//! feed it whatever [`push`](FrameDecoder::push) chunks arrive and drain
//! complete frames with [`next_frame`](FrameDecoder::next_frame).
//!
//! The decoder is deliberately defensive — it backs the `lomon serve`
//! ingest path, where a single client must not be able to grow server
//! memory without bound. Frames longer than the configured cap are not
//! buffered: the pending bytes are discarded the moment they exceed the
//! cap, an [`Frame::Oversized`] notice is surfaced exactly once, and the
//! decoder silently resynchronizes at the next newline.

/// One decoded frame.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame<'a> {
    /// A complete line, without its `\n` terminator (a trailing `\r` is
    /// also stripped, so CRLF clients decode identically).
    Line(&'a [u8]),
    /// A frame exceeded the decoder's cap. `seen` is how many bytes of it
    /// had arrived when the cap tripped — a lower bound on the frame's
    /// true length, whose remaining bytes are discarded unreported.
    Oversized {
        /// Bytes of the offending frame observed before it was dropped.
        seen: usize,
    },
}

/// An incremental line framer with a hard per-frame byte cap.
///
/// ```
/// use lomon_trace::frame::{Frame, FrameDecoder};
///
/// let mut dec = FrameDecoder::new(1024);
/// dec.push(b"{\"time\":\"1ns\",\"na"); // torn mid-frame
/// assert_eq!(dec.next_frame(), None);
/// dec.push(b"me\":\"x\"}\n{\"end\"");
/// assert_eq!(
///     dec.next_frame(),
///     Some(Frame::Line(br#"{"time":"1ns","name":"x"}"#.as_slice()))
/// );
/// assert_eq!(dec.partial_len(), 6); // the torn tail is still pending
/// ```
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix: bytes before `start` have been delivered.
    start: usize,
    /// Scan cursor: bytes before `scan` are known newline-free.
    scan: usize,
    max_frame: usize,
    /// Mid-discard of an oversized frame: swallow bytes up to the next
    /// newline without reporting them again.
    skipping: bool,
}

impl FrameDecoder {
    /// A decoder that refuses to buffer more than `max_frame` bytes for
    /// any single frame.
    pub fn new(max_frame: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            start: 0,
            scan: 0,
            max_frame,
            skipping: false,
        }
    }

    /// Append one chunk of raw bytes, as read off the wire.
    pub fn push(&mut self, bytes: &[u8]) {
        // Reclaim the consumed prefix before growing: the buffer then
        // stays bounded by the cap plus one read chunk, however long the
        // connection lives.
        if self.start > 0 && (self.start == self.buf.len() || self.start >= 4096) {
            self.buf.drain(..self.start);
            self.scan -= self.start;
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// The next complete frame, if one is buffered. Returns `None` when
    /// every buffered byte belongs to a still-incomplete frame — push more
    /// and ask again.
    pub fn next_frame(&mut self) -> Option<Frame<'_>> {
        loop {
            match self.buf[self.scan..].iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    let nl = self.scan + pos;
                    let line_start = self.start;
                    self.start = nl + 1;
                    self.scan = self.start;
                    if self.skipping {
                        // The tail of a frame already reported oversized.
                        self.skipping = false;
                        continue;
                    }
                    let mut line = &self.buf[line_start..nl];
                    if line.last() == Some(&b'\r') {
                        line = &line[..line.len() - 1];
                    }
                    if line.len() > self.max_frame {
                        return Some(Frame::Oversized { seen: line.len() });
                    }
                    return Some(Frame::Line(line));
                }
                None => {
                    self.scan = self.buf.len();
                    let pending = self.buf.len() - self.start;
                    if !self.skipping && pending > self.max_frame {
                        // Stop buffering the runaway frame *now* — the
                        // cap, not the client, bounds memory.
                        self.start = self.buf.len();
                        self.skipping = true;
                        return Some(Frame::Oversized { seen: pending });
                    }
                    return None;
                }
            }
        }
    }

    /// Bytes buffered for a frame that has not (yet) completed. Nonzero
    /// after end-of-stream means the peer disconnected mid-frame — a torn
    /// final frame the caller should treat as a protocol fault.
    pub fn partial_len(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drain the decoder into owned lines (oversized frames as `Err`).
    fn drain(dec: &mut FrameDecoder) -> Vec<Result<Vec<u8>, usize>> {
        let mut out = Vec::new();
        while let Some(frame) = dec.next_frame() {
            out.push(match frame {
                Frame::Line(l) => Ok(l.to_vec()),
                Frame::Oversized { seen } => Err(seen),
            });
        }
        out
    }

    #[test]
    fn reassembles_frames_across_arbitrary_tears() {
        let input = b"alpha\nbeta\r\ngamma\n";
        // Every split point must decode identically.
        for cut in 0..input.len() {
            let mut dec = FrameDecoder::new(64);
            dec.push(&input[..cut]);
            let mut lines = drain(&mut dec);
            dec.push(&input[cut..]);
            lines.extend(drain(&mut dec));
            assert_eq!(
                lines,
                vec![
                    Ok(b"alpha".to_vec()),
                    Ok(b"beta".to_vec()),
                    Ok(b"gamma".to_vec())
                ],
                "cut at {cut}"
            );
            assert_eq!(dec.partial_len(), 0);
        }
    }

    #[test]
    fn byte_at_a_time_matches_one_shot() {
        let input = b"one\n\ntwo\n";
        let mut dec = FrameDecoder::new(8);
        let mut lines = Vec::new();
        for &b in input.iter() {
            dec.push(&[b]);
            lines.extend(drain(&mut dec));
        }
        assert_eq!(
            lines,
            vec![Ok(b"one".to_vec()), Ok(b"".to_vec()), Ok(b"two".to_vec())]
        );
    }

    #[test]
    fn oversized_frame_is_dropped_reported_once_and_resyncs() {
        let mut dec = FrameDecoder::new(4);
        dec.push(b"toolong");
        // Cap already exceeded mid-frame: reported before the newline even
        // arrives, and the pending bytes are gone.
        assert_eq!(dec.next_frame(), Some(Frame::Oversized { seen: 7 }));
        assert_eq!(dec.partial_len(), 0);
        dec.push(b"morejunk\nok\n");
        // The tail of the oversized frame is swallowed silently; decoding
        // resumes at the next frame.
        assert_eq!(drain(&mut dec), vec![Ok(b"ok".to_vec())]);
    }

    #[test]
    fn complete_frame_over_cap_reports_true_length() {
        let mut dec = FrameDecoder::new(4);
        dec.push(b"12345\nok\n");
        assert_eq!(
            drain(&mut dec),
            vec![Err(5), Ok(b"ok".to_vec())],
            "a frame that arrives whole reports its exact length"
        );
    }

    #[test]
    fn torn_tail_is_visible_as_partial() {
        let mut dec = FrameDecoder::new(64);
        dec.push(b"done\nhalf");
        assert_eq!(drain(&mut dec), vec![Ok(b"done".to_vec())]);
        assert_eq!(dec.partial_len(), 4);
    }

    #[test]
    fn long_lived_buffer_is_compacted() {
        let mut dec = FrameDecoder::new(64);
        for _ in 0..10_000 {
            dec.push(b"0123456789abcdef\n");
            assert!(dec.next_frame().is_some());
            // The consumed prefix is reclaimed: the buffer never grows
            // past a few frames even over an unbounded connection.
            assert!(dec.buf.capacity() < 64 * 1024);
        }
    }
}
