//! PSL/LTL formula AST over the run-length token alphabet.
//!
//! The paper's Section 5 translation encodes ranges by *lexing* maximal runs
//! of a name into per-length tokens (`n n n` → `n⟨3⟩`), so the atoms of the
//! resulting PSL formulas are predicates over [`LexedToken`]s rather than
//! plain names. Three predicate shapes suffice:
//!
//! * an exact token (`n⟨3⟩`);
//! * any token of a name with a run inside `[lo,hi]` (the "some token of
//!   range R" disjunctions, kept symbolic so huge ranges stay representable);
//! * any token of a name with a run *outside* `[lo,hi]` (the ill-length
//!   tokens that are "not in the vocabulary" of the encoded property).
//!
//! The temporal operators are the PSL subset the translation needs: boolean
//! connectives, (weak) `next`, strong `until!`, weak `until`, `always` and
//! `eventually!`.

use lomon_trace::{LexedToken, Name, Vocabulary};

/// A predicate over run-length tokens — the atoms of our PSL subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenTest {
    /// Exactly the token `name⟨run⟩`.
    Exact {
        /// The token's name.
        name: Name,
        /// The required run length.
        run: u32,
    },
    /// Any token `name⟨k⟩` with `lo ≤ k ≤ hi`.
    InRange {
        /// The token's name.
        name: Name,
        /// Minimum run length.
        lo: u32,
        /// Maximum run length.
        hi: u32,
    },
    /// Any token `name⟨k⟩` with `k < lo` or `k > hi` — an ill-length run.
    OutsideRange {
        /// The token's name.
        name: Name,
        /// Minimum legal run length.
        lo: u32,
        /// Maximum legal run length.
        hi: u32,
    },
    /// Any token of `name`, regardless of run length — a *name-level* atom
    /// (used by the Asynch conjuncts, which pre-date the lexing).
    AnyRun {
        /// The token's name.
        name: Name,
    },
}

impl TokenTest {
    /// Whether `token` satisfies this predicate.
    pub fn matches(&self, token: LexedToken) -> bool {
        match *self {
            TokenTest::Exact { name, run } => token.name == name && token.run == run,
            TokenTest::InRange { name, lo, hi } => {
                token.name == name && token.run >= lo && token.run <= hi
            }
            TokenTest::OutsideRange { name, lo, hi } => {
                token.name == name && (token.run < lo || token.run > hi)
            }
            TokenTest::AnyRun { name } => token.name == name,
        }
    }

    /// The name this predicate constrains.
    pub fn name(&self) -> Name {
        match *self {
            TokenTest::Exact { name, .. }
            | TokenTest::InRange { name, .. }
            | TokenTest::OutsideRange { name, .. }
            | TokenTest::AnyRun { name } => name,
        }
    }

    /// How many concrete tokens the predicate denotes (`None` = unbounded,
    /// for [`TokenTest::OutsideRange`]). This is the *formula-size weight*
    /// of the atom once the symbolic disjunction is expanded — the source of
    /// the `(v−u+1)` factors in the ViaPSL cost model.
    pub fn expanded_width(&self) -> Option<u64> {
        match *self {
            TokenTest::Exact { .. } => Some(1),
            TokenTest::InRange { lo, hi, .. } => Some(u64::from(hi) - u64::from(lo) + 1),
            TokenTest::OutsideRange { .. } => None,
            TokenTest::AnyRun { .. } => Some(1),
        }
    }

    /// Render against a vocabulary, e.g. `read_img⟨3⟩` or `read_img⟨2..8⟩`.
    pub fn display(&self, voc: &Vocabulary) -> String {
        match *self {
            TokenTest::Exact { name, run } => format!("{}⟨{run}⟩", voc.resolve(name)),
            TokenTest::InRange { name, lo, hi } => {
                format!("{}⟨{lo}..{hi}⟩", voc.resolve(name))
            }
            TokenTest::OutsideRange { name, lo, hi } => {
                format!("{}⟨∉{lo}..{hi}⟩", voc.resolve(name))
            }
            TokenTest::AnyRun { name } => voc.resolve(name).to_owned(),
        }
    }
}

/// A formula of the PSL subset used by the Section 5 translation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Psl {
    /// Boolean constant.
    Const(bool),
    /// A token predicate.
    Atom(TokenTest),
    /// Negation.
    Not(Box<Psl>),
    /// n-ary conjunction.
    And(Vec<Psl>),
    /// n-ary disjunction.
    Or(Vec<Psl>),
    /// Implication.
    Implies(Box<Psl>, Box<Psl>),
    /// Weak next: trivially true at the last position.
    Next(Box<Psl>),
    /// Strong until (`until!`): the right operand must eventually hold.
    Until(Box<Psl>, Box<Psl>),
    /// Weak until: strong until or the left operand holds forever.
    WeakUntil(Box<Psl>, Box<Psl>),
    /// `always φ` (`G φ`).
    Always(Box<Psl>),
    /// `eventually! φ` (`F! φ`).
    Eventually(Box<Psl>),
}

impl Psl {
    /// Smart conjunction (flattens, drops `true`, absorbs `false`).
    pub fn and(parts: Vec<Psl>) -> Psl {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Psl::Const(true) => {}
                Psl::Const(false) => return Psl::Const(false),
                Psl::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Psl::Const(true),
            1 => out.pop().expect("len checked"),
            _ => Psl::And(out),
        }
    }

    /// Smart disjunction (flattens, drops `false`, absorbs `true`).
    pub fn or(parts: Vec<Psl>) -> Psl {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Psl::Const(false) => {}
                Psl::Const(true) => return Psl::Const(true),
                Psl::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Psl::Const(false),
            1 => out.pop().expect("len checked"),
            _ => Psl::Or(out),
        }
    }

    /// `¬φ` (a constructor, not `std::ops::Not`, to match the other
    /// builders).
    #[allow(clippy::should_implement_trait)]
    pub fn not(p: Psl) -> Psl {
        Psl::Not(Box::new(p))
    }

    /// `φ → ψ`.
    pub fn implies(p: Psl, q: Psl) -> Psl {
        Psl::Implies(Box::new(p), Box::new(q))
    }

    /// `X φ` (weak).
    pub fn next(p: Psl) -> Psl {
        Psl::Next(Box::new(p))
    }

    /// `φ U! ψ`.
    pub fn until(p: Psl, q: Psl) -> Psl {
        Psl::Until(Box::new(p), Box::new(q))
    }

    /// `φ W ψ`.
    pub fn weak_until(p: Psl, q: Psl) -> Psl {
        Psl::WeakUntil(Box::new(p), Box::new(q))
    }

    /// `G φ`.
    pub fn always(p: Psl) -> Psl {
        Psl::Always(Box::new(p))
    }

    /// `F! φ`.
    pub fn eventually(p: Psl) -> Psl {
        Psl::Eventually(Box::new(p))
    }

    /// Number of AST nodes, counting symbolic range atoms with weight 1
    /// (the compact representation actually held in memory).
    pub fn node_count(&self) -> u64 {
        1 + match self {
            Psl::Const(_) | Psl::Atom(_) => 0,
            Psl::Not(p) | Psl::Next(p) | Psl::Always(p) | Psl::Eventually(p) => p.node_count(),
            Psl::And(ps) | Psl::Or(ps) => ps.iter().map(Psl::node_count).sum(),
            Psl::Implies(p, q) | Psl::Until(p, q) | Psl::WeakUntil(p, q) => {
                p.node_count() + q.node_count()
            }
        }
    }

    /// Number of AST nodes once every symbolic range atom is expanded into
    /// its disjunction of exact tokens — the size a PSL tool without our
    /// symbolic atoms would have to handle ("the new vocabulary of `n[1,2]`
    /// is `{n1, n2}`"). `OutsideRange` atoms count 1 (complement tests).
    pub fn expanded_node_count(&self) -> u64 {
        match self {
            Psl::Const(_) => 1,
            Psl::Atom(t) => match t.expanded_width() {
                // k exact atoms plus the (k−1)-ary disjunction node.
                Some(k) if k > 1 => 2 * k - 1,
                _ => 1,
            },
            Psl::Not(p) | Psl::Next(p) | Psl::Always(p) | Psl::Eventually(p) => {
                1 + p.expanded_node_count()
            }
            Psl::And(ps) | Psl::Or(ps) => 1 + ps.iter().map(Psl::expanded_node_count).sum::<u64>(),
            Psl::Implies(p, q) | Psl::Until(p, q) | Psl::WeakUntil(p, q) => {
                1 + p.expanded_node_count() + q.expanded_node_count()
            }
        }
    }

    /// Pretty-print in PSL-ish concrete syntax.
    pub fn display(&self, voc: &Vocabulary) -> String {
        match self {
            Psl::Const(true) => "true".into(),
            Psl::Const(false) => "false".into(),
            Psl::Atom(t) => t.display(voc),
            Psl::Not(p) => format!("!({})", p.display(voc)),
            Psl::And(ps) => {
                let parts: Vec<_> = ps.iter().map(|p| p.display(voc)).collect();
                format!("({})", parts.join(" && "))
            }
            Psl::Or(ps) => {
                let parts: Vec<_> = ps.iter().map(|p| p.display(voc)).collect();
                format!("({})", parts.join(" || "))
            }
            Psl::Implies(p, q) => format!("({} -> {})", p.display(voc), q.display(voc)),
            Psl::Next(p) => format!("next({})", p.display(voc)),
            Psl::Until(p, q) => format!("({} until! {})", p.display(voc), q.display(voc)),
            Psl::WeakUntil(p, q) => format!("({} until {})", p.display(voc), q.display(voc)),
            Psl::Always(p) => format!("always({})", p.display(voc)),
            Psl::Eventually(p) => format!("eventually!({})", p.display(voc)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn voc() -> (Vocabulary, Name, Name) {
        let mut v = Vocabulary::new();
        let n = v.input("n");
        let i = v.input("i");
        (v, n, i)
    }

    fn tok(name: Name, run: u32) -> LexedToken {
        LexedToken { name, run }
    }

    #[test]
    fn token_tests_match() {
        let (_v, n, i) = voc();
        assert!(TokenTest::Exact { name: n, run: 3 }.matches(tok(n, 3)));
        assert!(!TokenTest::Exact { name: n, run: 3 }.matches(tok(n, 2)));
        assert!(!TokenTest::Exact { name: n, run: 3 }.matches(tok(i, 3)));
        let in_range = TokenTest::InRange {
            name: n,
            lo: 2,
            hi: 8,
        };
        assert!(in_range.matches(tok(n, 2)) && in_range.matches(tok(n, 8)));
        assert!(!in_range.matches(tok(n, 1)) && !in_range.matches(tok(n, 9)));
        let outside = TokenTest::OutsideRange {
            name: n,
            lo: 2,
            hi: 8,
        };
        assert!(outside.matches(tok(n, 1)) && outside.matches(tok(n, 9)));
        assert!(!outside.matches(tok(n, 5)));
        assert!(!outside.matches(tok(i, 1)));
    }

    #[test]
    fn expanded_width() {
        let (_v, n, _i) = voc();
        assert_eq!(
            TokenTest::Exact { name: n, run: 1 }.expanded_width(),
            Some(1)
        );
        assert_eq!(
            TokenTest::InRange {
                name: n,
                lo: 100,
                hi: 60_000
            }
            .expanded_width(),
            Some(59_901)
        );
        assert_eq!(
            TokenTest::OutsideRange {
                name: n,
                lo: 1,
                hi: 2
            }
            .expanded_width(),
            None
        );
    }

    #[test]
    fn smart_constructors_simplify() {
        let (_v, n, _i) = voc();
        let a = Psl::Atom(TokenTest::Exact { name: n, run: 1 });
        assert_eq!(Psl::and(vec![]), Psl::Const(true));
        assert_eq!(Psl::and(vec![Psl::Const(true), a.clone()]), a);
        assert_eq!(
            Psl::and(vec![Psl::Const(false), a.clone()]),
            Psl::Const(false)
        );
        assert_eq!(Psl::or(vec![]), Psl::Const(false));
        assert_eq!(Psl::or(vec![Psl::Const(true), a.clone()]), Psl::Const(true));
        // Nested conjunctions flatten.
        let nested = Psl::and(vec![Psl::and(vec![a.clone(), a.clone()]), a]);
        assert_eq!(nested.node_count(), 4); // And + 3 atoms
    }

    #[test]
    fn node_counts() {
        let (_v, n, i) = voc();
        let t = Psl::Atom(TokenTest::Exact { name: n, run: 1 });
        let trig = Psl::Atom(TokenTest::Exact { name: i, run: 1 });
        // always(t -> next(!t until! i))
        let f = Psl::always(Psl::implies(
            t.clone(),
            Psl::next(Psl::until(Psl::not(t), trig)),
        ));
        assert_eq!(f.node_count(), 8);
        assert_eq!(f.expanded_node_count(), 8); // no symbolic atoms
    }

    #[test]
    fn expanded_count_blows_up_with_ranges() {
        let (_v, n, _i) = voc();
        let sym = Psl::Atom(TokenTest::InRange {
            name: n,
            lo: 100,
            hi: 60_000,
        });
        assert_eq!(sym.node_count(), 1);
        assert_eq!(sym.expanded_node_count(), 2 * 59_901 - 1);
    }

    #[test]
    fn display_renders_operators() {
        let (v, n, i) = voc();
        let t = Psl::Atom(TokenTest::Exact { name: n, run: 1 });
        let trig = Psl::Atom(TokenTest::Exact { name: i, run: 1 });
        let f = Psl::always(Psl::implies(
            t.clone(),
            Psl::next(Psl::until(Psl::not(t), trig)),
        ));
        let text = f.display(&v);
        assert!(text.contains("always("));
        assert!(text.contains("until!"));
        assert!(text.contains("n⟨1⟩"));
    }
}
