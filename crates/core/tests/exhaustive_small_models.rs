//! Exhaustive small-model checking: for a corpus of small patterns,
//! enumerate *every* trace up to a length bound over the pattern alphabet
//! and require the direct monitor and the NFA oracle to agree — no random
//! sampling gaps, complete coverage of the small state space.

use lomon_core::ast::Property;
use lomon_core::monitor::build_monitor;
use lomon_core::parse::parse_property;
use lomon_core::semantics::PatternOracle;
use lomon_core::verdict::{Monitor, Verdict};
use lomon_trace::{Name, Trace, Vocabulary};

/// Check every trace over `alphabet` with length ≤ `max_len`.
/// Returns the number of traces checked.
fn exhaustive_check(property: &Property, voc: &Vocabulary, max_len: u32) -> u64 {
    let oracle = PatternOracle::new(property);
    let alphabet: Vec<Name> = property.alpha().iter().collect();
    let k = alphabet.len() as u64;
    let mut checked = 0;

    for len in 0..=max_len {
        let total = k.pow(len);
        for code in 0..total {
            let mut word = Vec::with_capacity(len as usize);
            let mut c = code;
            for _ in 0..len {
                word.push(alphabet[(c % k) as usize]);
                c /= k;
            }
            let trace = Trace::from_names(word.clone());
            let oracle_rejects = oracle.check(&trace).err();
            let mut monitor = build_monitor(property.clone(), voc).expect("well-formed");
            let mut monitor_rejects = None;
            for (pos, &event) in trace.iter().enumerate() {
                if monitor.observe(event) == Verdict::Violated && monitor_rejects.is_none() {
                    monitor_rejects = Some(pos);
                }
            }
            assert_eq!(
                monitor_rejects,
                oracle_rejects,
                "{} on {:?}",
                property.display(voc),
                word.iter().map(|&n| voc.resolve(n)).collect::<Vec<_>>()
            );
            checked += 1;
        }
    }
    checked
}

#[test]
fn single_range_repeated() {
    let mut voc = Vocabulary::new();
    let p = parse_property("n[1,2] << i repeated", &mut voc).unwrap();
    // 2 names, up to length 10: 2047 traces.
    assert_eq!(exhaustive_check(&p, &voc, 10), 2047);
}

#[test]
fn single_range_once() {
    let mut voc = Vocabulary::new();
    let p = parse_property("n[2,3] << i once", &mut voc).unwrap();
    assert_eq!(exhaustive_check(&p, &voc, 10), 2047);
}

#[test]
fn conjunctive_fragment() {
    let mut voc = Vocabulary::new();
    let p = parse_property("all{a, b} << i repeated", &mut voc).unwrap();
    // 3 names, up to length 8: 9841 traces.
    assert_eq!(exhaustive_check(&p, &voc, 8), 9841);
}

#[test]
fn disjunctive_fragment() {
    let mut voc = Vocabulary::new();
    let p = parse_property("any{a, b[1,2]} << i repeated", &mut voc).unwrap();
    assert_eq!(exhaustive_check(&p, &voc, 8), 9841);
}

#[test]
fn two_fragment_ordering() {
    let mut voc = Vocabulary::new();
    let p = parse_property("a < b << i once", &mut voc).unwrap();
    assert_eq!(exhaustive_check(&p, &voc, 8), 9841);
}

#[test]
fn mixed_ordering() {
    let mut voc = Vocabulary::new();
    let p = parse_property("any{a, b} < c << i repeated", &mut voc).unwrap();
    // 4 names, up to length 6: 5461 traces.
    assert_eq!(exhaustive_check(&p, &voc, 6), 5461);
}

#[test]
fn timed_untimed_projection() {
    let mut voc = Vocabulary::new();
    // Huge bound: timing can never interfere on ns-spaced traces.
    let p = parse_property("a => x[1,2] < y within 1 s", &mut voc).unwrap();
    assert_eq!(exhaustive_check(&p, &voc, 8), 9841);
}
