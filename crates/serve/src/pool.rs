//! The sharded pool of recycled session states.
//!
//! Opening a session allocates monitor arenas, liveness arrays and queues;
//! the zero-alloc [`reset`](lomon_engine::Session::reset) path makes all
//! of that reusable across streams. The pool is where finished
//! connections park their (reset) [`SessionState`]s and new connections
//! pick them back up, sharded over several mutexes so a hundred
//! concurrent handlers do not serialize on one free-list.
//!
//! States are keyed by program *generation*: a hot-reload strands the old
//! generation's states, which are lazily discarded on the next acquire
//! (and eagerly on [`SessionPool::purge`]). [`Engine::resume`]'s identity
//! check makes even a mis-keyed state harmless — it would be rejected and
//! replaced by a fresh session.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use lomon_engine::SessionState;

/// How many independent free-lists the pool is split over.
const SHARDS: usize = 8;

/// A sharded free-list of parked sessions, keyed by program generation.
#[derive(Debug)]
pub(crate) struct SessionPool {
    shards: Vec<Mutex<Vec<(u64, SessionState)>>>,
    /// Round-robin cursor decorrelating which shard concurrent handlers
    /// hit first.
    cursor: AtomicUsize,
    /// Per-shard cap: the pool as a whole never holds more states than
    /// the server would run concurrently.
    per_shard: usize,
}

impl SessionPool {
    pub(crate) fn new(max_streams: usize) -> Self {
        SessionPool {
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            cursor: AtomicUsize::new(0),
            per_shard: max_streams.div_ceil(SHARDS).max(1),
        }
    }

    /// Pop a parked state of `generation`, scanning every shard once.
    /// Stale states (other generations) found along the way are dropped —
    /// their engine is gone, nobody will ever resume them.
    pub(crate) fn acquire(&self, generation: u64) -> Option<SessionState> {
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        for k in 0..SHARDS {
            let shard = &self.shards[(start + k) % SHARDS];
            let Ok(mut states) = shard.lock() else {
                continue;
            };
            states.retain(|(gen, _)| *gen == generation);
            if let Some((_, state)) = states.pop() {
                return Some(state);
            }
        }
        None
    }

    /// Park a (reset) state for reuse by the next stream of `generation`.
    /// A full shard drops the state instead — the pool sheds rather than
    /// grows.
    pub(crate) fn release(&self, generation: u64, state: SessionState) {
        let shard = &self.shards[self.cursor.fetch_add(1, Ordering::Relaxed) % SHARDS];
        if let Ok(mut states) = shard.lock() {
            if states.len() < self.per_shard {
                states.push((generation, state));
            }
        }
    }

    /// Drop every parked state (after a reload: the old generation's
    /// arenas are dead weight).
    pub(crate) fn purge(&self) {
        for shard in &self.shards {
            if let Ok(mut states) = shard.lock() {
                states.clear();
            }
        }
    }

    /// Total parked states, for tests and the health endpoint.
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().map(|v| v.len()).unwrap_or(0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lomon_engine::Engine;
    use lomon_trace::Vocabulary;

    fn engine() -> Engine {
        let mut voc = Vocabulary::new();
        Engine::compile(&["all{a, b} << start once"], &mut voc).expect("compiles")
    }

    #[test]
    fn acquire_returns_released_state_of_same_generation() {
        let engine = engine();
        let pool = SessionPool::new(4);
        assert!(pool.acquire(1).is_none());
        pool.release(1, engine.session().into_state());
        let state = pool.acquire(1).expect("parked state comes back");
        assert!(engine.resume(state).is_ok());
        assert!(pool.acquire(1).is_none());
    }

    #[test]
    fn stale_generations_are_discarded() {
        let engine = engine();
        let pool = SessionPool::new(4);
        for _ in 0..3 {
            pool.release(1, engine.session().into_state());
        }
        assert_eq!(pool.len(), 3);
        assert!(pool.acquire(2).is_none());
        assert_eq!(pool.len(), 0, "old-generation states were dropped");
    }

    #[test]
    fn pool_is_bounded() {
        let engine = engine();
        let pool = SessionPool::new(2);
        for _ in 0..100 {
            pool.release(1, engine.session().into_state());
        }
        assert!(pool.len() <= SHARDS, "per-shard cap bounds the pool");
    }

    #[test]
    fn purge_empties_every_shard() {
        let engine = engine();
        let pool = SessionPool::new(16);
        for _ in 0..10 {
            pool.release(1, engine.session().into_state());
        }
        pool.purge();
        assert_eq!(pool.len(), 0);
    }
}
