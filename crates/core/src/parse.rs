//! Textual property language for loose-ordering patterns.
//!
//! The concrete syntax mirrors the paper's notation:
//!
//! ```text
//! property  := ordering "<<" name flag?               antecedent (Def. 4)
//!            | ordering "=>" ordering "within" TIME   timed impl. (Def. 5)
//! flag      := "repeated" | "once"                    default: once
//! ordering  := fragment ("<" fragment)*
//! fragment  := ("all" | "any") "{" range ("," range)* "}"
//!            | range                                  singleton ∧-fragment
//! range     := name ("[" INT "," INT "]")?            default [1,1]
//! name      := ("in:" | "out:")? IDENT
//! TIME      := INT ("ps"|"ns"|"us"|"ms"|"s")
//! ```
//!
//! The paper's Example 2 reads
//! `all{set_imgAddr, set_glAddr, set_glSize} << start once`, and Example 3
//! `start => read_img[100,60000] < set_irq within 60000 ns`.
//!
//! **Directions.** The well-formedness rules need to know which names are
//! inputs and which are outputs. Unprefixed names default to *input* in an
//! antecedent and in a timed implication's premise, and to *output* in the
//! response `Q`; the `in:`/`out:` prefixes override. A name already present
//! in the vocabulary keeps its original direction.

use lomon_trace::{Direction, Name, SimTime, Vocabulary};

use crate::ast::{
    Antecedent, Fragment, FragmentOp, LooseOrdering, Property, Range, TimedImplication,
};

/// A parse error with its byte span in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the problem starts.
    pub start: usize,
    /// Byte offset just past the problem.
    pub end: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    fn new(span: (usize, usize), message: impl Into<String>) -> Self {
        ParseError {
            start: span.0,
            end: span.1,
            message: message.into(),
        }
    }

    /// Render the error with a caret line pointing into `source`.
    pub fn display_with_source(&self, source: &str) -> String {
        let mut line_start = 0;
        let mut line_no = 1;
        for (idx, ch) in source.char_indices() {
            if idx >= self.start {
                break;
            }
            if ch == '\n' {
                line_start = idx + 1;
                line_no += 1;
            }
        }
        let line_end = source[line_start..]
            .find('\n')
            .map_or(source.len(), |k| line_start + k);
        let line = &source[line_start..line_end];
        let col = self.start - line_start;
        let width = (self.end.min(line_end).max(self.start + 1)) - self.start;
        format!(
            "error at line {line_no}, column {}: {}\n  {line}\n  {}{}",
            col + 1,
            self.message,
            " ".repeat(col),
            "^".repeat(width.max(1)),
        )
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parse error at {}..{}: {}",
            self.start, self.end, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(u64),
    DirIn,
    DirOut,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Less,
    LessLess,
    Implies,
    Eof,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Int(n) => format!("number `{n}`"),
            Tok::DirIn => "`in:`".into(),
            Tok::DirOut => "`out:`".into(),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Less => "`<`".into(),
            Tok::LessLess => "`<<`".into(),
            Tok::Implies => "`=>`".into(),
            Tok::Eof => "end of input".into(),
        }
    }
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

/// A token with its byte span.
type SpannedTok = (Tok, (usize, usize));

impl<'a> Lexer<'a> {
    fn tokenize(src: &'a str) -> Result<Vec<SpannedTok>, ParseError> {
        let mut lx = Lexer { src, pos: 0 };
        let mut out = Vec::new();
        loop {
            lx.skip_ws();
            let start = lx.pos;
            let Some(ch) = lx.peek() else {
                out.push((Tok::Eof, (start, start)));
                return Ok(out);
            };
            let tok = match ch {
                '{' => {
                    lx.pos += 1;
                    Tok::LBrace
                }
                '}' => {
                    lx.pos += 1;
                    Tok::RBrace
                }
                '[' => {
                    lx.pos += 1;
                    Tok::LBracket
                }
                ']' => {
                    lx.pos += 1;
                    Tok::RBracket
                }
                ',' => {
                    lx.pos += 1;
                    Tok::Comma
                }
                '<' => {
                    lx.pos += 1;
                    if lx.peek() == Some('<') {
                        lx.pos += 1;
                        Tok::LessLess
                    } else {
                        Tok::Less
                    }
                }
                '=' => {
                    lx.pos += 1;
                    if lx.peek() == Some('>') {
                        lx.pos += 1;
                        Tok::Implies
                    } else {
                        return Err(ParseError::new((start, lx.pos), "expected `=>` after `=`"));
                    }
                }
                c if c.is_ascii_digit() => {
                    let digits = lx.take_while(|c| c.is_ascii_digit());
                    let value: u64 = digits
                        .parse()
                        .map_err(|_| ParseError::new((start, lx.pos), "number too large"))?;
                    Tok::Int(value)
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let word = lx.take_while(|c| c.is_ascii_alphanumeric() || c == '_');
                    if lx.peek() == Some(':') && (word == "in" || word == "out") {
                        lx.pos += 1;
                        if word == "in" {
                            Tok::DirIn
                        } else {
                            Tok::DirOut
                        }
                    } else {
                        Tok::Ident(word.to_owned())
                    }
                }
                other => {
                    return Err(ParseError::new(
                        (start, start + other.len_utf8()),
                        format!("unexpected character `{other}`"),
                    ))
                }
            };
            out.push((tok, (start, lx.pos)));
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn take_while(&mut self, pred: impl Fn(char) -> bool) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if pred(c) {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        self.src[start..self.pos].to_owned()
    }
}

struct Parser<'v> {
    tokens: Vec<SpannedTok>,
    pos: usize,
    voc: &'v mut Vocabulary,
}

impl<'v> Parser<'v> {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].0
    }

    fn span(&self) -> (usize, usize) {
        self.tokens[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].0.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(ParseError::new(
                self.span(),
                format!("expected {what}, found {}", self.peek().describe()),
            ))
        }
    }

    /// `name := ("in:"|"out:")? IDENT` interned with `default` direction.
    fn name(&mut self, default: Direction) -> Result<Name, ParseError> {
        let direction = match self.peek() {
            Tok::DirIn => {
                self.bump();
                Direction::Input
            }
            Tok::DirOut => {
                self.bump();
                Direction::Output
            }
            _ => default,
        };
        match self.bump() {
            Tok::Ident(word) => {
                if is_keyword(&word) {
                    Err(ParseError::new(
                        self.tokens[self.pos - 1].1,
                        format!("`{word}` is a keyword and cannot name an event"),
                    ))
                } else {
                    Ok(self.voc.intern(&word, direction))
                }
            }
            other => Err(ParseError::new(
                self.tokens[self.pos - 1].1,
                format!("expected an event name, found {}", other.describe()),
            )),
        }
    }

    /// `range := name ("[" INT "," INT "]")?`
    fn range(&mut self, default: Direction) -> Result<Range, ParseError> {
        let name = self.name(default)?;
        if self.peek() == &Tok::LBracket {
            self.bump();
            let min = self.integer("the range minimum")?;
            self.expect(&Tok::Comma, "`,` between range bounds")?;
            let max = self.integer("the range maximum")?;
            self.expect(&Tok::RBracket, "`]` closing the range")?;
            Ok(Range::new(name, min, max))
        } else {
            Ok(Range::once(name))
        }
    }

    fn integer(&mut self, what: &str) -> Result<u32, ParseError> {
        match self.bump() {
            Tok::Int(n) => u32::try_from(n).map_err(|_| {
                ParseError::new(self.tokens[self.pos - 1].1, format!("{what} is too large"))
            }),
            other => Err(ParseError::new(
                self.tokens[self.pos - 1].1,
                format!("expected {what}, found {}", other.describe()),
            )),
        }
    }

    /// `fragment := ("all"|"any") "{" range+ "}" | range`
    fn fragment(&mut self, default: Direction) -> Result<Fragment, ParseError> {
        let op = match self.peek() {
            Tok::Ident(w) if w == "all" => Some(FragmentOp::All),
            Tok::Ident(w) if w == "any" => Some(FragmentOp::Any),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            self.expect(&Tok::LBrace, "`{` opening the fragment")?;
            let mut ranges = vec![self.range(default)?];
            while self.peek() == &Tok::Comma {
                self.bump();
                ranges.push(self.range(default)?);
            }
            self.expect(&Tok::RBrace, "`}` closing the fragment")?;
            Ok(Fragment::new(op, ranges))
        } else {
            Ok(Fragment::singleton(self.range(default)?))
        }
    }

    /// `ordering := fragment ("<" fragment)*`
    fn ordering(&mut self, default: Direction) -> Result<LooseOrdering, ParseError> {
        let mut fragments = vec![self.fragment(default)?];
        while self.peek() == &Tok::Less {
            self.bump();
            fragments.push(self.fragment(default)?);
        }
        Ok(LooseOrdering::new(fragments))
    }

    fn time(&mut self) -> Result<SimTime, ParseError> {
        let value = match self.bump() {
            Tok::Int(n) => n,
            other => {
                return Err(ParseError::new(
                    self.tokens[self.pos - 1].1,
                    format!("expected a time value, found {}", other.describe()),
                ))
            }
        };
        match self.bump() {
            Tok::Ident(unit) => match unit.as_str() {
                "ps" => Ok(SimTime::from_ps(value)),
                "ns" => Ok(SimTime::from_ns(value)),
                "us" => Ok(SimTime::from_us(value)),
                "ms" => Ok(SimTime::from_ms(value)),
                "s" => Ok(SimTime::from_sec(value)),
                other => Err(ParseError::new(
                    self.tokens[self.pos - 1].1,
                    format!("unknown time unit `{other}` (use ps/ns/us/ms/s)"),
                )),
            },
            other => Err(ParseError::new(
                self.tokens[self.pos - 1].1,
                format!("expected a time unit, found {}", other.describe()),
            )),
        }
    }

    fn property(&mut self) -> Result<Property, ParseError> {
        let first = self.ordering(Direction::Input)?;
        match self.peek().clone() {
            Tok::LessLess => {
                self.bump();
                let trigger = self.name(Direction::Input)?;
                let repeated = match self.peek() {
                    Tok::Ident(w) if w == "repeated" => {
                        self.bump();
                        true
                    }
                    Tok::Ident(w) if w == "once" => {
                        self.bump();
                        false
                    }
                    _ => false,
                };
                self.expect(&Tok::Eof, "end of property")?;
                Ok(Antecedent::new(first, trigger, repeated).into())
            }
            Tok::Implies => {
                self.bump();
                let response = self.ordering(Direction::Output)?;
                match self.bump() {
                    Tok::Ident(w) if w == "within" => {}
                    other => {
                        return Err(ParseError::new(
                            self.tokens[self.pos - 1].1,
                            format!("expected `within`, found {}", other.describe()),
                        ))
                    }
                }
                let bound = self.time()?;
                self.expect(&Tok::Eof, "end of property")?;
                Ok(TimedImplication::new(first, response, bound).into())
            }
            other => Err(ParseError::new(
                self.span(),
                format!(
                    "expected `<<` or `=>` after the ordering, found {}",
                    other.describe()
                ),
            )),
        }
    }
}

fn is_keyword(word: &str) -> bool {
    matches!(word, "all" | "any" | "within" | "repeated" | "once")
}

/// Parse a property, interning its names into `voc`.
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte span on malformed input. The result
/// is *syntactically* valid; run [`crate::wf::check`] (or build a monitor
/// through [`crate::monitor::build_monitor`], which validates) for the
/// semantic side conditions.
///
/// # Example
///
/// ```
/// use lomon_core::parse::parse_property;
/// use lomon_trace::Vocabulary;
/// let mut voc = Vocabulary::new();
/// let prop = parse_property(
///     "start => read_img[100,60000] < set_irq within 60000 ns",
///     &mut voc,
/// )?;
/// assert_eq!(prop.alpha().len(), 3);
/// # Ok::<(), lomon_core::parse::ParseError>(())
/// ```
pub fn parse_property(text: &str, voc: &mut Vocabulary) -> Result<Property, ParseError> {
    let tokens = Lexer::tokenize(text)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        voc,
    };
    parser.property()
}

/// Parse a bare loose-ordering (used by tests and the stimuli generator's
/// CLI); names default to inputs.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing junk.
pub fn parse_ordering(text: &str, voc: &mut Vocabulary) -> Result<LooseOrdering, ParseError> {
    let tokens = Lexer::tokenize(text)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        voc,
    };
    let ordering = parser.ordering(Direction::Input)?;
    parser.expect(&Tok::Eof, "end of ordering")?;
    Ok(ordering)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wf;

    #[test]
    fn parses_paper_example_2() {
        let mut voc = Vocabulary::new();
        let prop = parse_property(
            "all{set_imgAddr, set_glAddr, set_glSize} << start once",
            &mut voc,
        )
        .expect("parses");
        let Property::Antecedent(a) = &prop else {
            panic!("expected antecedent")
        };
        assert!(!a.repeated);
        assert_eq!(a.antecedent.fragments.len(), 1);
        assert_eq!(a.antecedent.fragments[0].op, FragmentOp::All);
        assert_eq!(a.antecedent.fragments[0].ranges.len(), 3);
        assert!(wf::check(&prop, &voc).is_empty());
        // Round-trip through display.
        assert_eq!(
            prop.display(&voc),
            "all{set_imgAddr, set_glAddr, set_glSize} << start once"
        );
    }

    #[test]
    fn parses_paper_example_3() {
        let mut voc = Vocabulary::new();
        let prop = parse_property(
            "start => read_img[100,60000] < set_irq within 60000 ns",
            &mut voc,
        )
        .expect("parses");
        let Property::Timed(t) = &prop else {
            panic!("expected timed implication")
        };
        assert_eq!(t.bound, SimTime::from_us(60));
        assert_eq!(t.premise.fragments.len(), 1);
        assert_eq!(t.response.fragments.len(), 2);
        assert_eq!(t.response.fragments[0].ranges[0].min, 100);
        assert_eq!(t.response.fragments[0].ranges[0].max, 60_000);
        // Q names default to outputs → well-formed.
        assert!(wf::check(&prop, &voc).is_empty());
    }

    #[test]
    fn parses_fig4_property() {
        let mut voc = Vocabulary::new();
        let prop = parse_property("all{n1, n2} < any{n3[2,8], n4} < n5 << i once", &mut voc)
            .expect("parses");
        let Property::Antecedent(a) = &prop else {
            panic!("expected antecedent")
        };
        assert_eq!(a.antecedent.fragments.len(), 3);
        assert_eq!(a.antecedent.fragments[1].op, FragmentOp::Any);
        assert!(wf::check(&prop, &voc).is_empty());
    }

    #[test]
    fn repeated_flag_and_default() {
        let mut voc = Vocabulary::new();
        let p = parse_property("a << i repeated", &mut voc).expect("parses");
        let Property::Antecedent(a) = p else { panic!() };
        assert!(a.repeated);
        let p = parse_property("a << i", &mut voc).expect("parses");
        let Property::Antecedent(a) = p else { panic!() };
        assert!(!a.repeated);
    }

    #[test]
    fn direction_defaults_and_overrides() {
        let mut voc = Vocabulary::new();
        parse_property("out:ready < go => done within 5 ns", &mut voc).expect("parses");
        assert_eq!(
            voc.direction(voc.lookup("ready").unwrap()),
            Direction::Output
        );
        assert_eq!(voc.direction(voc.lookup("go").unwrap()), Direction::Input);
        assert_eq!(
            voc.direction(voc.lookup("done").unwrap()),
            Direction::Output
        );

        let mut voc = Vocabulary::new();
        parse_property("a => in:ack < reply within 1 us", &mut voc).expect("parses");
        // Explicit in: override inside Q (will fail wf, but parsing honors it).
        assert_eq!(voc.direction(voc.lookup("ack").unwrap()), Direction::Input);
        assert_eq!(
            voc.direction(voc.lookup("reply").unwrap()),
            Direction::Output
        );
    }

    #[test]
    fn time_units() {
        let mut voc = Vocabulary::new();
        for (text, expect) in [
            ("a => b within 500 ps", SimTime::from_ps(500)),
            ("a => b within 100ns", SimTime::from_ns(100)),
            ("a => b within 25 us", SimTime::from_us(25)),
            ("a => b within 3 ms", SimTime::from_ms(3)),
            ("a => b within 1 s", SimTime::from_sec(1)),
        ] {
            let Property::Timed(t) = parse_property(text, &mut voc).expect(text) else {
                panic!()
            };
            assert_eq!(t.bound, expect, "{text}");
        }
    }

    #[test]
    fn error_missing_operator() {
        let mut voc = Vocabulary::new();
        let err = parse_property("a b", &mut voc).unwrap_err();
        assert!(
            err.message.contains("expected `<<` or `=>`"),
            "{}",
            err.message
        );
    }

    #[test]
    fn error_bad_range() {
        let mut voc = Vocabulary::new();
        let err = parse_property("a[1 2] << i", &mut voc).unwrap_err();
        assert!(err.message.contains("`,`"), "{}", err.message);
        let err = parse_property("a[1,] << i", &mut voc).unwrap_err();
        assert!(err.message.contains("range maximum"), "{}", err.message);
        let err = parse_property("a[99999999999,1] << i", &mut voc).unwrap_err();
        assert!(err.message.contains("too large"), "{}", err.message);
    }

    #[test]
    fn error_keyword_as_name() {
        let mut voc = Vocabulary::new();
        let err = parse_property("within << i", &mut voc).unwrap_err();
        assert!(err.message.contains("keyword"), "{}", err.message);
    }

    #[test]
    fn error_missing_within() {
        let mut voc = Vocabulary::new();
        let err = parse_property("a => b", &mut voc).unwrap_err();
        assert!(err.message.contains("within"), "{}", err.message);
    }

    #[test]
    fn error_bad_unit() {
        let mut voc = Vocabulary::new();
        let err = parse_property("a => b within 10 lightyears", &mut voc).unwrap_err();
        assert!(err.message.contains("unknown time unit"), "{}", err.message);
    }

    #[test]
    fn error_trailing_tokens() {
        let mut voc = Vocabulary::new();
        let err = parse_property("a << i once extra", &mut voc).unwrap_err();
        assert!(err.message.contains("end of property"), "{}", err.message);
    }

    #[test]
    fn error_unexpected_character() {
        let mut voc = Vocabulary::new();
        let err = parse_property("a § b", &mut voc).unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn caret_diagnostics_point_at_problem() {
        let mut voc = Vocabulary::new();
        let src = "all{a, b} << ";
        let err = parse_property(src, &mut voc).unwrap_err();
        let pretty = err.display_with_source(src);
        assert!(pretty.contains("line 1"), "{pretty}");
        assert!(pretty.contains('^'), "{pretty}");
    }

    #[test]
    fn parse_ordering_rejects_property_syntax() {
        let mut voc = Vocabulary::new();
        assert!(parse_ordering("a < b", &mut voc).is_ok());
        assert!(parse_ordering("a << i", &mut voc).is_err());
    }

    #[test]
    fn display_roundtrip_reparses() {
        let mut voc = Vocabulary::new();
        let texts = [
            "all{a, b} < any{c[2,8], d} < e << i repeated",
            "start => read_img[100,60000] < set_irq within 60000 ns",
            "a[2,3] << i once",
        ];
        for text in texts {
            let p1 = parse_property(text, &mut voc).expect(text);
            let shown = p1.display(&voc);
            let p2 = parse_property(&shown, &mut voc).expect(&shown);
            assert_eq!(p1, p2, "{text} → {shown}");
        }
    }
}
