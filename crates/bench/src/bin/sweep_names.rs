//! Sweep S2: monitor cost vs fragment size `k` for `all{n1..nk} << i once`
//! — the curve behind Fig. 6 rows 3/4. Both strategies grow with `k`, but
//! Drct stays roughly an order of magnitude below ViaPSL.
//!
//! Run with `cargo run -p lomon-bench --bin sweep_names --release`.

use lomon_bench::scale;
use lomon_core::complexity::{drct_cost, measure_drct};
use lomon_gen::{generate, GeneratorConfig};
use lomon_psl::complexity::viapsl_cost;
use lomon_trace::Vocabulary;

fn main() {
    println!("S2 — cost vs fragment size, property all{{n1..nk}} << i once");
    println!(
        "{:>4} {:>12} {:>12} {:>14} {:>14} {:>8}",
        "k", "Drct ops", "Drct bits", "ViaPSL ops", "ViaPSL bits", "ratio"
    );
    for k in 1..=16usize {
        let mut voc = Vocabulary::new();
        let property = lomon_bench::names_sweep_property(k, &mut voc);
        let workload = generate(&property, &GeneratorConfig::new(11)).trace;
        let measured = measure_drct(&property, &workload, &voc);
        let bits = drct_cost(&property).state_bits;
        let psl = viapsl_cost(&property).expect("translatable");
        println!(
            "{:>4} {:>12} {:>12} {:>14} {:>14} {:>8.1}",
            k,
            scale(measured.ops_per_event),
            bits,
            scale(psl.ops_per_event as f64),
            scale(psl.state_bits as f64),
            psl.ops_per_event as f64 / measured.ops_per_event.max(1e-9),
        );
    }
    println!();
    println!("Expected shape: both linear-ish in k (plus the quadratic Asynch");
    println!("pair term on the ViaPSL side); Drct consistently cheaper.");
}
