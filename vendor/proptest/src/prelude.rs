//! Everything a property test needs in one glob import.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
pub use crate::{
    prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, TestCaseResult,
};

/// Namespace mirror of the real crate's `prelude::prop` (for
/// `prop::collection::vec` and friends).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}
