//! Smoke tests for the `lomon` binary: every subcommand against the
//! checked-in fixture, plus malformed invocations, which must exit non-zero
//! with a usage message rather than panic.

mod common;

use std::path::Path;

use common::{lomon, stderr, stdout, FIXTURE, PROPERTY};

#[test]
fn fixture_is_checked_in() {
    assert!(
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join(FIXTURE)
            .is_file(),
        "missing fixture {FIXTURE}"
    );
}

#[test]
fn check_accepts_fixture() {
    let output = lomon(&["check", FIXTURE, PROPERTY]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("12 events"), "stdout: {text}");
    assert!(text.contains("presumably satisfied"), "stdout: {text}");
}

#[test]
fn check_reports_violation_nonzero() {
    // The fixture interleaves all three config writes before each start, so
    // demanding `start` strictly first must fail.
    let output = lomon(&["check", FIXTURE, "start << set_imgAddr once"]);
    assert_eq!(output.status.code(), Some(1), "stderr: {}", stderr(&output));
    assert!(stdout(&output).contains("violated"));
}

#[test]
fn gen_roundtrips_through_check() {
    let generated = lomon(&["gen", PROPERTY, "7", "3"]);
    assert!(generated.status.success(), "stderr: {}", stderr(&generated));
    let expected = std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join(FIXTURE))
        .expect("read fixture");
    // Generation is deterministic per seed: the fixture IS `gen <prop> 7 3`.
    assert_eq!(stdout(&generated), expected);
}

#[test]
fn vcd_renders_fixture() {
    let output = lomon(&["vcd", FIXTURE]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("$timescale"), "stdout: {text}");
    assert!(text.contains("set_imgAddr"), "stdout: {text}");
}

#[test]
fn demo_runs_clean() {
    let output = lomon(&["demo"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(stdout(&output).contains("btn_press"));
    assert!(stderr(&output).contains("online verdict"));
}

#[test]
fn no_arguments_prints_usage() {
    let output = lomon(&[]);
    assert_eq!(output.status.code(), Some(2));
    assert!(stderr(&output).contains("usage:"));
}

#[test]
fn unknown_command_prints_usage() {
    let output = lomon(&["frobnicate"]);
    assert_eq!(output.status.code(), Some(2));
    let text = stderr(&output);
    assert!(
        text.contains("unknown command `frobnicate`"),
        "stderr: {text}"
    );
    assert!(text.contains("usage:"), "stderr: {text}");
}

#[test]
fn missing_operands_print_usage() {
    for args in [
        &["check", FIXTURE] as &[&str],
        &["vcd"],
        &["vcd", FIXTURE, "extra"],
        &["gen"],
        &["gen", PROPERTY, "1", "2", "extra"],
        &["demo", "extra"],
    ] {
        let output = lomon(args);
        assert_eq!(output.status.code(), Some(2), "args: {args:?}");
        assert!(stderr(&output).contains("usage:"), "args: {args:?}");
    }
}

#[test]
fn malformed_seed_is_rejected() {
    let output = lomon(&["gen", PROPERTY, "notanumber"]);
    assert_eq!(output.status.code(), Some(2));
    assert!(stderr(&output).contains("not an unsigned integer"));

    let output = lomon(&["gen", PROPERTY, "1", "-3"]);
    assert_eq!(output.status.code(), Some(2));
    assert!(stderr(&output).contains("episode count"));
}

#[test]
fn malformed_property_is_rejected() {
    let output = lomon(&["check", FIXTURE, "all{unclosed << start"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(stderr(&output).contains("error in property"));
}

#[test]
fn missing_trace_file_is_rejected() {
    let output = lomon(&["check", "no/such/file.trace", PROPERTY]);
    assert_eq!(output.status.code(), Some(1));
    assert!(stderr(&output).contains("cannot read"));
}
