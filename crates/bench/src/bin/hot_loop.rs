//! Hot-loop cost of one monitored event: compiled flat-table backend vs
//! the tree-walking interpreter — the perf story of the compiled backend.
//!
//! Three workloads, all through an indexed-dispatch engine [`Session`]:
//!
//! * `single` — one antecedent property, every event steps one monitor;
//! * `disjoint-50` — 50 properties over pairwise-disjoint alphabets, the
//!   index routes every event to exactly one monitor (per-step cost with
//!   dispatch overhead amortized over one step);
//! * `overlap-50` — 50 properties over one *shared* alphabet, every event
//!   steps all 50 monitors (pure per-step cost, dominant in practice when
//!   rulebooks watch the same interface).
//!
//! Run `cargo run -p lomon-bench --bin hot_loop --release` to print the
//! table and (re)write the machine-readable `BENCH_hot_loop.json` at the
//! current directory (the repo tracks it at the root as the perf
//! trajectory anchor).
//!
//! `--check` is the CI gate: both backends must agree on every verdict
//! *and* every per-monitor ops counter, and the compiled backend must be
//! at least [`GATE_SPEEDUP`]× faster (ns/event) than the interpreter on
//! the two 50-property workloads. With `--baseline <path>` the fresh
//! speedups are additionally compared against the committed
//! `BENCH_hot_loop.json`: a drop below [`BASELINE_TOLERANCE`] of the
//! recorded speedup fails the run — the floor that ratchets up as future
//! optimization PRs commit better baselines (at today's committed
//! speedups the static [`GATE_SPEEDUP`] floor is the binding one). The
//! `single` workload is reported but not gated — with one monitor per
//! event the session's fixed dispatch overhead dilutes the ratio and
//! makes it noisy.

use std::process::ExitCode;
use std::time::Instant;

use lomon_engine::{Backend, DispatchMode, Engine, Session};
use lomon_trace::{SimTime, TimedEvent, Vocabulary};

/// The CI gate: compiled must beat interpreted by at least this factor on
/// the gated (50-property) workloads.
const GATE_SPEEDUP: f64 = 3.0;

/// A fresh speedup below `tolerance × committed` fails `--baseline`.
const BASELINE_TOLERANCE: f64 = 0.8;

/// Timed repetitions per (workload, backend); the minimum is reported.
/// Interleaved between the backends (see `run_pair`) so load drift on a
/// shared machine cannot skew the ratio.
const REPS: usize = 9;

struct Workload {
    name: &'static str,
    /// Whether the `--check` speedup gate applies.
    gated: bool,
    engine: Engine,
    events: Vec<TimedEvent>,
}

/// Episodes of one property arrive in short bursts before the stream moves
/// on — the granularity a TLM platform produces (one transaction's writes
/// complete before the next component's begin).
const EPISODE_BURST: usize = 4;

/// `count` antecedent properties over pairwise-disjoint alphabets, plus the
/// event stream that completes `rounds` episodes of each, interleaved at
/// [`EPISODE_BURST`] granularity.
fn disjoint(count: usize, rounds: usize) -> (Engine, Vec<TimedEvent>) {
    let mut voc = Vocabulary::new();
    let rulebook: Vec<String> = (0..count)
        .map(|k| format!("all{{p{k}_a, p{k}_b, p{k}_c}} << p{k}_start repeated"))
        .collect();
    let engine = Engine::compile(&rulebook, &mut voc).expect("bench rulebook compiles");
    let mut events = Vec::with_capacity(count * rounds * 4);
    let mut ns = 0u64;
    for _ in 0..rounds.div_ceil(EPISODE_BURST) {
        for k in 0..count {
            for _ in 0..EPISODE_BURST {
                for suffix in ["a", "b", "c", "start"] {
                    ns += 10;
                    let name = voc
                        .lookup(&format!("p{k}_{suffix}"))
                        .expect("compiled name");
                    events.push(TimedEvent::new(name, SimTime::from_ns(ns)));
                }
            }
        }
    }
    (engine, events)
}

/// `count` antecedent properties over one *shared* alphabet (rotated range
/// order, alternating `all`/`any`), and the stream that satisfies them all
/// — every event steps every monitor.
fn overlapping(count: usize, rounds: usize) -> (Engine, Vec<TimedEvent>) {
    let mut voc = Vocabulary::new();
    let names = ["s_a", "s_b", "s_c"];
    let rulebook: Vec<String> = (0..count)
        .map(|k| {
            let op = if k % 2 == 0 { "all" } else { "any" };
            let rotated: Vec<&str> = (0..3).map(|j| names[(k + j) % 3]).collect();
            format!("{op}{{{}}} << s_start repeated", rotated.join(", "))
        })
        .collect();
    let engine = Engine::compile(&rulebook, &mut voc).expect("bench rulebook compiles");
    let mut events = Vec::with_capacity(rounds * 4);
    let mut ns = 0u64;
    for _ in 0..rounds {
        for name in ["s_a", "s_b", "s_c", "s_start"] {
            ns += 10;
            let name = voc.lookup(name).expect("compiled name");
            events.push(TimedEvent::new(name, SimTime::from_ns(ns)));
        }
    }
    (engine, events)
}

struct Measurement {
    nanos_per_event: f64,
    verdicts: Vec<(lomon_core::Verdict, u64)>,
}

/// One timed replay of `events` through `session` (reset first).
fn replay(session: &mut Session<'_>, events: &[TimedEvent], end: SimTime) -> u128 {
    session.reset();
    let started = Instant::now();
    session.ingest_batch(events);
    session.close(end);
    started.elapsed().as_nanos()
}

/// Measure both backends over the same workload, **interleaved** rep by rep
/// so machine-load drift hits both equally instead of skewing the ratio;
/// the minimum of each is reported.
fn run_pair(engine: &Engine, events: &[TimedEvent]) -> (Measurement, Measurement) {
    let end = events.last().map(|e| e.time).unwrap_or(SimTime::ZERO);
    let mut interp: Session<'_> =
        engine.session_with_backend(DispatchMode::Indexed, Backend::Interp);
    let mut compiled: Session<'_> =
        engine.session_with_backend(DispatchMode::Indexed, Backend::Compiled);
    let (mut best_i, mut best_c) = (u128::MAX, u128::MAX);
    for _ in 0..REPS {
        best_i = best_i.min(replay(&mut interp, events, end));
        best_c = best_c.min(replay(&mut compiled, events, end));
    }
    let digest = |s: &Session<'_>| -> Vec<(lomon_core::Verdict, u64)> {
        (0..engine.len())
            .map(|id| (s.verdict(id), s.ops(id)))
            .collect()
    };
    (
        Measurement {
            nanos_per_event: best_i as f64 / events.len() as f64,
            verdicts: digest(&interp),
        },
        Measurement {
            nanos_per_event: best_c as f64 / events.len() as f64,
            verdicts: digest(&compiled),
        },
    )
}

struct Row {
    name: &'static str,
    gated: bool,
    events: usize,
    interp_ns: f64,
    compiled_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.interp_ns / self.compiled_ns.max(f64::MIN_POSITIVE)
    }

    fn compiled_events_per_sec(&self) -> f64 {
        1e9 / self.compiled_ns.max(f64::MIN_POSITIVE)
    }
}

fn render_json(rows: &[Row]) -> String {
    let mut out = String::from("{\n  \"bench\": \"hot_loop\",\n  \"unit\": \"ns/event\",\n");
    out.push_str("  \"workloads\": [\n");
    for (k, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"gated\": {}, \"events\": {}, \
             \"interp_ns_per_event\": {:.2}, \"compiled_ns_per_event\": {:.2}, \
             \"speedup\": {:.2}, \"compiled_events_per_sec\": {:.0}}}{}\n",
            row.name,
            row.gated,
            row.events,
            row.interp_ns,
            row.compiled_ns,
            row.speedup(),
            row.compiled_events_per_sec(),
            if k + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extract `(name, speedup)` pairs from a committed `BENCH_hot_loop.json`.
/// The file is written one workload object per line (see [`render_json`]),
/// so a line scanner is all the parsing needed.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let field = |line: &str, key: &str| -> Option<String> {
        let at = line.find(key)? + key.len();
        let rest = line[at..].trim_start_matches([':', ' ', '"']);
        let end = rest.find(['"', ',', '}']).unwrap_or(rest.len());
        Some(rest[..end].to_owned())
    };
    text.lines()
        .filter_map(|line| {
            let name = field(line, "\"name\"")?;
            let speedup = field(line, "\"speedup\"")?.parse().ok()?;
            Some((name, speedup))
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_mode = args.iter().any(|a| a == "--check");
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|at| args.get(at + 1).cloned());
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|at| args.get(at + 1).cloned());

    // The check matrix is smaller so the CI gate stays fast; the ratios it
    // gates are per-event and stable across the sizes.
    let (single_rounds, multi_rounds) = if check_mode {
        (20_000, 2_000)
    } else {
        (100_000, 10_000)
    };

    let workloads: Vec<Workload> = vec![
        {
            let (engine, events) = disjoint(1, single_rounds);
            Workload {
                name: "single",
                gated: false,
                engine,
                events,
            }
        },
        {
            let (engine, events) = disjoint(50, multi_rounds);
            Workload {
                name: "disjoint-50",
                gated: true,
                engine,
                events,
            }
        },
        {
            // Same event budget shape as disjoint-50, but every event hits
            // all 50 monitors instead of one.
            let (engine, events) = overlapping(50, multi_rounds * 5);
            Workload {
                name: "overlap-50",
                gated: true,
                engine,
                events,
            }
        },
    ];

    println!("hot loop — compiled flat tables vs tree-walking interpreter (best of {REPS})");
    println!(
        "{:>12} {:>9} {:>12} {:>14} {:>9} {:>16}",
        "workload", "events", "interp ns/ev", "compiled ns/ev", "speedup", "compiled ev/s"
    );

    let mut rows = Vec::new();
    let mut identical = true;
    for w in &workloads {
        let (interp, compiled) = run_pair(&w.engine, &w.events);
        // Differential gate: same verdict and same ops counter for every
        // property, or the backends have diverged.
        for (id, (i, c)) in interp.verdicts.iter().zip(&compiled.verdicts).enumerate() {
            if i != c {
                eprintln!(
                    "MISMATCH: workload {} property {id}: interp {:?} vs compiled {:?}",
                    w.name, i, c
                );
                identical = false;
            }
        }
        let row = Row {
            name: w.name,
            gated: w.gated,
            events: w.events.len(),
            interp_ns: interp.nanos_per_event,
            compiled_ns: compiled.nanos_per_event,
        };
        println!(
            "{:>12} {:>9} {:>12.1} {:>14.1} {:>8.1}x {:>16.0}",
            row.name,
            row.events,
            row.interp_ns,
            row.compiled_ns,
            row.speedup(),
            row.compiled_events_per_sec(),
        );
        rows.push(row);
    }
    println!();

    let mut ok = identical;
    if !identical {
        println!("FAIL: backends disagree on verdicts or ops counters");
    }

    if check_mode {
        for row in rows.iter().filter(|r| r.gated) {
            if row.speedup() < GATE_SPEEDUP {
                println!(
                    "FAIL: {} speedup {:.2}x below the {GATE_SPEEDUP}x gate",
                    row.name,
                    row.speedup()
                );
                ok = false;
            }
        }
        if let Some(path) = &baseline_path {
            match std::fs::read_to_string(path) {
                Ok(text) => {
                    let committed = parse_baseline(&text);
                    for row in rows.iter().filter(|r| r.gated) {
                        let Some((_, base)) = committed.iter().find(|(n, _)| n == row.name) else {
                            println!("FAIL: baseline {path} has no workload `{}`", row.name);
                            ok = false;
                            continue;
                        };
                        let floor = base * BASELINE_TOLERANCE;
                        if row.speedup() < floor {
                            println!(
                                "FAIL: {} speedup {:.2}x regressed below {:.2}x \
                                 ({BASELINE_TOLERANCE} x committed {:.2}x)",
                                row.name,
                                row.speedup(),
                                floor,
                                base
                            );
                            ok = false;
                        }
                    }
                }
                Err(e) => {
                    println!("FAIL: cannot read baseline {path}: {e}");
                    ok = false;
                }
            }
        }
        if ok {
            println!(
                "OK: backends verdict- and ops-identical; compiled >= {GATE_SPEEDUP}x on the \
                 50-property workloads"
            );
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    } else {
        let path = out_path.unwrap_or_else(|| "BENCH_hot_loop.json".to_owned());
        match std::fs::write(&path, render_json(&rows)) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    }
}
