//! # lomon-gen — stimuli generation from loose-ordering patterns
//!
//! The paper closes with: "Future work will be devoted to a translation of
//! the patterns into some code for generating random sequences. This will
//! provide a full integration of loose-orderings in an ABV framework."
//! This crate implements that future work:
//!
//! * [`generate()`] — seeded random members of a pattern's language, with
//!   budget-respecting timestamps for timed implications (Fig. 1's stimuli
//!   generator);
//! * [`mutate()`] — single-edit near-miss mutants labelled with the oracle's
//!   ground-truth verdict (negative tests for the monitors);
//! * [`coverage`] — specification coverage (range boundaries, `∨`-subsets,
//!   fragment orders) and coverage-directed generation (Fig. 1's coverage
//!   improver).

pub mod coverage;
pub mod generate;
pub mod mutate;

pub use coverage::{generate_until_covered, Coverage};
pub use generate::{generate, GeneratedTrace, GeneratorConfig};
pub use mutate::{mutate, Mutant, MutationKind};
