//! # lomon-psl — the ViaPSL baseline strategy
//!
//! The paper compares its direct monitors against monitors obtained by
//! first translating the loose-ordering patterns into **PSL** (Section 5)
//! and then synthesizing modular monitors from the formulas in the style of
//! Pierre & Ferro \[14\]. This crate rebuilds that whole pipeline:
//!
//! * [`ast`] — a PSL/LTL subset over the run-length token alphabet, with
//!   compact symbolic range atoms and exact expanded-size accounting;
//! * [`mod@eval`] — impartial three-valued finite-trace semantics (the
//!   specification oracle, playing SPOT's validation role);
//! * [`mod@translate`] — the Section 5 conjunct families (*Asynch, MaxOne,
//!   Range, Order, Precede, BeforeI/AfterI* plus the ill-length-token
//!   invariants), producing both formulas and one observer per conjunct;
//! * [`monitor`] — the modular ViaPSL monitor (per-event cost proportional
//!   to formula size, as in \[14\]) behind the same `Monitor` trait as the
//!   direct monitors;
//! * [`complexity`] — closed-form conjunct/node counts and the paper's
//!   `Θ(∆ + Σ(vᵢ−uᵢ+1)² + Σ|α(Fⱼ)|·|α(Fⱼ₋₁)|)` model, computable even for
//!   `n[100,60000]` where materialization is impossible.
//!
//! The headline contrast of the paper's Fig. 6 — Drct monitors are
//! insensitive to range widths while ViaPSL monitors blow up quadratically —
//! falls out of [`complexity::viapsl_cost`] vs
//! [`lomon_core::complexity::drct_cost`].

pub mod ast;
pub mod complexity;
pub mod eval;
pub mod monitor;
pub mod translate;

pub use ast::{Psl, TokenTest};
pub use complexity::{viapsl_cost, ViaPslCost};
pub use eval::{eval, Truth};
pub use monitor::PslMonitor;
pub use translate::{translate, Observer, TranslateError, TranslateOptions, Translation};
