//! Regenerate the paper's Fig. 6: Drct vs ViaPSL time/space for the six
//! configurations, paper numbers next to this repository's model and
//! measurements.
//!
//! Run with `cargo run -p lomon-bench --bin fig6 --release`.

use lomon_bench::{evaluate_row, fig6_rows, scale};

fn main() {
    println!("Fig. 6 — Comparison of Drct and ViaPSL strategies");
    println!(
        "(paper numbers | this repository; ViaPSL entries exclude the lexer Δ, shown separately)"
    );
    println!();
    println!(
        "{:<34} {:>22} {:>22} {:>26} {:>26}",
        "Configuration",
        "Drct time (ops)",
        "Drct space (bits)",
        "ViaPSL time (ops)",
        "ViaPSL space (bits)"
    );
    println!("{}", "-".repeat(135));
    for row in fig6_rows() {
        let result = evaluate_row(&row, 42);
        let viapsl_ops = match result.viapsl_ops_measured {
            Some(measured) => format!(
                "{} | {} (meas {})",
                scale(row.paper.viapsl_ops),
                scale(result.viapsl_ops_model as f64),
                scale(measured),
            ),
            None => format!(
                "{} | {} (model)",
                scale(row.paper.viapsl_ops),
                scale(result.viapsl_ops_model as f64),
            ),
        };
        let viapsl_bits = match result.viapsl_bits_measured {
            Some(measured) => format!(
                "{} | {} (meas {})",
                scale(row.paper.viapsl_bits),
                scale(result.viapsl_bits_model as f64),
                scale(measured as f64),
            ),
            None => format!(
                "{} | {} (model)",
                scale(row.paper.viapsl_bits),
                scale(result.viapsl_bits_model as f64),
            ),
        };
        println!(
            "{:<34} {:>22} {:>22} {:>26} {:>26}",
            row.label,
            format!("{} | {}", scale(row.paper.drct_ops), scale(result.drct_ops)),
            format!(
                "{} | {}",
                scale(row.paper.drct_bits),
                scale(result.drct_bits as f64)
            ),
            viapsl_ops,
            viapsl_bits,
        );
        if result.delta.0 > 0 {
            println!(
                "{:<34} {:>22} {:>22} {:>26} {:>26}",
                "",
                "",
                "",
                format!("Δ = {} ops/event", result.delta.0),
                format!("Δ = {} bits", result.delta.1),
            );
        }
    }
    println!();
    println!("Shape checks (the paper's claims):");
    let rows = fig6_rows();
    let r = |k: usize| evaluate_row(&rows[k], 42);
    let (r1, r2, r3, r4, r5, r6) = (r(0), r(1), r(2), r(3), r(4), r(5));
    println!(
        "  rows 1→2  Drct ops ratio {:.2} (paper 1.00) — range widths are free for Drct",
        r2.drct_ops / r1.drct_ops
    );
    println!(
        "  rows 1→2  ViaPSL ops ratio {:.2e} (paper {:.2e}) — quadratic range blow-up",
        r2.viapsl_ops_model as f64 / r1.viapsl_ops_model as f64,
        4e11 / 238.0
    );
    println!(
        "  rows 3→4  Drct ops ratio {:.2} (paper {:.2}) — linear in fragment size",
        r4.drct_ops / r3.drct_ops,
        280.0 / 230.0
    );
    println!(
        "  rows 3→4  ViaPSL ops ratio {:.2} (paper {:.2})",
        r4.viapsl_ops_model as f64 / r3.viapsl_ops_model as f64,
        2142.0 / 1785.0
    );
    println!(
        "  rows 5→6  Drct ops ratio {:.2} (paper 1.00)",
        r6.drct_ops / r5.drct_ops
    );
    println!(
        "  per row   Drct < ViaPSL: {}",
        [&r1, &r2, &r3, &r4, &r5, &r6]
            .iter()
            .all(|r| (r.drct_ops as u64) < r.viapsl_ops_model)
    );
}
