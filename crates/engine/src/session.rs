//! Sessions: per-stream monitor state over a shared compiled [`Engine`].

use std::sync::Arc;

use lomon_core::compiled::CompiledMonitor;
use lomon_core::monitor::PropertyMonitor;
use lomon_core::verdict::{Monitor, Verdict, Violation};
use lomon_trace::{SimTime, TimedEvent};

use crate::compile::Engine;
use crate::report::{DispatchStats, EngineReport, PropertyReport};
/// Backend-polymorphic routed stepping: the indexed dispatcher hands each
/// subscriber the precomputed action-table row of the event's name. The
/// compiled backend consumes it and skips its own projection lookup; the
/// interpreter has no cheaper entry point and re-projects internally.
trait RoutedMonitor: Monitor {
    fn observe_routed(&mut self, event: TimedEvent, base: u32) -> Verdict;
}

impl RoutedMonitor for PropertyMonitor {
    #[inline]
    fn observe_routed(&mut self, event: TimedEvent, _base: u32) -> Verdict {
        self.observe(event)
    }
}

impl RoutedMonitor for CompiledMonitor {
    #[inline]
    fn observe_routed(&mut self, event: TimedEvent, base: u32) -> Verdict {
        CompiledMonitor::observe_routed(self, event, base)
    }
}

/// How a session routes events to monitors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Inverted-index dispatch: an event only steps subscribed, still-live
    /// monitors (plus a deadline sweep for timed monitors). The default.
    Indexed,
    /// Naive baseline: every live monitor is stepped on every event. Kept
    /// for the benchmarks and as a differential-testing oracle — both modes
    /// produce identical verdicts.
    Broadcast,
}

/// Which execution backend steps a session's monitors.
///
/// Both backends are verdict-, diagnostic- and ops-identical (enforced by
/// the oracle proptests and the `hot_loop --check` CI gate); they differ
/// only in *how* a monitor step executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Flat-table monitors ([`lomon_core::compiled`]): one action-table
    /// index plus integer state updates per event, no allocation. The
    /// default for `check`/`watch`/`smc`.
    Compiled,
    /// Tree-walking interpreter monitors ([`lomon_core::monitor`]): enum
    /// dispatch and per-recognizer bitset classification. Kept as the
    /// differential oracle and for diagnosis.
    Interp,
}

/// The per-stream monitor instances, one dense arena per backend. Keeping
/// the arena monomorphic (instead of an enum per monitor) lets the dispatch
/// loops specialize per backend: monitor steps are direct, inlinable calls
/// and the arena has no per-element tag.
#[derive(Debug, Clone)]
enum MonitorArena {
    Interp(Vec<PropertyMonitor>),
    Compiled(Vec<CompiledMonitor>),
}

impl MonitorArena {
    fn len(&self) -> usize {
        match self {
            MonitorArena::Interp(ms) => ms.len(),
            MonitorArena::Compiled(ms) => ms.len(),
        }
    }

    fn monitor(&self, id: usize) -> &dyn Monitor {
        match self {
            MonitorArena::Interp(ms) => &ms[id],
            MonitorArena::Compiled(ms) => &ms[id],
        }
    }
}

/// One monitored event stream: per-property monitor instances (cloned
/// prototypes or compiled-state arenas) plus the per-stream dispatch state.
///
/// Verdict-wise, a session behaves exactly as if each property's monitor had
/// individually observed the whole stream and then
/// [`lomon_core::verdict::Monitor::finish`]ed — see the crate docs for why
/// indexed dispatch preserves this.
///
/// Monitors whose verdict goes final are *retired*: they stop receiving
/// events, and their ids are queued for [`Session::take_newly_final`] so a
/// streaming caller can report verdicts as they happen.
#[derive(Debug, Clone)]
pub struct Session<'e> {
    arena: MonitorArena,
    core: Core<'e>,
}

/// Everything of a session except the monitors themselves — split out so
/// the dispatch methods can borrow the arena and the bookkeeping state
/// independently and stay generic over the backend's monitor type.
#[derive(Debug, Clone)]
struct Core<'e> {
    engine: &'e Engine,
    mode: DispatchMode,
    backend: Backend,
    active: Vec<bool>,
    active_count: usize,
    /// Per-property open hard deadline (timed properties only).
    deadlines: Vec<Option<SimTime>>,
    /// Cached minimum of `deadlines` over live timed monitors.
    next_deadline: Option<SimTime>,
    deadline_dirty: bool,
    newly_final: Vec<u32>,
    stats: DispatchStats,
    finished: bool,
}

impl<'e> Session<'e> {
    pub(crate) fn new(engine: &'e Engine, mode: DispatchMode, backend: Backend) -> Self {
        let arena = match backend {
            // Interp monitors deep-clone the prototype tree; compiled
            // monitors allocate only their state arena and share the
            // program tables.
            Backend::Interp => MonitorArena::Interp(
                engine
                    .properties
                    .iter()
                    .map(|p| p.prototype.clone())
                    .collect(),
            ),
            Backend::Compiled => MonitorArena::Compiled(
                engine
                    .properties
                    .iter()
                    .map(|p| CompiledMonitor::new(Arc::clone(&p.program)))
                    .collect(),
            ),
        };
        let n = arena.len();
        Session {
            arena,
            core: Core {
                engine,
                mode,
                backend,
                active: vec![true; n],
                active_count: n,
                deadlines: vec![None; n],
                next_deadline: None,
                deadline_dirty: false,
                newly_final: Vec::new(),
                stats: DispatchStats::default(),
                finished: false,
            },
        }
    }

    /// The engine this session was opened from.
    pub fn engine(&self) -> &'e Engine {
        self.core.engine
    }

    /// The dispatch mode this session runs with.
    pub fn mode(&self) -> DispatchMode {
        self.core.mode
    }

    /// The execution backend this session's monitors run on.
    pub fn backend(&self) -> Backend {
        self.core.backend
    }

    /// Feed one event to every monitor that can react to it.
    #[inline]
    pub fn ingest(&mut self, event: TimedEvent) {
        match &mut self.arena {
            MonitorArena::Interp(ms) => self.core.ingest_in(ms, event),
            MonitorArena::Compiled(ms) => self.core.ingest_in(ms, event),
        }
    }

    /// Feed a batch of events (the bulk path: one call per recorded trace
    /// chunk instead of one per event).
    pub fn ingest_batch(&mut self, events: &[TimedEvent]) {
        match (&mut self.arena, self.core.mode) {
            (MonitorArena::Interp(ms), DispatchMode::Indexed) => {
                self.core.ingest_batch_indexed(ms, events)
            }
            (MonitorArena::Compiled(ms), DispatchMode::Indexed) => {
                self.core.ingest_batch_indexed(ms, events)
            }
            (MonitorArena::Interp(ms), DispatchMode::Broadcast) => {
                self.core.ingest_batch_in(ms, events)
            }
            (MonitorArena::Compiled(ms), DispatchMode::Broadcast) => {
                self.core.ingest_batch_in(ms, events)
            }
        }
    }

    /// Notify the session that simulated time has advanced to `now` with no
    /// new event — lets timed monitors detect expired deadlines online.
    pub fn advance_time(&mut self, now: SimTime) {
        match &mut self.arena {
            MonitorArena::Interp(ms) => self.core.advance_time_in(ms, now),
            MonitorArena::Compiled(ms) => self.core.advance_time_in(ms, now),
        }
    }

    /// Declare end of observation and return the report. All still-live
    /// monitors get their final deadline check at `end_time`.
    pub fn finish(&mut self, end_time: SimTime) -> EngineReport {
        self.close(end_time);
        self.report()
    }

    /// Declare end of observation without materializing a report — the
    /// allocation-free variant of [`Session::finish`] for callers that poll
    /// verdicts with [`Session::verdict`] in a tight reuse loop (e.g. an
    /// SMC campaign running millions of episodes through one session).
    /// Idempotent, like `finish`.
    pub fn close(&mut self, end_time: SimTime) {
        match &mut self.arena {
            MonitorArena::Interp(ms) => self.core.close_in(ms, end_time),
            MonitorArena::Compiled(ms) => self.core.close_in(ms, end_time),
        }
    }

    /// Snapshot the current per-property verdicts and dispatch statistics
    /// without ending the stream.
    pub fn report(&self) -> EngineReport {
        let properties = (0..self.arena.len())
            .map(|id| {
                let m = self.arena.monitor(id);
                PropertyReport {
                    index: id,
                    // An `Arc` bump, not a copy of the property text —
                    // reports in a tight reuse loop must not allocate per
                    // property.
                    property: Arc::clone(&self.core.engine.properties[id].display),
                    verdict: m.verdict(),
                    violation: m.violation().cloned(),
                }
            })
            .collect();
        let mut stats = self.core.stats;
        stats.properties = self.arena.len() as u64;
        stats.retired = (self.arena.len() - self.core.active_count) as u64;
        EngineReport { properties, stats }
    }

    /// Rewind every monitor to its initial state for the next stream,
    /// keeping all allocations. Statistics restart from zero.
    pub fn reset(&mut self) {
        match &mut self.arena {
            MonitorArena::Interp(ms) => {
                for m in ms.iter_mut() {
                    m.reset();
                }
            }
            MonitorArena::Compiled(ms) => {
                for m in ms.iter_mut() {
                    m.reset();
                }
            }
        }
        let core = &mut self.core;
        for id in 0..self.arena.len() {
            core.active[id] = true;
            core.deadlines[id] = None;
        }
        core.active_count = self.arena.len();
        core.next_deadline = None;
        core.deadline_dirty = false;
        core.newly_final.clear();
        core.stats = DispatchStats::default();
        core.finished = false;
    }

    /// The ids of properties whose verdict went final since the last call,
    /// in finalization order. Streaming callers poll this after each
    /// [`Session::ingest`] to report verdicts as they happen.
    pub fn take_newly_final(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.core.newly_final)
    }

    /// Current verdict of property `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn verdict(&self, id: usize) -> Verdict {
        self.arena.monitor(id).verdict()
    }

    /// Violation report of property `id`, if it is violated.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn violation(&self, id: usize) -> Option<&Violation> {
        match &self.arena {
            MonitorArena::Interp(ms) => ms[id].violation(),
            MonitorArena::Compiled(ms) => ms[id].violation(),
        }
    }

    /// Abstract operations executed by property `id`'s monitor so far
    /// (the [`lomon_core::verdict::Monitor::ops`] instrumentation) — both
    /// backends count identically, which the oracle tests assert.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn ops(&self, id: usize) -> u64 {
        self.arena.monitor(id).ops()
    }

    /// Number of monitors still live (not retired).
    pub fn active_len(&self) -> usize {
        self.core.active_count
    }

    /// Whether every property has reached a final verdict — the stream can
    /// be abandoned early.
    pub fn is_settled(&self) -> bool {
        self.core.active_count == 0
    }

    /// Dispatch statistics so far.
    pub fn stats(&self) -> &DispatchStats {
        &self.core.stats
    }
}

impl<'e> Core<'e> {
    #[inline]
    fn ingest_in<M: RoutedMonitor>(&mut self, monitors: &mut [M], event: TimedEvent) {
        self.stats.events += 1;
        match self.mode {
            DispatchMode::Broadcast => {
                for id in 0..monitors.len() {
                    if self.active[id] {
                        self.step_observe_plain(monitors, id, event);
                    }
                }
            }
            DispatchMode::Indexed => {
                // One equal-length check up front lets the indexed loads
                // below share a single bound.
                assert!(
                    self.active.len() == monitors.len()
                        && self.engine.timed_flags.len() == monitors.len()
                        && self.deadlines.len() == monitors.len()
                );
                let (ids, bases) = self.engine.subscribers_with_bases(event.name);
                let live_before = self.active_count;
                let mut stepped = 0u64;
                // Timed monitors can flip to Violated on *any* event whose
                // timestamp passes their hard deadline; sweep those first
                // (skipping subscribers, whose own `observe` re-checks the
                // deadline anyway). The guard keeps the common no-deadline
                // case to two flag loads.
                if self.deadline_dirty || self.next_deadline.is_some() {
                    stepped += self.sweep_deadlines(monitors, event.time, ids);
                }
                for (&id, &base) in ids.iter().zip(bases) {
                    let id = id as usize;
                    if self.active[id] {
                        self.step_observe(monitors, id, event, base);
                        stepped += 1;
                    }
                }
                self.stats.steps_skipped += (live_before as u64).saturating_sub(stepped);
            }
        }
    }

    fn ingest_batch_in<M: RoutedMonitor>(&mut self, monitors: &mut [M], events: &[TimedEvent]) {
        for (k, &event) in events.iter().enumerate() {
            // Every monitor is quiescent once all verdicts are final; the
            // remaining events can only bump the event counter.
            if self.active_count == 0 {
                self.stats.events += (events.len() - k) as u64;
                return;
            }
            self.ingest_in(monitors, event);
        }
    }

    /// The whole-trace fast path: like per-event [`Core::ingest_in`] under
    /// indexed dispatch, but with the statistics counters accumulated in
    /// locals across the batch instead of read-modify-written per event.
    fn ingest_batch_indexed<M: RoutedMonitor>(
        &mut self,
        monitors: &mut [M],
        events: &[TimedEvent],
    ) {
        assert!(
            self.active.len() == monitors.len()
                && self.engine.timed_flags.len() == monitors.len()
                && self.deadlines.len() == monitors.len()
        );
        let mut seen = 0u64;
        let mut steps = 0u64;
        let mut skipped = 0u64;
        for (k, &event) in events.iter().enumerate() {
            if self.active_count == 0 {
                seen += (events.len() - k) as u64;
                break;
            }
            seen += 1;
            let mut stepped = 0u64;
            let live_before = self.active_count;
            let (ids, bases) = self.engine.subscribers_with_bases(event.name);
            if self.deadline_dirty || self.next_deadline.is_some() {
                // The sweep updates `self.stats` through the slow path;
                // fold its step count into the locals afterwards.
                let before = self.stats.monitor_steps;
                stepped += self.sweep_deadlines(monitors, event.time, ids);
                steps += self.stats.monitor_steps - before;
                self.stats.monitor_steps = before;
            }
            for (&id, &base) in ids.iter().zip(bases) {
                let id = id as usize;
                if self.active[id] {
                    let verdict = monitors[id].observe_routed(event, base);
                    steps += 1;
                    stepped += 1;
                    if verdict.is_final() {
                        self.retire(id);
                    } else if self.engine.timed_flags[id] {
                        self.deadlines[id] = monitors[id].deadline();
                        self.deadline_dirty = true;
                    }
                }
            }
            skipped += (live_before as u64).saturating_sub(stepped);
        }
        self.stats.events += seen;
        self.stats.monitor_steps += steps;
        self.stats.steps_skipped += skipped;
    }

    fn advance_time_in<M: Monitor>(&mut self, monitors: &mut [M], now: SimTime) {
        match self.mode {
            DispatchMode::Broadcast => {
                for id in 0..monitors.len() {
                    if self.active[id] {
                        self.step_advance(monitors, id, now);
                    }
                }
            }
            DispatchMode::Indexed => {
                self.sweep_deadlines(monitors, now, &[]);
            }
        }
    }

    fn close_in<M: Monitor>(&mut self, monitors: &mut [M], end_time: SimTime) {
        if !self.finished {
            for (id, monitor) in monitors.iter_mut().enumerate() {
                if !self.active[id] {
                    continue;
                }
                monitor.finish(end_time);
                if monitor.verdict().is_final() {
                    self.retire(id);
                }
            }
            self.finished = true;
        }
    }

    /// Step monitor `id` with `event`, recording the step and retiring the
    /// monitor if its verdict went final.
    #[inline]
    fn step_observe<M: RoutedMonitor>(
        &mut self,
        monitors: &mut [M],
        id: usize,
        event: TimedEvent,
        base: u32,
    ) {
        let verdict = monitors[id].observe_routed(event, base);
        self.stats.monitor_steps += 1;
        if verdict.is_final() {
            self.retire(id);
        } else if self.engine.timed_flags[id] {
            self.deadlines[id] = monitors[id].deadline();
            self.deadline_dirty = true;
        }
    }

    /// Step monitor `id` with `event` without a routing hint (broadcast
    /// mode steps unsubscribed monitors too, so no row is available).
    fn step_observe_plain<M: Monitor>(&mut self, monitors: &mut [M], id: usize, event: TimedEvent) {
        let verdict = monitors[id].observe(event);
        self.stats.monitor_steps += 1;
        if verdict.is_final() {
            self.retire(id);
        } else if self.engine.timed_flags[id] {
            self.deadlines[id] = monitors[id].deadline();
            self.deadline_dirty = true;
        }
    }

    /// Step monitor `id` with a time notification.
    fn step_advance<M: Monitor>(&mut self, monitors: &mut [M], id: usize, now: SimTime) {
        let verdict = monitors[id].advance_time(now);
        self.stats.monitor_steps += 1;
        if verdict.is_final() {
            self.retire(id);
        } else if self.engine.timed_flags[id] {
            self.deadlines[id] = monitors[id].deadline();
            self.deadline_dirty = true;
        }
    }

    fn retire(&mut self, id: usize) {
        if self.active[id] {
            self.active[id] = false;
            self.active_count -= 1;
            self.deadlines[id] = None;
            if self.engine.timed_flags[id] {
                self.deadline_dirty = true;
            }
            self.newly_final.push(id as u32);
        }
    }

    /// Advance-time every live timed monitor whose hard deadline `now` has
    /// passed, except those in `exclude` (they are about to be observed,
    /// which performs its own deadline check). Returns the number of
    /// monitors stepped.
    fn sweep_deadlines<M: Monitor>(
        &mut self,
        monitors: &mut [M],
        now: SimTime,
        exclude: &[u32],
    ) -> u64 {
        self.refresh_next_deadline();
        let Some(min) = self.next_deadline else {
            return 0;
        };
        if now <= min {
            return 0;
        }
        let mut stepped = 0;
        for k in 0..self.engine.timed_ids.len() {
            let id = self.engine.timed_ids[k] as usize;
            if !self.active[id] || exclude.contains(&(id as u32)) {
                continue;
            }
            if self.deadlines[id].is_some_and(|d| now > d) {
                self.step_advance(monitors, id, now);
                stepped += 1;
            }
        }
        self.refresh_next_deadline();
        stepped
    }

    fn refresh_next_deadline(&mut self) {
        if !self.deadline_dirty {
            return;
        }
        self.next_deadline = self
            .engine
            .timed_ids
            .iter()
            .filter(|&&id| self.active[id as usize])
            .filter_map(|&id| self.deadlines[id as usize])
            .min();
        self.deadline_dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lomon_trace::Vocabulary;

    fn event(voc: &Vocabulary, name: &str, ns: u64) -> TimedEvent {
        TimedEvent::new(voc.lookup(name).expect("known name"), SimTime::from_ns(ns))
    }

    fn two_property_engine(voc: &mut Vocabulary) -> Engine {
        Engine::compile(
            &["all{a, b} << start once", "go => out:done within 50 ns"],
            voc,
        )
        .expect("compiles")
    }

    #[test]
    fn indexed_steps_only_subscribers() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let mut session = engine.session();
        // `a` concerns only property 0: one step, one skipped.
        session.ingest(event(&voc, "a", 10));
        assert_eq!(session.stats().monitor_steps, 1);
        assert_eq!(session.stats().steps_skipped, 1);
        // A name outside every alphabet steps nothing.
        voc.input("noise");
        session.ingest(event(&voc, "noise", 20));
        assert_eq!(session.stats().monitor_steps, 1);
        assert_eq!(session.stats().steps_skipped, 3);
        assert_eq!(session.stats().events, 2);
    }

    #[test]
    fn broadcast_steps_every_live_monitor() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let mut session = engine.session_with(DispatchMode::Broadcast);
        session.ingest(event(&voc, "a", 10));
        assert_eq!(session.stats().monitor_steps, 2);
        assert_eq!(session.stats().steps_skipped, 0);
    }

    #[test]
    fn final_monitors_are_retired_and_reported() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let mut session = engine.session();
        for (name, ns) in [("a", 10), ("b", 20), ("start", 30)] {
            session.ingest(event(&voc, name, ns));
        }
        // Property 0 is one-shot: Satisfied and retired.
        assert_eq!(session.take_newly_final(), vec![0]);
        assert_eq!(session.verdict(0), Verdict::Satisfied);
        assert_eq!(session.active_len(), 1);
        let steps = session.stats().monitor_steps;
        // Further `a` events step nobody: property 0 is retired.
        session.ingest(event(&voc, "a", 40));
        assert_eq!(session.stats().monitor_steps, steps);
        assert!(!session.is_settled());
    }

    #[test]
    fn deadline_sweep_catches_timeout_on_unrelated_event() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let mut session = engine.session();
        session.ingest(event(&voc, "go", 10)); // deadline now 60ns
                                               // `a` is outside the timed property's alphabet, but its timestamp
                                               // reveals the miss — exactly as a naive broadcast would.
        session.ingest(event(&voc, "a", 200));
        assert_eq!(session.verdict(1), Verdict::Violated);
        assert_eq!(session.take_newly_final(), vec![1]);
        assert!(session.violation(1).is_some());
    }

    #[test]
    fn advance_time_detects_timeout_without_events() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let mut session = engine.session();
        session.ingest(event(&voc, "go", 10));
        session.advance_time(SimTime::from_ns(59));
        assert_eq!(session.verdict(1), Verdict::Pending);
        session.advance_time(SimTime::from_ns(61));
        assert_eq!(session.verdict(1), Verdict::Violated);
    }

    #[test]
    fn finish_settles_open_obligations() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let mut session = engine.session();
        session.ingest(event(&voc, "go", 10));
        let report = session.finish(SimTime::from_ns(500));
        assert_eq!(report.properties[1].verdict, Verdict::Violated);
        assert!(!report.is_ok());
        // The antecedent never went final (safety, still consistent); only
        // the timed property is retired.
        assert_eq!(report.properties[0].verdict, Verdict::PresumablySatisfied);
        assert_eq!(report.stats.retired, 1);
        // Finishing twice is idempotent.
        let again = session.finish(SimTime::from_ns(500));
        assert_eq!(again.properties[1].verdict, Verdict::Violated);
    }

    #[test]
    fn batch_equals_one_by_one() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let events: Vec<TimedEvent> = [("a", 10), ("go", 20), ("b", 30), ("done", 40)]
            .into_iter()
            .map(|(n, t)| event(&voc, n, t))
            .collect();
        let mut one = engine.session();
        for &e in &events {
            one.ingest(e);
        }
        let mut batch = engine.session();
        batch.ingest_batch(&events);
        let (a, b) = (
            one.finish(SimTime::from_ns(50)),
            batch.finish(SimTime::from_ns(50)),
        );
        assert_eq!(a.stats.monitor_steps, b.stats.monitor_steps);
        for (x, y) in a.properties.iter().zip(&b.properties) {
            assert_eq!(x.verdict, y.verdict);
        }
    }

    #[test]
    fn reset_reuses_the_session() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let mut session = engine.session();
        for (name, ns) in [("a", 10), ("b", 20), ("start", 30)] {
            session.ingest(event(&voc, name, ns));
        }
        session.finish(SimTime::from_ns(40));
        session.reset();
        assert_eq!(session.active_len(), 2);
        assert_eq!(session.stats().events, 0);
        assert_eq!(session.verdict(0), Verdict::PresumablySatisfied);
        assert!(session.take_newly_final().is_empty());
        // The reused session still works.
        session.ingest(event(&voc, "start", 10));
        assert_eq!(session.verdict(0), Verdict::Violated);
    }

    #[test]
    fn modes_agree_on_verdicts() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let events: Vec<TimedEvent> = [("go", 10), ("a", 100), ("b", 120), ("start", 130)]
            .into_iter()
            .map(|(n, t)| event(&voc, n, t))
            .collect();
        let mut indexed = engine.session();
        let mut broadcast = engine.session_with(DispatchMode::Broadcast);
        indexed.ingest_batch(&events);
        broadcast.ingest_batch(&events);
        let (i, b) = (
            indexed.finish(SimTime::from_ns(200)),
            broadcast.finish(SimTime::from_ns(200)),
        );
        for (x, y) in i.properties.iter().zip(&b.properties) {
            assert_eq!(x.verdict, y.verdict, "property {}", x.property);
            assert_eq!(
                x.violation.as_ref().map(|v| v.kind),
                y.violation.as_ref().map(|v| v.kind)
            );
        }
        assert!(i.stats.monitor_steps < b.stats.monitor_steps);
    }
}
