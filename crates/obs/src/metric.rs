//! The three metric primitives: monotone [`Counter`]s, free-moving
//! [`Gauge`]s, and log-bucketed [`Histogram`]s.
//!
//! All three are lock-free bundles of relaxed atomics, safe to hammer from
//! any number of threads: recording is a handful of `fetch_add`s with no
//! allocation, no branch on contention, and no synchronization with
//! readers. A concurrent exposition scrape observes each atomic
//! individually — values may be mutually out-of-date by a few events (a
//! histogram's `count` can momentarily run ahead of its bucket sum), but a
//! read is never *torn*: every loaded number was genuinely written by some
//! `record`/`add` call.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter (Prometheus `counter`).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` that can move both ways (Prometheus `gauge`).
/// The value is stored as its bit pattern in an `AtomicU64`, so `set` and
/// `get` are single atomic operations.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Sub-bucket resolution of the histogram: each power-of-two octave is
/// split into `2^SUB_BITS` linear sub-buckets (HDR-histogram style), so
/// the relative bucket-boundary error is bounded by `1/2^SUB_BITS` while
/// the whole `u64` range still fits in [`BUCKETS`] slots.
const SUB_BITS: u32 = 2;
const SUB: usize = 1 << SUB_BITS;

/// Number of buckets a [`Histogram`] carries. Index layout: values below
/// `SUB` map to their own bucket; a larger value with top bit `exp` lands
/// in octave `exp - SUB_BITS + 1`, sub-bucket = the `SUB_BITS` bits below
/// the top bit.
pub const BUCKETS: usize = ((63 - SUB_BITS as usize) << SUB_BITS) + SUB + SUB;

/// The bucket index of `value`. Total over `u64` (the last bucket ends at
/// `u64::MAX`), monotone, and allocation-free.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB as u64 {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros();
        let sub = ((value >> (exp - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        (((exp - SUB_BITS + 1) as usize) << SUB_BITS) + sub
    }
}

/// The largest value that lands in bucket `index` — the inclusive upper
/// bound rendered as the Prometheus `le` label.
///
/// # Panics
///
/// Panics if `index >= BUCKETS`.
pub fn bucket_upper(index: usize) -> u64 {
    assert!(index < BUCKETS, "bucket index {index} out of range");
    if index < SUB {
        index as u64
    } else {
        let octave = (index >> SUB_BITS) as u32;
        let exp = octave + SUB_BITS - 1;
        let sub = (index & (SUB - 1)) as u64;
        let width = 1u64 << (exp - SUB_BITS);
        // The top bucket's bound is 2^63 + 2^63 - 1: the intermediate sum
        // wraps to exactly 0 before the -1, so wrapping ops land on
        // u64::MAX as intended.
        (1u64 << exp)
            .wrapping_add((sub + 1) * width)
            .wrapping_sub(1)
    }
}

/// A log-bucketed latency/size histogram (Prometheus `histogram`).
///
/// Values are unit-free `u64`s (this workspace records nanoseconds);
/// [`Histogram::record`] touches exactly three relaxed atomics and never
/// allocates — the bucket array is fixed at construction. Buckets are
/// power-of-two octaves with [`SUB`] linear sub-buckets each, bounding the
/// boundary quantization error at 25%.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The per-bucket counts (not cumulative), loaded bucket by bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_total_and_monotone_at_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(3), 3);
        assert_eq!(bucket_index(4), 4);
        // Every bucket's upper bound round-trips, and the next value up
        // lands in the next bucket.
        for index in 0..BUCKETS {
            let upper = bucket_upper(index);
            assert_eq!(bucket_index(upper), index, "upper({index}) = {upper}");
            if upper < u64::MAX {
                assert_eq!(bucket_index(upper + 1), index + 1);
            } else {
                assert_eq!(index, BUCKETS - 1);
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_records_count_and_sum() {
        let h = Histogram::new();
        for v in [0, 1, 7, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), u64::MAX.wrapping_add(1008));
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 5);
    }
}
