//! # lomon — loose-ordering monitors for SystemC/TLM-style models
//!
//! Umbrella crate re-exporting the whole workspace: a reproduction of
//! *Efficient Monitoring of Loose-Ordering Properties for SystemC/TLM*
//! (Romenska & Maraninchi, DATE 2016). See the README for the architecture
//! overview and paper-to-code map.
//!
//! ## Crate map
//!
//! | Module | Crate | Paper |
//! |---|---|---|
//! | [`trace`] | `lomon-trace` | §2 interfaces, names, simulated time; wire-speed ingest: `mmap`-backed files (`trace::MappedFile`), zero-copy byte lexing of the text/NDJSON grammars (`trace::wire`, `trace::ndjson`), frozen-vocabulary decode to pre-resolved ids (`trace::Vocabulary::lookup_bytes`, `trace::decode_events_into`) |
//! | [`core`] | `lomon-core` | §3–§5 patterns, Fig. 5 recognizers, Drct monitors, compiled flat-table backend, fused rulebook programs, static analysis (`core::analysis`: L003–L009 lints, dead-table pruning), witness capture + flight recorder (`core::witness`) |
//! | [`engine`] | `lomon-engine` | streaming multi-property engine, event-indexed dispatch, fused/compiled/interpreted backends, compile-time analysis integration |
//! | [`psl`] | `lomon-psl` | §5 translation to PSL, ViaPSL baseline |
//! | [`sync`] | `lomon-sync` | §6 Lustre-style synchronous validation |
//! | [`gen`] | `lomon-gen` | §8 stimuli generation (future work) |
//! | [`obs`] | `lomon-obs` | zero-overhead telemetry: metrics registry, Prometheus/NDJSON exposition, `/metrics` listener, phase stopwatches, Chrome trace-event spans (`obs::Tracer`) |
//! | [`serve`] | `lomon-serve` | hardened monitoring daemon: concurrent NDJSON streams over TCP, per-stream fault isolation, backpressure/overload shedding, rulebook hot-reload, drain shutdown |
//! | [`kernel`] | `lomon-kernel` | SystemC-like simulation kernel |
//! | [`tlm`] | `lomon-tlm` | §2/Fig. 1 virtual face-recognition platform |
//! | [`smc`] | `lomon-smc` | statistical model checking: parallel campaigns, Chernoff–Hoeffding estimation, SPRT |
//!
//! ## Quickstart
//!
//! The paper's Example 2: before starting face recognition, the IPU's three
//! configuration registers must each have been written — in any order (the
//! "loose" part). This mirrors `examples/quickstart.rs`:
//!
//! ```
//! use lomon::core::monitor::build_monitor;
//! use lomon::core::parse::parse_property;
//! use lomon::core::verdict::{run_to_end, Monitor, Verdict};
//! use lomon::trace::{Trace, Vocabulary};
//!
//! let mut voc = Vocabulary::new();
//! let text = "all{set_imgAddr, set_glAddr, set_glSize} << start once";
//! let property = parse_property(text, &mut voc).expect("property parses");
//!
//! let img = voc.lookup("set_imgAddr").unwrap();
//! let gl = voc.lookup("set_glAddr").unwrap();
//! let sz = voc.lookup("set_glSize").unwrap();
//! let start = voc.lookup("start").unwrap();
//!
//! // A good trace: the writes arrive in a scrambled order, then start.
//! let good = Trace::from_names([gl, sz, img, start]);
//! let mut monitor = build_monitor(property.clone(), &voc).expect("well-formed");
//! assert_eq!(run_to_end(&mut monitor, &good), Verdict::Satisfied);
//!
//! // A bad trace: start fires before the gallery size was configured.
//! let bad = Trace::from_names([gl, img, start]);
//! let mut monitor = build_monitor(property, &voc).expect("well-formed");
//! assert_eq!(run_to_end(&mut monitor, &bad), Verdict::Violated);
//! let violation = monitor.violation().expect("diagnostics recorded");
//! assert!(violation.display(&voc).to_string().contains("start"));
//! ```

pub use lomon_core as core;
pub use lomon_engine as engine;
pub use lomon_gen as gen;
pub use lomon_kernel as kernel;
pub use lomon_obs as obs;
pub use lomon_psl as psl;
pub use lomon_serve as serve;
pub use lomon_smc as smc;
pub use lomon_sync as sync;
pub use lomon_tlm as tlm;
pub use lomon_trace as trace;
