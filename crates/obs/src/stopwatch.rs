//! Coarse phase timing: a [`Stopwatch`] records elapsed nanoseconds into a
//! [`Histogram`] when stopped (or dropped), so `compile`, `fuse`,
//! per-file `check`, and per-episode SMC spans show up as latency
//! distributions without threading timers through every call site.

use std::sync::Arc;
use std::time::Instant;

use crate::metric::Histogram;

/// A running span. Create one with [`Stopwatch::start`]; the elapsed time
/// lands in the histogram on [`Stopwatch::stop`] or on drop, whichever
/// comes first.
#[derive(Debug)]
pub struct Stopwatch {
    histogram: Arc<Histogram>,
    started: Instant,
    armed: bool,
}

impl Stopwatch {
    /// Start timing a span whose duration will be recorded (in
    /// nanoseconds) into `histogram`.
    pub fn start(histogram: Arc<Histogram>) -> Self {
        Stopwatch {
            histogram,
            started: Instant::now(),
            armed: true,
        }
    }

    /// Stop the span now and record its duration, returning the elapsed
    /// nanoseconds.
    pub fn stop(mut self) -> u64 {
        self.armed = false;
        let elapsed = elapsed_ns(self.started);
        self.histogram.record(elapsed);
        elapsed
    }
}

impl Drop for Stopwatch {
    fn drop(&mut self) {
        if self.armed {
            self.histogram.record(elapsed_ns(self.started));
        }
    }
}

fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_records_exactly_once() {
        let h = Arc::new(Histogram::new());
        let sw = Stopwatch::start(Arc::clone(&h));
        sw.stop();
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn drop_records_when_not_stopped() {
        let h = Arc::new(Histogram::new());
        drop(Stopwatch::start(Arc::clone(&h)));
        assert_eq!(h.count(), 1);
    }
}
