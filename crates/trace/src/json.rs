//! Minimal JSON string escaping, shared by every machine-readable output
//! in the workspace (`lomon watch --format ndjson`, `lomon check/smc
//! --format json`, the engine and campaign report renderers).
//!
//! Only the *escaping* lives here — each report renders its own object
//! layout by hand, because the values are all numbers, booleans and
//! already-escaped strings and a JSON serializer would be an external
//! dependency.

/// Escape `text` for embedding in a JSON string literal: `"`, `\`,
/// newline and tab get their two-character escapes, all other control
/// characters become `\u00XX`.
pub fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_control_characters() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a \"b\" \\c"), "a \\\"b\\\" \\\\c");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
