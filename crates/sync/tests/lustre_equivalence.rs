//! The synchronous-network recognizer and the imperative recognizer are two
//! independent encodings of the paper's Fig. 5 automaton; they must agree on
//! every input sequence (the paper's Lustre-based validation, with proptest
//! as the automatic testing tool).

use proptest::prelude::*;

use lomon_core::ast::{FragmentOp, Range};
use lomon_core::context::RangeContext;
use lomon_core::recognizer::{RangeOutput, RangeRecognizer, RangeState};
use lomon_sync::{ClassInput, NetState, RangeRecognizerNet};
use lomon_trace::{Name, NameSet, Vocabulary};

/// Build an imperative recognizer with a synthetic single-name-per-class
/// context, plus the names to drive it with.
fn imperative(u: u32, v: u32, is_or: bool) -> (RangeRecognizer, [Name; 5]) {
    let mut voc = Vocabulary::new();
    let own = voc.input("own");
    let conc = voc.input("conc");
    let acc = voc.input("acc");
    let aft = voc.input("aft");
    let bef = voc.input("bef");
    let ctx = RangeContext {
        before: [bef].into_iter().collect::<NameSet>(),
        concurrent: [conc].into_iter().collect(),
        accept: [acc].into_iter().collect(),
        after: [aft].into_iter().collect(),
        semantics: if is_or {
            FragmentOp::Any
        } else {
            FragmentOp::All
        },
    };
    (
        RangeRecognizer::new(Range::new(own, u, v), ctx),
        [own, conc, acc, aft, bef],
    )
}

fn class_name(names: &[Name; 5], class: ClassInput) -> Name {
    match class {
        ClassInput::Own => names[0],
        ClassInput::Concurrent => names[1],
        ClassInput::Accept => names[2],
        ClassInput::After => names[3],
        ClassInput::Before => names[4],
    }
}

fn class_of(ix: u8) -> ClassInput {
    match ix % 5 {
        0 => ClassInput::Own,
        1 => ClassInput::Concurrent,
        2 => ClassInput::Accept,
        3 => ClassInput::After,
        _ => ClassInput::Before,
    }
}

fn states_match(net: NetState, imp: RangeState) -> bool {
    matches!(
        (net, imp),
        (NetState::Idle, RangeState::Idle)
            | (NetState::Waiting, RangeState::Waiting)
            | (NetState::WaitingOther, RangeState::WaitingOther)
            | (NetState::Counting, RangeState::Counting)
            | (NetState::Done, RangeState::Done)
            | (NetState::Error, RangeState::Error)
    )
}

fn outputs_match(net: lomon_sync::NetOutput, imp: RangeOutput) -> bool {
    match imp {
        RangeOutput::Progress => !net.ok && !net.nok && !net.err,
        RangeOutput::Ok => net.ok && !net.nok && !net.err,
        RangeOutput::Nok => net.nok && !net.ok && !net.err,
        RangeOutput::Err(_) => net.err && !net.ok && !net.nok,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Activation with a plain `start`, then an arbitrary event sequence.
    #[test]
    fn plain_start_equivalence(
        u in 1u32..=4,
        extra in 0u32..=3,
        is_or in any::<bool>(),
        moves in prop::collection::vec(0u8..5, 0..30),
    ) {
        let v = u + extra;
        let (mut imp, names) = imperative(u, v, is_or);
        let mut net = RangeRecognizerNet::new(u, v, is_or);

        imp.start();
        net.step(true, None);
        prop_assert!(states_match(net.state(), imp.state()));

        let mut stopped = false;
        for &mv in &moves {
            let class = class_of(mv);
            let imp_out = imp.step(class_name(&names, class));
            let net_out = net.step(false, Some(class));
            prop_assert!(
                outputs_match(net_out, imp_out),
                "outputs diverge: net {net_out:?} vs imp {imp_out:?} (u={u} v={v} or={is_or})"
            );
            prop_assert!(
                states_match(net.state(), imp.state()),
                "states diverge: net {:?} vs imp {:?}",
                net.state(),
                imp.state()
            );
            if net.state() == NetState::Counting || net.state() == NetState::Done {
                prop_assert_eq!(net.count(), i64::from(imp.count()));
            }
            // Once terminated (ok/nok), both sit in Idle; further inputs
            // must keep them in lockstep (both ignore).
            if imp_out.is_terminal_ok() {
                stopped = true;
            }
            if stopped {
                prop_assert_eq!(net.state(), NetState::Idle);
            }
        }
    }

    /// Activation coinciding with an event of the fragment (`start∧n`,
    /// `start∧C`) — the handover case.
    #[test]
    fn coincident_start_equivalence(
        u in 1u32..=4,
        extra in 0u32..=3,
        is_or in any::<bool>(),
        own_first in any::<bool>(),
        moves in prop::collection::vec(0u8..5, 0..30),
    ) {
        let v = u + extra;
        let (mut imp, names) = imperative(u, v, is_or);
        let mut net = RangeRecognizerNet::new(u, v, is_or);

        let class = if own_first { ClassInput::Own } else { ClassInput::Concurrent };
        imp.start_with(class_name(&names, class));
        net.step(true, Some(class));
        prop_assert!(states_match(net.state(), imp.state()));
        if own_first {
            prop_assert_eq!(net.count(), 1);
            prop_assert_eq!(imp.count(), 1);
        }

        for &mv in &moves {
            let class = class_of(mv);
            let imp_out = imp.step(class_name(&names, class));
            let net_out = net.step(false, Some(class));
            prop_assert!(outputs_match(net_out, imp_out));
            prop_assert!(states_match(net.state(), imp.state()));
        }
    }

    /// No-event ticks in the network must not change anything (the
    /// imperative recognizer simply is not stepped).
    #[test]
    fn idle_ticks_are_neutral(
        u in 1u32..=3,
        extra in 0u32..=2,
        is_or in any::<bool>(),
        moves in prop::collection::vec((0u8..5, any::<bool>()), 0..20),
    ) {
        let v = u + extra;
        let (mut imp, names) = imperative(u, v, is_or);
        let mut net = RangeRecognizerNet::new(u, v, is_or);
        imp.start();
        net.step(true, None);

        for &(mv, idle_tick) in &moves {
            if idle_tick {
                let before = net.state();
                let out = net.step(false, None);
                prop_assert!(!out.ok && !out.nok && !out.err);
                prop_assert_eq!(net.state(), before);
            } else {
                let class = class_of(mv);
                let imp_out = imp.step(class_name(&names, class));
                let net_out = net.step(false, Some(class));
                prop_assert!(outputs_match(net_out, imp_out));
                prop_assert!(states_match(net.state(), imp.state()));
            }
        }
    }
}
