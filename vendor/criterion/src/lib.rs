//! Vendored, self-contained stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so the workspace cannot pull
//! the real `criterion` from crates.io. This crate implements the subset the
//! `lomon-bench` benches use — [`criterion_group!`]/[`criterion_main!`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`Throughput`] and
//! [`BatchSize`] — with a simple wall-clock sampler: per sample it runs
//! enough iterations to fill a small time slice, then reports min/mean ns
//! per iteration (and element throughput when declared) as plain text.
//! There is no statistical analysis, HTML report, or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Return `x` while preventing the optimizer from deleting its computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The sampler here runs setup
/// once per iteration and excludes it from the measurement regardless of
/// the variant, so the variants only document intent — matching criterion's
/// API, not its batch scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Units processed per iteration, for derived rates in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A `function-name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: Vec<u64>,
    sample_size: usize,
}

impl Bencher {
    fn with_sample_size(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: Vec::new(),
            sample_size,
        }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.sample(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            start.elapsed()
        });
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.sample(|iters| {
            let mut measured = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                measured += start.elapsed();
            }
            measured
        });
    }

    /// Calibrate an iteration count to ~5 ms per sample, then record
    /// `sample_size` samples.
    fn sample(&mut self, mut run: impl FnMut(u64) -> Duration) {
        const TARGET_SLICE: Duration = Duration::from_millis(5);
        let mut iters = 1u64;
        let mut warmup = run(iters);
        while warmup < TARGET_SLICE / 10 && iters < 1 << 20 {
            iters *= 8;
            warmup = run(iters);
        }
        let per_iter = warmup.max(Duration::from_nanos(1)) / iters as u32;
        let iters_per_sample =
            (TARGET_SLICE.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
        for _ in 0..self.sample_size {
            self.samples.push(run(iters_per_sample));
            self.iters_per_sample.push(iters_per_sample);
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .zip(&self.iters_per_sample)
            .map(|(d, &n)| d.as_nanos() as f64 / n as f64)
            .collect();
        if per_iter.is_empty() {
            println!("{id:<40} no samples");
            return;
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let best = per_iter[0];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.1} Melem/s", n as f64 / best * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.1} MiB/s", n as f64 / best * 1e9 / (1 << 20) as f64)
            }
            None => String::new(),
        };
        println!("{id:<40} best {best:>12.1} ns/iter   mean {mean:>12.1} ns/iter{rate}");
    }
}

/// Group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples > 0, "sample size must be positive");
        self.sample_size = samples;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<R>(&mut self, id: impl Display, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.throughput, routine);
        self
    }

    // `id` by value to mirror the real criterion's signature.
    #[allow(clippy::needless_pass_by_value)]
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.throughput, |b| {
            routine(b, input);
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut routine: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher::with_sample_size(sample_size);
    routine(&mut bencher);
    bencher.report(id, throughput);
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Apply standard criterion CLI settings. This stub only recognizes
    /// test-mode invocations (`--test`, from `cargo test`), where sampling
    /// is cut to one sample so every bench still executes once.
    pub fn configure_from_args(mut self) -> Self {
        if self.sample_size == 0 {
            self.sample_size = 10;
        }
        if std::env::args().any(|a| a == "--test") {
            self.sample_size = 1;
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size.max(1);
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    pub fn bench_function<R>(&mut self, id: impl Display, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size.max(1), None, routine);
        self
    }
}

/// Bundle benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($function(&mut criterion);)+
        }
    };
}

/// Generate `main` for one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
