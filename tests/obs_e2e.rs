//! End-to-end observability: the `--metrics` listener scraped over real
//! TCP while `lomon watch` / `lomon smc` run, `--stats-every` heartbeat
//! determinism, the per-batch smc progress line, and the unified stats
//! schema across every CLI surface.

mod common;

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, ChildStderr, Command, Stdio};
use std::time::{Duration, Instant};

use common::{lomon, lomon_with_stdin, stderr, stdout, PROPERTY};

/// Spawn `lomon <args>` with piped stdio and wait for the listener
/// announcement on stderr, returning the child, the bound `host:port`,
/// and the stderr reader (positioned after the announcement).
fn spawn_with_metrics(args: &[&str]) -> (Child, String, BufReader<ChildStderr>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_lomon"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lomon");
    let mut err_lines = BufReader::new(child.stderr.take().expect("piped stderr"));
    let mut line = String::new();
    let addr = loop {
        line.clear();
        if err_lines.read_line(&mut line).expect("read stderr") == 0 {
            panic!("lomon exited before announcing the metrics listener");
        }
        if let Some(rest) = line.trim().strip_prefix("metrics: serving http://") {
            break rest.trim_end_matches("/metrics").to_owned();
        }
    };
    (child, addr, err_lines)
}

/// One HTTP/1.1 GET over a fresh connection; returns `(head, body)`.
fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect metrics listener");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set read timeout");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header terminator");
    (head.to_owned(), body.to_owned())
}

/// Re-scrape `path` until `pred` holds on the body (the child processes
/// its stdin asynchronously), failing after a generous deadline.
fn scrape_until(addr: &str, path: &str, pred: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, body) = http_get(addr, path);
        if pred(&body) {
            return body;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for metrics; last body:\n{body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn watch_metrics_scrape_over_tcp() {
    let (mut child, addr, _err) =
        spawn_with_metrics(&["watch", "--metrics", "127.0.0.1:0", PROPERTY]);
    let mut stdin = child.stdin.take().expect("piped stdin");
    stdin
        .write_all(b"10ns in set_imgAddr\n20ns in set_glAddr\n")
        .expect("write stream");
    stdin.flush().expect("flush stream");

    // The per-event delta flush makes both events visible to a live
    // scrape while stdin is still open.
    let body = scrape_until(&addr, "/metrics", |b| b.contains("lomon_events_total 2"));
    for family in [
        "# TYPE lomon_events_total counter",
        "# TYPE lomon_monitor_steps_total counter",
        "# TYPE lomon_properties_live gauge",
        "# TYPE lomon_io_lines_total counter",
        "# TYPE lomon_compile_ns histogram",
        "lomon_verdicts_total{verdict=\"violated\"} 0",
        "lomon_io_lines_total 2",
        "lomon_compile_ns_count 1",
    ] {
        assert!(body.contains(family), "missing `{family}` in:\n{body}");
    }
    let (head, _) = http_get(&addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "head: {head}");
    assert!(head.contains("text/plain; version=0.0.4"), "head: {head}");

    // The NDJSON sibling serves the same registry.
    let (json_head, json_body) = http_get(&addr, "/metrics.json");
    assert!(json_head.contains("application/x-ndjson"), "{json_head}");
    assert!(
        json_body.contains("{\"name\":\"lomon_events_total\""),
        "{json_body}"
    );

    // Unknown paths and non-idempotent methods get clean errors while the
    // stream is still being monitored.
    let (head_404, _) = http_get(&addr, "/nope");
    assert!(head_404.starts_with("HTTP/1.1 404"), "head: {head_404}");

    drop(stdin);
    let status = child.wait().expect("lomon exits");
    assert!(status.success(), "watch exit: {status:?}");
}

#[test]
fn watch_metrics_bind_conflict_exits_2() {
    // Occupy a port, then ask watch to serve metrics on it.
    let taken = TcpListener::bind("127.0.0.1:0").expect("bind blocker");
    let addr = taken.local_addr().expect("blocker addr").to_string();
    let output = lomon_with_stdin(&["watch", "--metrics", &addr, PROPERTY], "");
    assert_eq!(output.status.code(), Some(2), "stderr: {}", stderr(&output));
    assert!(
        stderr(&output).contains("cannot bind"),
        "stderr: {}",
        stderr(&output)
    );
}

#[test]
fn watch_stats_every_heartbeats_are_deterministic() {
    let stream = "{\"time\": \"10ns\", \"name\": \"set_imgAddr\"}\n\
                  {\"time\": \"20ns\", \"name\": \"set_glAddr\"}\n\
                  {\"time\": \"30ns\", \"name\": \"set_glSize\"}\n\
                  {\"time\": \"40ns\", \"name\": \"start\"}\n\
                  {\"end\": \"100ns\"}\n";
    let args = [
        "watch",
        "--format",
        "ndjson",
        "--stats-every",
        "2",
        PROPERTY,
    ];
    let first = lomon_with_stdin(&args, stream);
    let second = lomon_with_stdin(&args, stream);
    assert!(first.status.success(), "stderr: {}", stderr(&first));
    assert_eq!(
        stdout(&first),
        stdout(&second),
        "heartbeats must be deterministic"
    );
    let text = stdout(&first);
    let heartbeats: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("{\"type\": \"stats\""))
        .collect();
    // 4 events, one heartbeat at each crossing of a multiple of 2.
    assert_eq!(heartbeats.len(), 2, "stdout: {text}");
    assert!(
        heartbeats[0].contains("\"events\": 2") && heartbeats[1].contains("\"events\": 4"),
        "stdout: {text}"
    );
    // Heartbeats carry the canonical schema.
    assert!(heartbeats[0].contains("\"backend\": \"fused\""), "{text}");
    assert!(heartbeats[0].contains("\"retired\": "), "{text}");
}

#[test]
fn watch_summary_carries_the_canonical_schema() {
    let stream = "{\"time\": \"10ns\", \"name\": \"set_imgAddr\"}\n\
                  {\"time\": \"20ns\", \"name\": \"set_glAddr\"}\n\
                  {\"time\": \"30ns\", \"name\": \"set_glSize\"}\n\
                  {\"time\": \"40ns\", \"name\": \"start\"}\n";
    let output = lomon_with_stdin(&["watch", "--format", "ndjson", PROPERTY], stream);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    let summary = text
        .lines()
        .find(|l| l.contains("\"summary\": true"))
        .expect("summary line");
    // The legacy top-level aliases and the unified object agree.
    assert!(summary.contains("\"events\": 4"), "{summary}");
    assert!(
        summary.contains("\"stats\": {\"backend\": \"fused\", \"properties\": 1, \"events\": 4"),
        "{summary}"
    );
    assert!(summary.contains("\"violations\": 0"), "{summary}");
}

#[test]
fn check_json_carries_the_canonical_schema() {
    let output = lomon(&["check", "--format", "json", common::FIXTURE, PROPERTY]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(
        text.contains("\"stats\": {\"backend\": \"fused\", \"properties\": 1"),
        "stdout: {text}"
    );
}

#[test]
fn smc_progress_line_per_batch_and_quiet() {
    // JSON format: stdout carries no wall clock, so the loud and quiet
    // reports must be byte-identical.
    let loud = lomon(&["smc", "--episodes", "8", "--seed", "1", "--format", "json"]);
    assert!(loud.status.success(), "stderr: {}", stderr(&loud));
    let err = stderr(&loud);
    assert!(
        err.contains("smc: 8/8 episodes") && err.contains("\u{b1}"),
        "stderr: {err}"
    );

    let quiet = lomon(&[
        "smc",
        "--episodes",
        "8",
        "--seed",
        "1",
        "--format",
        "json",
        "--quiet",
    ]);
    assert!(quiet.status.success(), "stderr: {}", stderr(&quiet));
    assert!(
        !stderr(&quiet).contains("episodes"),
        "stderr: {}",
        stderr(&quiet)
    );
    // --quiet silences telemetry, never the report.
    assert_eq!(stdout(&loud), stdout(&quiet));
}

#[test]
fn smc_stats_every_heartbeats_are_jobs_independent() {
    let run = |jobs: &str| {
        let output = lomon(&[
            "smc",
            "--episodes",
            "200",
            "--seed",
            "9",
            "--stats-every",
            "64",
            "--quiet",
            "--jobs",
            jobs,
        ]);
        assert!(output.status.success(), "stderr: {}", stderr(&output));
        let err = stderr(&output);
        let heartbeats: Vec<String> = err
            .lines()
            .filter(|l| l.starts_with("{\"type\": \"stats\""))
            .map(str::to_owned)
            .collect();
        assert!(!heartbeats.is_empty(), "stderr: {err}");
        heartbeats
    };
    let single = run("1");
    let parallel = run("2");
    assert_eq!(single, parallel, "heartbeats must not depend on --jobs");
    assert!(
        single
            .last()
            .expect("final heartbeat")
            .contains("\"episodes\": 200"),
        "heartbeats: {single:?}"
    );
}

#[test]
fn smc_metrics_live_endpoint_during_campaign() {
    // An episode budget far beyond the scrape window: the listener serves
    // while workers are mid-campaign, resetting sessions between episodes
    // — the scrape-during-reset race, exercised over real TCP.
    let (mut child, addr, _err) = spawn_with_metrics(&[
        "smc",
        "--episodes",
        "5000000",
        "--seed",
        "3",
        "--quiet",
        "--metrics",
        "127.0.0.1:0",
    ]);
    let body = scrape_until(&addr, "/metrics", |b| {
        b.lines().any(|l| {
            l.strip_prefix("lomon_smc_episodes_total ")
                .and_then(|v| v.parse::<f64>().ok())
                .is_some_and(|v| v > 0.0)
        })
    });
    for family in [
        "# TYPE lomon_smc_episodes_total counter",
        "# TYPE lomon_smc_episode_duration_ns histogram",
        "lomon_smc_episodes_planned 5000000",
        "lomon_smc_mean{property=\"0\"}",
        "lomon_smc_half_width{property=\"0\"}",
        "lomon_events_total",
    ] {
        assert!(body.contains(family), "missing `{family}` in:\n{body}");
    }
    child.kill().expect("kill campaign");
    child.wait().expect("reap campaign");
}

#[test]
fn smc_json_report_carries_the_canonical_schema() {
    let output = lomon(&[
        "smc",
        "--episodes",
        "16",
        "--seed",
        "4",
        "--quiet",
        "--format",
        "json",
    ]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(
        text.contains("\"stats\": {\"backend\": \"fused\", \"properties\": 2"),
        "stdout: {text}"
    );
    // The pre-schema aliases survive for old consumers.
    assert!(text.contains("\"events\": ") && text.contains("\"monitor_steps\": "));
}
