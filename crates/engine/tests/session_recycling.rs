//! Session recycling under adversarial interleavings: the daemon reuse
//! loop (`ingest* → close → reset`, with `into_state`/`resume` park points
//! anywhere in between) must be observationally identical to opening a
//! fresh session per stream. This is the property `lomon serve` leans on
//! when it pools parked sessions across connections — a single leaked bit
//! of monitor state would cross-contaminate unrelated streams.

use proptest::prelude::*;

use lomon_engine::Engine;
use lomon_trace::{Name, SimTime, TimedEvent, Vocabulary};

/// A fixed four-property rulebook mixing repeated/once antecedents with a
/// timed deadline, so resets must rewind loose-ordering recognizers *and*
/// pending deadlines.
const TEXTS: [&str; 4] = [
    "all{a, b, c} << s repeated",
    "any{a, b} << t once",
    "a << b repeated",
    "go => out:done within 50 ns",
];

fn compile() -> (Engine, Vec<Name>) {
    let mut voc = Vocabulary::new();
    let engine = Engine::compile(&TEXTS, &mut voc).expect("fixed rulebook compiles");
    let universe: Vec<Name> = voc.iter().collect();
    (engine, universe)
}

/// One random stream: events as `(pick, gap_ns)` with accumulating time,
/// plus a trailing gap before the `end` timestamp (so deadlines can expire
/// at close time, not just mid-stream).
fn materialize(
    steps: &[(usize, u64)],
    end_gap: u64,
    universe: &[Name],
) -> (Vec<TimedEvent>, SimTime) {
    let mut events = Vec::with_capacity(steps.len());
    let mut now = SimTime::ZERO;
    for &(pick, gap_ns) in steps {
        now = now
            .checked_add(SimTime::from_ns(gap_ns))
            .expect("small times");
        events.push(TimedEvent::new(universe[pick % universe.len()], now));
    }
    let end = now
        .checked_add(SimTime::from_ns(end_gap))
        .expect("small times");
    (events, end)
}

/// The oracle: a throwaway session over the same engine, one per stream.
fn fresh_outcome(
    engine: &Engine,
    events: &[TimedEvent],
    end: SimTime,
) -> Vec<(
    lomon_core::verdict::Verdict,
    Option<lomon_core::verdict::ViolationKind>,
)> {
    let mut session = engine.session();
    for &event in events {
        session.ingest(event);
    }
    session.close(end);
    (0..engine.len())
        .map(|id| (session.verdict(id), session.violation(id).map(|v| v.kind)))
        .collect()
}

type StreamSpec = (Vec<(usize, u64)>, usize, u64);

fn stream_strategy() -> impl Strategy<Value = StreamSpec> {
    (
        prop::collection::vec((0usize..16, 0u64..=120), 0..=24),
        0usize..32,
        0u64..=200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// One session recycled across every stream — reset between streams,
    /// parked and resumed at a random point inside each — always matches
    /// a fresh session per stream.
    #[test]
    fn recycled_session_matches_fresh_sessions(
        streams in prop::collection::vec(stream_strategy(), 1..=5),
    ) {
        let (engine, universe) = compile();
        let mut reused = engine.session();
        for (stream_no, (steps, park_raw, end_gap)) in streams.iter().enumerate() {
            let (events, end) = materialize(steps, *end_gap, &universe);
            let expected = fresh_outcome(&engine, &events, end);

            // The vendored proptest has no index/shuffle adapters; derive
            // the park point from a plain usize instead.
            let park_at = park_raw % (events.len() + 1);
            for &event in &events[..park_at] {
                reused.ingest(event);
            }
            let state = reused.into_state();
            reused = match engine.resume(state) {
                Ok(session) => session,
                Err(_) => panic!("state parked under this very engine resumes"),
            };
            for &event in &events[park_at..] {
                reused.ingest(event);
            }
            reused.close(end);

            for (id, (verdict, kind)) in expected.iter().enumerate() {
                prop_assert_eq!(
                    reused.verdict(id), *verdict,
                    "stream {} property {}: recycled verdict diverged", stream_no, id
                );
                prop_assert_eq!(
                    reused.violation(id).map(|v| v.kind), *kind,
                    "stream {} property {}: recycled violation kind diverged", stream_no, id
                );
            }
            reused.reset();
        }
    }

    /// A pool of sessions parked mid-stream and revived in a different
    /// order: each must pick up exactly its own stream, never a pool
    /// neighbour's. This is the serve daemon's steady state — several
    /// connections parked at once, resumed as their bytes arrive.
    #[test]
    fn parked_pool_resumes_out_of_order_without_cross_contamination(
        streams in prop::collection::vec(stream_strategy(), 2..=4),
        rotation in 0usize..4,
    ) {
        let (engine, universe) = compile();
        let materialized: Vec<(Vec<TimedEvent>, SimTime, usize)> = streams
            .iter()
            .map(|(steps, park_raw, end_gap)| {
                let (events, end) = materialize(steps, *end_gap, &universe);
                let park_at = park_raw % (events.len() + 1);
                (events, end, park_at)
            })
            .collect();

        // Park every stream at its prefix boundary...
        let mut parked = Vec::new();
        for (stream_no, (events, _, park_at)) in materialized.iter().enumerate() {
            let mut session = engine.session();
            for &event in &events[..*park_at] {
                session.ingest(event);
            }
            parked.push((stream_no, session.into_state()));
        }
        // ...then revive in a rotated order (no shuffle adapter in the
        // vendored proptest; a rotation is order-changing enough).
        let turn = rotation % parked.len();
        parked.rotate_left(turn);

        for (stream_no, state) in parked {
            let (events, end, park_at) = &materialized[stream_no];
            let expected = fresh_outcome(&engine, events, *end);
            let mut session = match engine.resume(state) {
                Ok(session) => session,
                Err(_) => panic!("pooled state resumes on its engine"),
            };
            for &event in &events[*park_at..] {
                session.ingest(event);
            }
            session.close(*end);
            for (id, (verdict, kind)) in expected.iter().enumerate() {
                prop_assert_eq!(
                    session.verdict(id), *verdict,
                    "pooled stream {} property {}: verdict diverged", stream_no, id
                );
                prop_assert_eq!(
                    session.violation(id).map(|v| v.kind), *kind,
                    "pooled stream {} property {}: violation kind diverged", stream_no, id
                );
            }
        }
    }
}

#[test]
fn resume_rejects_a_foreign_engine_but_accepts_a_clone() {
    let (engine, universe) = compile();
    let (other, _) = compile();

    let mut session = engine.session();
    session.ingest(TimedEvent::new(universe[0], SimTime::from_ns(5)));
    let state = session.into_state();

    // A distinct compilation of the *same* texts is still a different
    // engine: resuming there would run the wrong compiled programs.
    let state = match other.resume(state) {
        Ok(_) => panic!("foreign engine must refuse a parked state"),
        Err(state) => state,
    };

    // A clone shares the fused program, hence the identity token.
    let clone = engine.clone();
    let mut revived = match clone.resume(state) {
        Ok(session) => session,
        Err(_) => panic!("clone shares identity with its original"),
    };
    revived.close(SimTime::from_ns(10));
    let expected = fresh_outcome(
        &engine,
        &[TimedEvent::new(universe[0], SimTime::from_ns(5))],
        SimTime::from_ns(10),
    );
    assert_eq!(revived.verdict(0), expected[0].0);
}
