//! Value-generation strategies (stand-in for `proptest::strategy`).
//!
//! A [`Strategy`] here is just a deterministic generator: no value tree, no
//! shrinking. `generate` takes `&self` so one strategy can be reused across
//! cases, exactly as the real crate's `new_tree` does.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// Something that can produce random values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
