//! Monitor for antecedent requirements `A = (P << i, b)` (paper Def. 4).
//!
//! The trigger `i` is the stop set of `P`'s linear recognizer chain: when
//! the last fragment completes *on* `i`, the occurrence of `i` is validated.
//! With `repeated = true` the chain restarts and the next `i` needs a fresh
//! `P`; with `repeated = false` the monitor passivates — the property is
//! irrevocably [`Verdict::Satisfied`].

use lomon_trace::{NameSet, SimTime, TimedEvent};

use crate::ast::Antecedent;
use crate::compose::{LooseOrderingRecognizer, OrderingStep};
use crate::verdict::{Monitor, Verdict, Violation};
use crate::witness::{FlightRecorder, Witness};

/// The direct (Drct) monitor for an antecedent requirement.
///
/// # Example
///
/// ```
/// use lomon_core::ast::{Antecedent, Fragment, FragmentOp, LooseOrdering, Range};
/// use lomon_core::antecedent::AntecedentMonitor;
/// use lomon_core::verdict::{run_to_end, Monitor, Verdict};
/// use lomon_trace::{Trace, Vocabulary};
///
/// let mut voc = Vocabulary::new();
/// let a = voc.input("set_imgAddr");
/// let b = voc.input("set_glAddr");
/// let start = voc.input("start");
/// let prop = Antecedent::new(
///     LooseOrdering::new(vec![Fragment::new(
///         FragmentOp::All,
///         vec![Range::once(a), Range::once(b)],
///     )]),
///     start,
///     false,
/// );
/// let mut monitor = AntecedentMonitor::new(prop);
/// let verdict = run_to_end(&mut monitor, &Trace::from_names([b, a, start]));
/// assert_eq!(verdict, Verdict::Satisfied);
/// ```
#[derive(Debug, Clone)]
pub struct AntecedentMonitor {
    property: Antecedent,
    recognizer: LooseOrderingRecognizer,
    alphabet: NameSet,
    verdict: Verdict,
    violation: Option<Violation>,
    episodes: u64,
    diagnostics: bool,
    last_expected: NameSet,
    ops: u64,
    /// Explain mode: the bounded ring of contributing steps (see
    /// [`crate::witness`]); `None` keeps observation untouched.
    recorder: Option<Box<FlightRecorder>>,
    /// Attributing mode: record full cell/transition attribution instead
    /// of the live raw `(time, event)` chain. Only set on the fresh clones
    /// [`Monitor::witness`] replays a chain through.
    attribute: bool,
}

impl AntecedentMonitor {
    /// Build and activate the monitor.
    ///
    /// The property must be well-formed (see [`crate::wf`]); monitors built
    /// through [`crate::monitor::build_monitor`] are validated first.
    pub fn new(property: Antecedent) -> Self {
        let stop: NameSet = [property.trigger].into_iter().collect();
        let mut recognizer = LooseOrderingRecognizer::new_linear(&property.antecedent, &stop);
        recognizer.start();
        let alphabet = property.alpha();
        let mut monitor = AntecedentMonitor {
            property,
            recognizer,
            alphabet,
            verdict: Verdict::PresumablySatisfied,
            violation: None,
            episodes: 0,
            diagnostics: true,
            last_expected: NameSet::new(),
            ops: 0,
            recorder: None,
            attribute: false,
        };
        monitor.snapshot_expected();
        monitor
    }

    /// Disable the per-event expected-set snapshot (diagnostics). Violation
    /// reports then carry an empty expected set; per-event cost drops to
    /// the recognizers alone. Used by the benchmarks.
    pub fn without_diagnostics(mut self) -> Self {
        self.diagnostics = false;
        self.last_expected = NameSet::new();
        self
    }

    /// The monitored property.
    pub fn property(&self) -> &Antecedent {
        &self.property
    }

    /// Completed `P << i` episodes so far.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Episodes in which the antecedent obligation was discharged (for an
    /// antecedent property every completed episode is a satisfied one).
    pub fn satisfied_episodes(&self) -> u64 {
        self.episodes
    }

    fn snapshot_expected(&mut self) {
        if self.diagnostics {
            self.last_expected = self.recognizer.expected();
        }
    }
}

/// Witness support shared by the two interp monitors: snapshot the active
/// fragment's `(state, count)` pairs before a recognizer step, and diff
/// after it to attribute the event to the first changed cell (the same
/// rule the compiled backend applies over its arena).
pub(crate) fn witness_snapshot(
    recorder: &mut Option<Box<FlightRecorder>>,
    recognizer: &LooseOrderingRecognizer,
) -> Option<(usize, u32)> {
    let rec = recorder.as_deref_mut()?;
    let active = recognizer.active_index();
    let frags = recognizer.fragments();
    let base: usize = frags[..active].iter().map(|f| f.ranges().len()).sum();
    let scratch = rec.begin_scratch();
    for r in frags[active].ranges() {
        scratch.push((r.state().code(), r.count()));
    }
    Some((active, base as u32))
}

/// Record the post-step diff against a [`witness_snapshot`].
pub(crate) fn witness_record(
    recorder: &mut Option<Box<FlightRecorder>>,
    recognizer: &LooseOrderingRecognizer,
    event: TimedEvent,
    snap: (usize, u32),
) {
    let (active, base) = snap;
    if let Some(rec) = recorder.as_deref_mut() {
        let post = recognizer.fragments()[active]
            .ranges()
            .iter()
            .map(|r| (r.state().code(), r.count()));
        rec.record_diff(event, base, post);
    }
}

impl Monitor for AntecedentMonitor {
    fn observe(&mut self, event: TimedEvent) -> Verdict {
        if self.verdict.is_final() {
            return self.verdict;
        }
        self.ops += 1; // alphabet projection test
        if !self.alphabet.contains(event.name) {
            return self.verdict;
        }
        let snap = if self.attribute {
            witness_snapshot(&mut self.recorder, &self.recognizer)
        } else {
            None
        };
        let step = self.recognizer.step(event.name);
        if let Some(snap) = snap {
            witness_record(&mut self.recorder, &self.recognizer, event, snap);
        } else if let Some(rec) = self.recorder.as_deref_mut() {
            rec.record_event(event);
        }
        match step {
            OrderingStep::Progress | OrderingStep::Handover { .. } => {
                self.verdict = Verdict::PresumablySatisfied;
                self.snapshot_expected();
            }
            OrderingStep::Complete => {
                self.episodes += 1;
                self.ops += 1; // repeated-flag test
                if self.property.repeated {
                    self.recognizer.restart();
                    self.verdict = Verdict::PresumablySatisfied;
                    self.snapshot_expected();
                } else {
                    self.verdict = Verdict::Satisfied;
                }
            }
            OrderingStep::Error {
                kind,
                fragment,
                range,
            } => {
                self.verdict = Verdict::Violated;
                self.violation = Some(Violation {
                    kind,
                    event: Some(event),
                    time: event.time,
                    expected: std::mem::take(&mut self.last_expected),
                    detail: format!(
                        "antecedent episode {}: fragment {}/{}, range {} rejected",
                        self.episodes + 1,
                        fragment + 1,
                        self.property.antecedent.fragments.len(),
                        range + 1,
                    ),
                    obligation: None,
                });
            }
        }
        self.verdict
    }

    fn finish(&mut self, _end_time: SimTime) -> Verdict {
        // Antecedent requirements are pure safety: every consistent prefix
        // is acceptable, so the verdict is whatever has been latched.
        self.verdict
    }

    fn verdict(&self) -> Verdict {
        self.verdict
    }

    fn alphabet(&self) -> &NameSet {
        &self.alphabet
    }

    fn expected(&self) -> NameSet {
        if self.verdict == Verdict::Satisfied {
            // Passive: everything in α is acceptable.
            self.alphabet.clone()
        } else {
            // The trigger is acceptable exactly when the last fragment can
            // complete, which the recognizer's Ac sets already cover.
            self.recognizer.expected()
        }
    }

    fn violation(&self) -> Option<&Violation> {
        self.violation.as_ref()
    }

    fn reset(&mut self) {
        self.recognizer.restart();
        self.verdict = Verdict::PresumablySatisfied;
        self.violation = None;
        self.episodes = 0;
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.clear();
        }
        self.snapshot_expected();
    }

    fn ops(&self) -> u64 {
        self.ops + self.recognizer.ops()
    }

    fn state_bits(&self) -> u64 {
        // Recognizers + verdict (2 bits) + episode handling flag.
        self.recognizer.state_bits() + 2 + 1
    }

    fn set_explain(&mut self, capacity: usize) {
        self.recorder = if capacity == 0 {
            None
        } else {
            Some(Box::new(FlightRecorder::new(capacity)))
        };
    }

    fn witness(&self) -> Option<Witness> {
        let raw = self.recorder.as_deref().map(FlightRecorder::snapshot)?;
        if self.attribute {
            return Some(raw);
        }
        Some(crate::witness::reattribute(self, raw, |m, capacity| {
            m.attribute = true;
            m.set_explain(capacity);
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Fragment, FragmentOp, LooseOrdering, Range};
    use crate::verdict::{run_to_end, ViolationKind};
    use lomon_trace::{Name, Trace, Vocabulary};

    /// Paper Example 2:
    /// `(({set_imgAddr, set_glAddr, set_glSize}, ∧) << start, false)`.
    struct Ex2 {
        img: Name,
        gl: Name,
        sz: Name,
        start: Name,
        other: Name,
        monitor: AntecedentMonitor,
    }

    fn example2() -> Ex2 {
        let mut voc = Vocabulary::new();
        let img = voc.input("set_imgAddr");
        let gl = voc.input("set_glAddr");
        let sz = voc.input("set_glSize");
        let start = voc.input("start");
        let other = voc.input("unrelated");
        let prop = Antecedent::new(
            LooseOrdering::new(vec![Fragment::new(
                FragmentOp::All,
                vec![Range::once(img), Range::once(gl), Range::once(sz)],
            )]),
            start,
            false,
        );
        Ex2 {
            img,
            gl,
            sz,
            start,
            other,
            monitor: AntecedentMonitor::new(prop),
        }
    }

    fn repeated_single(n_min: u32, n_max: u32) -> (Name, Name, AntecedentMonitor) {
        let mut voc = Vocabulary::new();
        let n = voc.input("n");
        let i = voc.input("i");
        let prop = Antecedent::new(
            LooseOrdering::new(vec![Fragment::singleton(Range::new(n, n_min, n_max))]),
            i,
            true,
        );
        (n, i, AntecedentMonitor::new(prop))
    }

    #[test]
    fn example2_accepts_any_order() {
        for perm in [[0usize, 1, 2], [2, 1, 0], [1, 0, 2]] {
            let mut e = example2();
            let names = [e.img, e.gl, e.sz];
            let seq: Vec<Name> = perm.iter().map(|&k| names[k]).chain([e.start]).collect();
            let verdict = run_to_end(&mut e.monitor, &Trace::from_names(seq));
            assert_eq!(verdict, Verdict::Satisfied, "perm {perm:?}");
        }
    }

    #[test]
    fn example2_rejects_missing_register() {
        let mut e = example2();
        let verdict = run_to_end(&mut e.monitor, &Trace::from_names([e.img, e.gl, e.start]));
        assert_eq!(verdict, Verdict::Violated);
        let v = e.monitor.violation().expect("violation report");
        assert_eq!(v.kind, ViolationKind::MissingRange);
    }

    #[test]
    fn example2_rejects_start_first() {
        let mut e = example2();
        let verdict = run_to_end(&mut e.monitor, &Trace::from_names([e.start]));
        assert_eq!(verdict, Verdict::Violated);
        // start is the stop name of the only fragment: premature stop.
        assert_eq!(
            e.monitor.violation().unwrap().kind,
            ViolationKind::PrematureStop
        );
    }

    #[test]
    fn example2_once_passivates_after_start() {
        let mut e = example2();
        // After a validated start, anything goes (b = false).
        let trace = Trace::from_names([e.img, e.gl, e.sz, e.start, e.start, e.img, e.img]);
        let verdict = run_to_end(&mut e.monitor, &trace);
        assert_eq!(verdict, Verdict::Satisfied);
        assert_eq!(e.monitor.episodes(), 1);
    }

    #[test]
    fn events_outside_alphabet_are_ignored() {
        let mut e = example2();
        let trace = Trace::from_names([e.other, e.img, e.other, e.gl, e.sz, e.other, e.start]);
        assert_eq!(run_to_end(&mut e.monitor, &trace), Verdict::Satisfied);
    }

    #[test]
    fn duplicate_register_write_before_trigger_errs() {
        let mut e = example2();
        let verdict = run_to_end(&mut e.monitor, &Trace::from_names([e.img, e.img]));
        // img[1,1] exceeded: TooMany.
        assert_eq!(verdict, Verdict::Violated);
        assert_eq!(e.monitor.violation().unwrap().kind, ViolationKind::TooMany);
    }

    #[test]
    fn repeated_requires_fresh_p_for_each_i() {
        let (n, i, mut monitor) = repeated_single(1, 1);
        // n i n i — fine.
        assert_eq!(
            run_to_end(&mut monitor, &Trace::from_names([n, i, n, i])),
            Verdict::PresumablySatisfied
        );
        assert_eq!(monitor.episodes(), 2);
        // n i i — second i has no fresh P.
        monitor.reset();
        assert_eq!(
            run_to_end(&mut monitor, &Trace::from_names([n, i, i])),
            Verdict::Violated
        );
        assert_eq!(
            monitor.violation().unwrap().kind,
            ViolationKind::PrematureStop
        );
    }

    #[test]
    fn repeated_with_range_counts_per_episode() {
        let (n, i, mut monitor) = repeated_single(2, 3);
        assert_eq!(
            run_to_end(&mut monitor, &Trace::from_names([n, n, i, n, n, n, i])),
            Verdict::PresumablySatisfied
        );
        monitor.reset();
        // Second episode has only one n.
        assert_eq!(
            run_to_end(&mut monitor, &Trace::from_names([n, n, i, n, i])),
            Verdict::Violated
        );
    }

    #[test]
    fn verdict_latches_after_violation() {
        let (n, i, mut monitor) = repeated_single(1, 1);
        let t = Trace::from_names([i]);
        assert_eq!(run_to_end(&mut monitor, &t), Verdict::Violated);
        // Feeding more events does not resurrect it.
        let more = Trace::from_names([n, i]);
        for &e in more.iter() {
            assert_eq!(monitor.observe(e), Verdict::Violated);
        }
    }

    #[test]
    fn mid_episode_verdict_is_presumably_satisfied() {
        let mut e = example2();
        e.monitor.observe(lomon_trace::TimedEvent::new(
            e.img,
            lomon_trace::SimTime::from_ns(1),
        ));
        assert_eq!(e.monitor.verdict(), Verdict::PresumablySatisfied);
        assert!(!e.monitor.verdict().is_final());
    }

    #[test]
    fn expected_reflects_progress() {
        let mut e = example2();
        let exp = e.monitor.expected();
        assert!(exp.contains(e.img) && exp.contains(e.gl) && exp.contains(e.sz));
        e.monitor.observe(lomon_trace::TimedEvent::new(
            e.img,
            lomon_trace::SimTime::from_ns(1),
        ));
        let exp = e.monitor.expected();
        assert!(!exp.contains(e.img));
        assert!(exp.contains(e.gl) && exp.contains(e.sz));
    }

    #[test]
    fn violation_report_carries_expected_set() {
        let mut e = example2();
        run_to_end(&mut e.monitor, &Trace::from_names([e.img, e.start]));
        let v = e.monitor.violation().unwrap();
        assert!(v.expected.contains(e.gl) && v.expected.contains(e.sz));
        assert!(!v.expected.contains(e.start));
        assert!(v.detail.contains("fragment 1/1"));
    }

    #[test]
    fn without_diagnostics_still_detects() {
        let mut e = example2();
        e.monitor = e.monitor.clone().without_diagnostics();
        let verdict = run_to_end(&mut e.monitor, &Trace::from_names([e.start]));
        assert_eq!(verdict, Verdict::Violated);
        assert!(e.monitor.violation().unwrap().expected.is_empty());
    }

    #[test]
    fn reset_restores_initial_behaviour() {
        let mut e = example2();
        run_to_end(&mut e.monitor, &Trace::from_names([e.start]));
        assert_eq!(e.monitor.verdict(), Verdict::Violated);
        e.monitor.reset();
        assert_eq!(e.monitor.verdict(), Verdict::PresumablySatisfied);
        assert!(e.monitor.violation().is_none());
        let verdict = run_to_end(
            &mut e.monitor,
            &Trace::from_names([e.img, e.gl, e.sz, e.start]),
        );
        assert_eq!(verdict, Verdict::Satisfied);
    }

    #[test]
    fn instrumentation_counts() {
        let mut e = example2();
        let bits = e.monitor.state_bits();
        assert!(bits > 0);
        run_to_end(&mut e.monitor, &Trace::from_names([e.img, e.gl]));
        assert!(e.monitor.ops() > 0);
        assert_eq!(e.monitor.state_bits(), bits);
    }
}
