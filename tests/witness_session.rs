//! Session-level witness properties, on random rulebooks × random traces
//! across both dispatch modes and all three backends:
//!
//! * a detached session's report renders **byte-identically** whether
//!   explain support was never enabled or enabled and then detached —
//!   explain mode off is free and invisible;
//! * explain mode observes, never perturbs: verdicts, violations and
//!   dispatch ops match the detached session exactly;
//! * the witness chains a report carries are identical across the fused,
//!   compiled and interp backends *and* across indexed vs broadcast
//!   dispatch — skipping monitors via the subscription index loses no
//!   provenance.

use proptest::prelude::*;

use lomon::core::ast::{
    Antecedent, Fragment, FragmentOp, LooseOrdering, Property, Range, TimedImplication,
};
use lomon::core::verdict::Verdict;
use lomon::core::wf;
use lomon::core::witness::Witness;
use lomon::engine::{Backend, DispatchMode, Engine, EngineReport};
use lomon::trace::{Name, SimTime, TimedEvent, Vocabulary};

/// A compact random-pattern description (same shape as the core suites').
#[derive(Debug, Clone)]
struct PatternSpec {
    fragments: Vec<(bool, Vec<(u32, u32)>)>,
    repeated: bool,
}

fn fragment_strategy(max_ranges: usize) -> impl Strategy<Value = (bool, Vec<(u32, u32)>)> {
    (
        any::<bool>(),
        prop::collection::vec((1u32..=3, 0u32..=2), 1..=max_ranges),
    )
}

fn pattern_strategy() -> impl Strategy<Value = PatternSpec> {
    (
        prop::collection::vec(fragment_strategy(2), 1..=2),
        any::<bool>(),
    )
        .prop_map(|(fragments, repeated)| PatternSpec {
            fragments,
            repeated,
        })
}

fn build_ordering(
    spec: &[(bool, Vec<(u32, u32)>)],
    voc: &mut Vocabulary,
    prefix: &str,
    output: bool,
) -> LooseOrdering {
    let mut counter = 0;
    let fragments = spec
        .iter()
        .map(|(any_op, ranges)| {
            let op = if *any_op {
                FragmentOp::Any
            } else {
                FragmentOp::All
            };
            let ranges = ranges
                .iter()
                .map(|&(u, extra)| {
                    let text = format!("{prefix}{counter}");
                    let name = if output {
                        voc.output(&text)
                    } else {
                        voc.input(&text)
                    };
                    counter += 1;
                    Range::new(name, u, u + extra)
                })
                .collect();
            Fragment::new(op, ranges)
        })
        .collect();
    LooseOrdering::new(fragments)
}

/// A rulebook of well-formed property texts: one antecedent, one timed
/// implication, and a duplicate of the antecedent so the fused backend
/// actually shares a group (witnesses must fan out to every member).
fn build_rulebook(a: &PatternSpec, t: &PatternSpec) -> Option<(Vec<String>, Vocabulary)> {
    let mut voc = Vocabulary::new();
    let antecedent: Property = {
        let ordering = build_ordering(&a.fragments, &mut voc, "n", false);
        let trigger = voc.input("trigger");
        Antecedent::new(ordering, trigger, a.repeated).into()
    };
    let timed: Property = {
        let premise = build_ordering(&a.fragments, &mut voc, "p", false);
        let response = build_ordering(&t.fragments, &mut voc, "q", true);
        TimedImplication::new(premise, response, SimTime::from_ns(8)).into()
    };
    if !wf::check(&antecedent, &voc).is_empty() || !wf::check(&timed, &voc).is_empty() {
        return None;
    }
    let a_text = antecedent.display(&voc);
    let texts = vec![a_text.clone(), timed.display(&voc), a_text];
    Some((texts, voc))
}

fn events_from_indices(indices: &[usize], universe: &[Name]) -> Vec<TimedEvent> {
    indices
        .iter()
        .enumerate()
        .map(|(k, &ix)| {
            TimedEvent::new(
                universe[ix % universe.len()],
                SimTime::from_ns(k as u64 + 1),
            )
        })
        .collect()
}

/// Run one (mode, backend) session and report; optionally armed.
fn run_session(
    engine: &Engine,
    mode: DispatchMode,
    backend: Backend,
    events: &[TimedEvent],
    end: SimTime,
    explain: Option<usize>,
) -> EngineReport {
    let mut session = engine.session_with_backend(mode, backend);
    if let Some(capacity) = explain {
        session.enable_explain(capacity);
    }
    session.ingest_batch(events);
    session.finish(end)
}

/// The witness chains of a report, by property index.
fn witnesses(report: &EngineReport) -> Vec<Option<Witness>> {
    report
        .properties
        .iter()
        .map(|p| p.witness.clone())
        .collect()
}

fn check_rulebook(texts: &[String], indices: &[usize], capacity: usize) {
    let mut voc = Vocabulary::new();
    let Ok(engine) = Engine::compile(texts, &mut voc) else {
        return;
    };
    voc.input("noise");
    let universe: Vec<Name> = voc.iter().collect();
    let events = events_from_indices(indices, &universe);
    let end = SimTime::from_ns(events.len() as u64 + 4);

    let modes = [DispatchMode::Indexed, DispatchMode::Broadcast];
    let backends = [Backend::Fused, Backend::Compiled, Backend::Interp];
    let mut all_witnesses: Vec<Vec<Option<Witness>>> = Vec::new();
    for mode in modes {
        for backend in backends {
            // Never-enabled vs enabled-then-detached: byte-identical
            // renderings, both human and NDJSON.
            let plain = run_session(&engine, mode, backend, &events, end, None);
            let detached = run_session(&engine, mode, backend, &events, end, Some(0));
            assert_eq!(
                plain.render(&voc),
                detached.render(&voc),
                "detached explain changed the text report ({mode:?}/{backend:?})"
            );
            assert_eq!(
                plain.render_json(&voc),
                detached.render_json(&voc),
                "detached explain changed the JSON report ({mode:?}/{backend:?})"
            );
            assert!(
                plain.properties.iter().all(|p| p.witness.is_none()),
                "detached session reported a witness"
            );

            // Explain-on: verdicts and violations must not move.
            let explained = run_session(&engine, mode, backend, &events, end, Some(capacity));
            for (p, e) in plain.properties.iter().zip(&explained.properties) {
                assert_eq!(p.verdict, e.verdict, "explain changed a verdict");
                assert_eq!(
                    format!("{:?}", p.violation),
                    format!("{:?}", e.violation),
                    "explain changed a violation"
                );
                assert_eq!(
                    e.witness.is_some(),
                    e.verdict == Verdict::Violated,
                    "witness present iff violated"
                );
            }
            all_witnesses.push(witnesses(&explained));
        }
    }
    // Provenance identity across every (mode, backend) combination —
    // including the fused group fan-out to the duplicate member.
    for other in &all_witnesses[1..] {
        assert_eq!(
            &all_witnesses[0], other,
            "witness chains differ across dispatch modes or backends"
        );
    }
    for w in all_witnesses[0].iter().flatten() {
        assert!(
            !w.steps.is_empty() || w.dropped > 0 || events.is_empty(),
            "violated property carries an empty chain"
        );
    }
}

/// Deterministic pin: the generator pipeline produces compilable
/// rulebooks, and a violating trace yields a witness through the full
/// session path. Guards against the proptest silently rejecting
/// everything (e.g. a display/parse round-trip break).
#[test]
fn generator_pipeline_produces_witnesses() {
    let spec = PatternSpec {
        fragments: vec![(false, vec![(1, 0), (1, 0)])],
        repeated: false,
    };
    let (texts, _) = build_rulebook(&spec, &spec).expect("default spec is well-formed");
    let mut voc = Vocabulary::new();
    let engine = Engine::compile(&texts, &mut voc).expect("rulebook round-trips");
    // `n1` before `n0` cannot violate the ∧ fragment, but `trigger` with
    // `n1` missing can — drive property 0 (and its duplicate) violated.
    let n0 = voc.lookup("n0").expect("interned");
    let trigger = voc.lookup("trigger").expect("interned");
    let events = [
        TimedEvent::new(n0, SimTime::from_ns(1)),
        TimedEvent::new(trigger, SimTime::from_ns(2)),
    ];
    let report = run_session(
        &engine,
        DispatchMode::Indexed,
        Backend::Fused,
        &events,
        SimTime::from_ns(10),
        Some(16),
    );
    assert_eq!(report.properties[0].verdict, Verdict::Violated);
    let witness = report.properties[0]
        .witness
        .as_ref()
        .expect("explain session reports a witness");
    assert_eq!(witness.steps.len(), 2);
    assert_eq!(
        report.properties[2].witness, report.properties[0].witness,
        "fused duplicate member shares the group witness"
    );
    check_rulebook(&texts, &[0, 1, 2, 3, 4, 0, 1, 2], 16);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sessions_agree_on_witnesses_and_stay_clean_when_off(
        a in pattern_strategy(),
        t in pattern_strategy(),
        indices in prop::collection::vec(0usize..12, 0..20),
        capacity in 1usize..=24,
    ) {
        if let Some((texts, _)) = build_rulebook(&a, &t) {
            check_rulebook(&texts, &indices, capacity);
        }
    }
}
