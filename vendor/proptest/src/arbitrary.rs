//! `any::<T>()` for primitives (stand-in for `proptest::arbitrary`).

use std::marker::PhantomData;

use rand::{Rng, RngCore};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A` over its whole domain.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII (readable failure output), occasionally any scalar.
        if rng.gen_bool(0.9) {
            char::from(rng.gen_range(0x20u8..0x7f))
        } else {
            char::from_u32(rng.gen_range(0u32..=char::MAX as u32)).unwrap_or('\u{fffd}')
        }
    }
}
