//! The streaming event-line grammar shared by `lomon watch` and
//! `lomon serve`.
//!
//! Both stream surfaces accept the same two line formats —
//!
//! * the trace text format, `<time> <in|out> <name>` with an optional
//!   `end <time>` marker (one source of truth with
//!   [`read_trace`](crate::read_trace), via
//!   [`parse_trace_line`](crate::parse_trace_line)); and
//! * NDJSON: one flat JSON object per line,
//!   `{"time": "10ns", "dir": "in", "name": "x"}` or `{"end": "500ns"}`
//!
//! — and parse them into the same [`StreamLine`]. Keeping the grammar
//! here (rather than in the CLI binary) is what guarantees a frame that
//! `watch` accepts is byte-for-byte a frame `serve` accepts.

use crate::name::Direction;
use crate::time::{parse_sim_time, SimTime};

/// Input format of an event stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StreamFormat {
    /// The trace text format: `<time> <in|out> <name>`, optional `end <t>`.
    Trace,
    /// One flat JSON object per line:
    /// `{"time": "10ns", "dir": "in", "name": "x"}` or `{"end": "500ns"}`.
    Ndjson,
}

/// One parsed stream line.
#[derive(Debug, PartialEq, Eq)]
pub enum StreamLine {
    /// An interface event.
    Event {
        /// Timestamp of the occurrence.
        time: SimTime,
        /// Interface direction the name will be interned with.
        direction: Direction,
        /// The interface name, still raw text (interning needs a mutable
        /// vocabulary the parser does not have).
        name: String,
    },
    /// An `end`/`{"end": …}` marker: observation time advanced with no
    /// event.
    End(SimTime),
}

/// Parse one stream line in the given format. `Ok(None)` is a blank line
/// or comment — skippable, not an error.
///
/// # Errors
///
/// A human-readable description of the first grammar fault on the line.
pub fn parse_stream_line(format: StreamFormat, line: &str) -> Result<Option<StreamLine>, String> {
    match format {
        StreamFormat::Trace => parse_stream_trace_line(line),
        StreamFormat::Ndjson => parse_ndjson_line(line),
    }
}

/// Parse one line of the trace text format, delegating the grammar to
/// [`parse_trace_line`](crate::parse_trace_line) (one source of truth
/// with [`read_trace`](crate::read_trace)).
///
/// # Errors
///
/// See [`parse_stream_line`].
pub fn parse_stream_trace_line(line: &str) -> Result<Option<StreamLine>, String> {
    Ok(
        crate::io::parse_trace_line(line)?.map(|parsed| match parsed {
            crate::io::TraceLine::Event {
                time,
                direction,
                name,
            } => StreamLine::Event {
                time,
                direction,
                name: name.to_owned(),
            },
            crate::io::TraceLine::End(time) => StreamLine::End(time),
        }),
    )
}

/// Parse one NDJSON stream line: a flat JSON object with string values,
/// either `{"time": …, "dir": …, "name": …}` (`dir` optional, default
/// `in`) or `{"end": …}`.
///
/// # Errors
///
/// See [`parse_stream_line`].
pub fn parse_ndjson_line(line: &str) -> Result<Option<StreamLine>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    let pairs = parse_flat_json(trimmed)?;
    let field = |key: &str| -> Option<&str> {
        pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    };
    if let Some(end) = field("end") {
        return Ok(Some(StreamLine::End(parse_sim_time(end)?)));
    }
    let time_text = field("time").ok_or("missing `time` field")?;
    let time = parse_sim_time(time_text)?;
    let direction = match field("dir") {
        None | Some("in") => Direction::Input,
        Some("out") => Direction::Output,
        Some(other) => {
            return Err(format!(
                "unknown direction `{other}` (expected `in` or `out`)"
            ))
        }
    };
    let name = field("name").ok_or("missing `name` field")?.to_owned();
    if name.is_empty() {
        return Err("empty event name".into());
    }
    Ok(Some(StreamLine::Event {
        time,
        direction,
        name,
    }))
}

/// Minimal flat-JSON-object parser: `{"key": "value", …}` with string
/// values only (`\"`, `\\`, `\n`, `\t` escapes). Enough for an event
/// stream; a full JSON parser would be an external dependency.
///
/// # Errors
///
/// A human-readable description of the first syntax fault.
pub fn parse_flat_json(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut chars = text.chars().peekable();
    let mut pairs = Vec::new();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
        while chars.next_if(|c| c.is_whitespace()).is_some() {}
    }
    fn string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
        skip_ws(chars);
        if chars.next() != Some('"') {
            return Err("expected `\"`".into());
        }
        let mut out = String::new();
        loop {
            match chars.next() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(out),
                Some('\\') => match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    other => return Err(format!("unsupported escape `\\{other:?}`")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("expected `{`".into());
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
    } else {
        loop {
            let key = string(&mut chars)?;
            skip_ws(&mut chars);
            if chars.next() != Some(':') {
                return Err(format!("expected `:` after key `{key}`"));
            }
            let value = string(&mut chars)?;
            pairs.push((key, value));
            skip_ws(&mut chars);
            match chars.next() {
                Some(',') => continue,
                Some('}') => break,
                _ => return Err("expected `,` or `}`".into()),
            }
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing characters after object".into());
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndjson_event_with_default_direction() {
        let line = r#"{"time": "10ns", "name": "set_imgAddr"}"#;
        let parsed = parse_ndjson_line(line).expect("parses").expect("a line");
        assert_eq!(
            parsed,
            StreamLine::Event {
                time: SimTime::from_ns(10),
                direction: Direction::Input,
                name: "set_imgAddr".into(),
            }
        );
    }

    #[test]
    fn ndjson_end_marker() {
        let parsed = parse_ndjson_line(r#"{"end": "500ns"}"#).expect("parses");
        assert_eq!(parsed, Some(StreamLine::End(SimTime::from_ns(500))));
    }

    #[test]
    fn blank_lines_are_skipped_in_both_formats() {
        for format in [StreamFormat::Trace, StreamFormat::Ndjson] {
            assert_eq!(parse_stream_line(format, "   "), Ok(None));
        }
        assert_eq!(
            parse_stream_line(StreamFormat::Trace, "# comment"),
            Ok(None)
        );
    }

    #[test]
    fn faults_name_the_problem() {
        assert!(parse_ndjson_line(r#"{"time": "10ns"}"#)
            .unwrap_err()
            .contains("name"));
        assert!(
            parse_ndjson_line(r#"{"time": "10ns", "dir": "sideways", "name": "x"}"#)
                .unwrap_err()
                .contains("sideways")
        );
        assert!(parse_ndjson_line("not json").is_err());
        assert!(parse_ndjson_line(r#"{"time": "10ns", "name": ""}"#).is_err());
        assert!(parse_stream_line(StreamFormat::Trace, "10ns sideways x").is_err());
    }

    #[test]
    fn trace_and_ndjson_agree_on_the_same_event() {
        let a = parse_stream_line(StreamFormat::Trace, "10ns out done").unwrap();
        let b = parse_stream_line(
            StreamFormat::Ndjson,
            r#"{"time": "10ns", "dir": "out", "name": "done"}"#,
        )
        .unwrap();
        assert_eq!(a, b);
    }
}
