//! Wire-speed byte-slice decode of the trace text grammar.
//!
//! The string-based readers in [`crate::io`] pay three per-line costs that
//! dominate end-to-end monitoring throughput once the fused backend steps
//! events in a handful of nanoseconds: a `String` per line (streaming
//! readers), a `String` per name (`StreamLine::Event`), and a `SipHash`
//! vocabulary probe per event. This module makes **bytes → pre-resolved
//! events** the optimized unit instead:
//!
//! * [`parse_trace_line_bytes`] lexes one line straight from a `&[u8]`
//!   buffer, borrowing the name out of the input (no allocation). Lines
//!   containing non-ASCII bytes — the only place where byte-wise and
//!   `char`-wise whitespace handling could diverge — fall back to the
//!   string parser, so semantics and error text are identical by
//!   construction (a differential proptest suite pins this).
//! * [`read_trace_bytes`] / [`read_trace_bytes_into`] are the whole-buffer
//!   equivalents of [`crate::read_trace`], feeding `lomon check`'s
//!   mmap-backed file ingest and reusing one [`Trace`] allocation across
//!   files.
//! * [`decode_events_into`] is the frozen-vocabulary hot path: names are
//!   resolved against [`Vocabulary::lookup_bytes`]'s precomputed byte-keyed
//!   table and emitted as pre-resolved `u32` ids into a caller-owned,
//!   reusable `Vec<TimedEvent>` — the decode half of the `wire_speed`
//!   benchmark's bytes-in/verdicts-out loop.
//!
//! Instrumented variants record into [`IoMetrics`] once per buffer, never
//! per byte, which keeps decode telemetry within the workspace-wide
//! ≤1.10× observability overhead budget (gated by `wire_speed --check`).

use std::time::Instant;

use crate::io::{parse_trace_line, IoMetrics, TraceLine, TraceParseError};
use crate::name::Direction;
use crate::{SimTime, TimedEvent, Trace, Vocabulary};

/// Iterate over the lines of a byte buffer with `str::lines` semantics:
/// lines are terminated by `\n` (a trailing `\r` is stripped, so CRLF
/// works), the final line ending is optional, and an empty buffer yields
/// nothing.
pub fn byte_lines(bytes: &[u8]) -> ByteLines<'_> {
    ByteLines { rest: bytes }
}

/// Iterator returned by [`byte_lines`].
#[derive(Debug, Clone)]
pub struct ByteLines<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for ByteLines<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.rest.is_empty() {
            return None;
        }
        match self.rest.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                let mut line = &self.rest[..nl];
                self.rest = &self.rest[nl + 1..];
                // Only `\n`-terminated lines shed a trailing `\r` (CRLF);
                // a bare `\r` on the final unterminated line stays, like
                // `str::lines`.
                if line.last() == Some(&b'\r') {
                    line = &line[..line.len() - 1];
                }
                Some(line)
            }
            None => {
                let line = self.rest;
                self.rest = &[];
                Some(line)
            }
        }
    }
}

/// ASCII whitespace, byte-for-byte what `char::is_whitespace` accepts in
/// the ASCII range: space, tab, LF, vertical tab, form feed, CR.
#[inline]
fn is_ascii_space(b: u8) -> bool {
    b == b' ' || (0x09..=0x0d).contains(&b)
}

/// Whitespace-separated fields of an ASCII line, the byte twin of
/// `str::split_whitespace` (identical on ASCII input, which the caller
/// guarantees).
struct Fields<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for Fields<'a> {
    type Item = &'a [u8];

    #[inline]
    fn next(&mut self) -> Option<&'a [u8]> {
        let mut i = 0;
        while i < self.rest.len() && is_ascii_space(self.rest[i]) {
            i += 1;
        }
        if i == self.rest.len() {
            self.rest = &[];
            return None;
        }
        let start = i;
        while i < self.rest.len() && !is_ascii_space(self.rest[i]) {
            i += 1;
        }
        let field = &self.rest[start..i];
        self.rest = &self.rest[i..];
        Some(field)
    }
}

/// View a field of a line already checked to be pure ASCII as `&str`.
#[inline]
fn ascii_str(bytes: &[u8]) -> &str {
    std::str::from_utf8(bytes).expect("caller checked the line is pure ASCII")
}

/// Byte-level twin of `crate::time::parse_sim_time` for fields known to be
/// pure ASCII and whitespace-free (they came out of [`Fields`]): one pass
/// accumulating the digits, then a unit-suffix match. Same accepted
/// inputs, same error text — the string parser's `trim`s are no-ops on a
/// whitespace-free field, and its checked `u64` parse rejects exactly the
/// overflows the accumulator flags.
#[inline]
fn parse_sim_time_bytes(field: &[u8]) -> Result<SimTime, String> {
    let mut i = 0;
    let mut value = 0u64;
    let mut overflow = false;
    while i < field.len() && field[i].is_ascii_digit() {
        let (scaled, o1) = value.overflowing_mul(10);
        let (next, o2) = scaled.overflowing_add(u64::from(field[i] - b'0'));
        overflow |= o1 | o2;
        value = next;
        i += 1;
    }
    if i == field.len() {
        return Err(format!(
            "time literal `{}` is missing a unit (ps/ns/us/ms/s)",
            ascii_str(field)
        ));
    }
    if i == 0 {
        return Err(format!(
            "time literal `{}` is missing digits",
            ascii_str(field)
        ));
    }
    if overflow {
        return Err(format!(
            "invalid number in time literal `{}`",
            ascii_str(field)
        ));
    }
    match &field[i..] {
        b"ps" => Ok(SimTime::from_ps(value)),
        b"ns" => Ok(SimTime::from_ns(value)),
        b"us" => Ok(SimTime::from_us(value)),
        b"ms" => Ok(SimTime::from_ms(value)),
        b"s" => Ok(SimTime::from_sec(value)),
        unit => Err(format!(
            "unknown time unit `{}` in `{}`",
            ascii_str(unit),
            ascii_str(field)
        )),
    }
}

/// Parse one line of the trace text format straight from bytes, borrowing
/// the event name from the input buffer. Blank lines and `#` comments
/// parse to `Ok(None)`.
///
/// Grammar, accepted inputs and error text are identical to
/// [`parse_trace_line`]: lines containing non-ASCII bytes (where Unicode
/// whitespace could make byte splitting diverge from
/// `str::split_whitespace`) are delegated to the string parser.
///
/// # Errors
///
/// Returns a human-readable message (without line number) on malformed
/// fields, or `line is not valid UTF-8` when a non-ASCII line is not
/// valid UTF-8 (callers decoding whole files validate the buffer up
/// front, so they never see that case).
#[inline]
pub fn parse_trace_line_bytes(raw: &[u8]) -> Result<Option<TraceLine<'_>>, String> {
    if !raw.is_ascii() {
        return match std::str::from_utf8(raw) {
            Ok(line) => parse_trace_line(line),
            Err(_) => Err("line is not valid UTF-8".into()),
        };
    }
    let mut fields = Fields { rest: raw };
    let Some(first) = fields.next() else {
        return Ok(None);
    };
    if first[0] == b'#' {
        return Ok(None);
    }
    if first == b"end" {
        let time_text = fields.next().ok_or("`end` requires a time")?;
        let time = parse_sim_time_bytes(time_text)?;
        if let Some(junk) = fields.next() {
            return Err(format!("unexpected trailing field `{}`", ascii_str(junk)));
        }
        return Ok(Some(TraceLine::End(time)));
    }
    let time = parse_sim_time_bytes(first)?;
    let direction = match fields.next() {
        None => return Err("missing direction (`in` or `out`)".into()),
        Some(b"in") => Direction::Input,
        Some(b"out") => Direction::Output,
        Some(other) => {
            return Err(format!(
                "unknown direction `{}` (expected `in` or `out`)",
                ascii_str(other)
            ))
        }
    };
    let Some(name) = fields.next() else {
        return Err("missing event name".into());
    };
    if let Some(junk) = fields.next() {
        return Err(format!("unexpected trailing field `{}`", ascii_str(junk)));
    }
    Ok(Some(TraceLine::Event {
        time,
        direction,
        name: ascii_str(name),
    }))
}

/// Parse a whole trace buffer with the byte lexer, interning names into
/// `voc`. Byte-level twin of [`crate::read_trace`] — same grammar, same
/// monotonicity rules, same error text and 1-based line numbers.
///
/// # Errors
///
/// Identical to [`crate::read_trace`].
pub fn read_trace_bytes(bytes: &[u8], voc: &mut Vocabulary) -> Result<Trace, TraceParseError> {
    read_trace_bytes_observed(bytes, voc, None)
}

/// [`read_trace_bytes`] with optional telemetry (lines, bytes, parse
/// errors and whole-buffer decode nanoseconds).
///
/// # Errors
///
/// Identical to [`crate::read_trace`].
pub fn read_trace_bytes_observed(
    bytes: &[u8],
    voc: &mut Vocabulary,
    metrics: Option<&IoMetrics>,
) -> Result<Trace, TraceParseError> {
    let mut trace = Trace::new();
    read_trace_bytes_into(bytes, voc, &mut trace, metrics)?;
    Ok(trace)
}

/// Decode a whole trace buffer into a caller-owned [`Trace`], clearing it
/// first but keeping its capacity — `lomon check` reuses one trace buffer
/// across every file it replays.
///
/// # Errors
///
/// Identical to [`crate::read_trace`]; on error the partially decoded
/// prefix stays in `trace` (callers treat the whole file as failed, as
/// the string reader does).
pub fn read_trace_bytes_into(
    bytes: &[u8],
    voc: &mut Vocabulary,
    trace: &mut Trace,
    metrics: Option<&IoMetrics>,
) -> Result<(), TraceParseError> {
    let started = metrics.map(|_| Instant::now());
    trace.clear();
    let mut last_time = None;
    let mut lines = 0u64;
    let mut result = Ok(());
    for (idx, raw) in byte_lines(bytes).enumerate() {
        lines += 1;
        if let Err(e) = read_one_bytes(raw, voc, trace, &mut last_time, idx + 1) {
            result = Err(e);
            break;
        }
    }
    if let Some(m) = metrics {
        m.lines.add(lines);
        m.bytes.add(bytes.len() as u64);
        if result.is_err() {
            m.parse_errors.inc();
        }
        if let Some(t0) = started {
            m.decode_ns
                .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
    result
}

fn read_one_bytes(
    raw: &[u8],
    voc: &mut Vocabulary,
    trace: &mut Trace,
    last_time: &mut Option<SimTime>,
    line_no: usize,
) -> Result<(), TraceParseError> {
    let err = |message: String| TraceParseError {
        line: line_no,
        message,
    };
    match parse_trace_line_bytes(raw).map_err(&err)? {
        None => {}
        Some(TraceLine::End(time)) => {
            if let Some(last) = *last_time {
                if time < last {
                    return Err(err(format!(
                        "end time {time} precedes last event at {last}"
                    )));
                }
            }
            trace.set_end_time(time);
            // The end time advances the clock: a later event line may
            // not jump back before it (`Trace::push` would panic).
            *last_time = Some(time);
        }
        Some(TraceLine::Event {
            time,
            direction,
            name,
        }) => {
            if let Some(last) = *last_time {
                if time < last {
                    return Err(err(format!(
                        "timestamp {time} precedes previous event at {last}"
                    )));
                }
            }
            *last_time = Some(time);
            // `intern` now probes the byte-keyed table first, so the
            // known-name fast path allocates nothing.
            let name = voc.intern(name, direction);
            trace.push(name, time);
        }
    }
    Ok(())
}

/// Outcome of a whole-buffer [`decode_events_into`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecodeSummary {
    /// Text lines consumed (including comments and blanks).
    pub lines: u64,
    /// End time recorded by a trailing `end <time>` line, if any.
    pub end_time: Option<SimTime>,
}

/// Decode a whole trace buffer against a **frozen** vocabulary into a
/// caller-owned, reusable event buffer: every name is resolved to its
/// pre-interned `u32` id via [`Vocabulary::lookup_bytes`], with zero
/// allocation per line or per event. `out` is cleared first but keeps its
/// capacity across calls.
///
/// This is the wire-speed half of the bytes→verdicts pipeline: decode a
/// buffer into `out`, hand `out` to
/// `Session::ingest_batch`, repeat with the same buffer.
///
/// # Errors
///
/// Grammar and monotonicity errors are identical to
/// [`crate::read_trace`]. Additionally, a name absent from `voc` is
/// `unknown event name `…`` — the frozen path never interns; callers
/// whose alphabet can grow (e.g. `lomon check` merging trace files)
/// use [`read_trace_bytes_into`] instead.
pub fn decode_events_into(
    bytes: &[u8],
    voc: &Vocabulary,
    out: &mut Vec<TimedEvent>,
) -> Result<DecodeSummary, TraceParseError> {
    out.clear();
    let mut summary = DecodeSummary::default();
    let mut last_time: Option<SimTime> = None;
    // Single fused pass: every byte of a well-formed event line is touched
    // exactly once (the per-line reader scans each line three times — for
    // the `\n`, for the ASCII check, and for the fields). Anything that is
    // not a perfectly regular ASCII event line — blanks, comments, `end`,
    // malformed fields, non-ASCII — drops to [`parse_trace_line_bytes`]
    // for that one line, so accepted inputs and error text stay identical
    // to the per-line path by construction.
    let mut pos = 0usize;
    let mut line_no = 0usize;
    'lines: while pos < bytes.len() {
        line_no += 1;
        let line_start = pos;
        // A labelled block, broken out of to reach the slow path: the fast
        // path bails the moment the line stops looking like
        // `time unit in|out name` with nothing but ASCII in between.
        let fast = 'fast: {
            let mut i = pos;
            while i < bytes.len() && bytes[i] != b'\n' && is_ascii_space(bytes[i]) {
                i += 1;
            }
            if i >= bytes.len() || !bytes[i].is_ascii_digit() {
                break 'fast None;
            }
            let mut value = 0u64;
            let mut overflow = false;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                let (scaled, o1) = value.overflowing_mul(10);
                let (next, o2) = scaled.overflowing_add(u64::from(bytes[i] - b'0'));
                overflow |= o1 | o2;
                value = next;
                i += 1;
            }
            if overflow {
                break 'fast None;
            }
            let unit_start = i;
            while i < bytes.len() && !is_ascii_space(bytes[i]) && bytes[i].is_ascii() {
                i += 1;
            }
            if i < bytes.len() && !bytes[i].is_ascii() {
                // A non-ASCII byte glued to the unit makes it one longer
                // (non-unit) field under `char`-wise splitting.
                break 'fast None;
            }
            let time = match &bytes[unit_start..i] {
                b"ps" => SimTime::from_ps(value),
                b"ns" => SimTime::from_ns(value),
                b"us" => SimTime::from_us(value),
                b"ms" => SimTime::from_ms(value),
                b"s" => SimTime::from_sec(value),
                _ => break 'fast None,
            };
            while i < bytes.len() && bytes[i] != b'\n' && is_ascii_space(bytes[i]) {
                i += 1;
            }
            let dir_start = i;
            while i < bytes.len() && !is_ascii_space(bytes[i]) && bytes[i].is_ascii() {
                i += 1;
            }
            if (i < bytes.len() && !bytes[i].is_ascii())
                || !matches!(&bytes[dir_start..i], b"in" | b"out")
            {
                break 'fast None;
            }
            while i < bytes.len() && bytes[i] != b'\n' && is_ascii_space(bytes[i]) {
                i += 1;
            }
            let name_start = i;
            while i < bytes.len() && !is_ascii_space(bytes[i]) && bytes[i].is_ascii() {
                i += 1;
            }
            if i == name_start || (i < bytes.len() && !bytes[i].is_ascii()) {
                break 'fast None;
            }
            let name = &bytes[name_start..i];
            while i < bytes.len() && bytes[i] != b'\n' && is_ascii_space(bytes[i]) {
                i += 1;
            }
            if i < bytes.len() && bytes[i] != b'\n' {
                break 'fast None;
            }
            Some((time, name, if i < bytes.len() { i + 1 } else { i }))
        };
        if let Some((time, name, next_pos)) = fast {
            if let Some(last) = last_time {
                if time < last {
                    return Err(TraceParseError {
                        line: line_no,
                        message: format!("timestamp {time} precedes previous event at {last}"),
                    });
                }
            }
            last_time = Some(time);
            let Some(name) = voc.lookup_bytes(name) else {
                return Err(TraceParseError {
                    line: line_no,
                    message: format!("unknown event name `{}`", ascii_str(name)),
                });
            };
            out.push(TimedEvent::new(name, time));
            summary.lines += 1;
            pos = next_pos;
            continue 'lines;
        }
        // Slow path: slice this one line with `byte_lines` semantics and
        // delegate to the per-line parser.
        let (mut raw, next_pos) = match bytes[line_start..].iter().position(|&b| b == b'\n') {
            Some(nl) => (&bytes[line_start..line_start + nl], line_start + nl + 1),
            None => (&bytes[line_start..], bytes.len()),
        };
        if next_pos > line_start + raw.len() && raw.last() == Some(&b'\r') {
            raw = &raw[..raw.len() - 1];
        }
        summary.lines += 1;
        pos = next_pos;
        let err = |message: String| TraceParseError {
            line: line_no,
            message,
        };
        match parse_trace_line_bytes(raw).map_err(err)? {
            None => {}
            Some(TraceLine::End(time)) => {
                if let Some(last) = last_time {
                    if time < last {
                        return Err(TraceParseError {
                            line: line_no,
                            message: format!("end time {time} precedes last event at {last}"),
                        });
                    }
                }
                summary.end_time = Some(time);
                last_time = Some(time);
            }
            Some(TraceLine::Event { time, name, .. }) => {
                if let Some(last) = last_time {
                    if time < last {
                        return Err(TraceParseError {
                            line: line_no,
                            message: format!("timestamp {time} precedes previous event at {last}"),
                        });
                    }
                }
                last_time = Some(time);
                let Some(name) = voc.lookup_bytes(name.as_bytes()) else {
                    return Err(TraceParseError {
                        line: line_no,
                        message: format!("unknown event name `{name}`"),
                    });
                };
                out.push(TimedEvent::new(name, time));
            }
        }
    }
    Ok(summary)
}

/// [`decode_events_into`] with optional telemetry: lines, bytes, decode
/// nanoseconds (one histogram sample for the whole buffer) and parse
/// errors. The instrumentation wraps the undecorated decoder, so the
/// per-byte hot path is byte-for-byte the uninstrumented one.
///
/// # Errors
///
/// Identical to [`decode_events_into`].
pub fn decode_events_into_observed(
    bytes: &[u8],
    voc: &Vocabulary,
    out: &mut Vec<TimedEvent>,
    metrics: Option<&IoMetrics>,
) -> Result<DecodeSummary, TraceParseError> {
    let Some(m) = metrics else {
        return decode_events_into(bytes, voc, out);
    };
    let t0 = Instant::now();
    let result = decode_events_into(bytes, voc, out);
    m.decode_ns
        .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    m.bytes.add(bytes.len() as u64);
    match &result {
        Ok(summary) => m.lines.add(summary.lines),
        Err(e) => {
            m.lines.add(e.line as u64);
            m.parse_errors.inc();
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_trace, read_trace_observed};

    #[test]
    fn byte_lines_match_str_lines() {
        for text in [
            "",
            "\n",
            "a",
            "a\n",
            "a\nb",
            "a\r\nb\r\n",
            "a\r",
            "\r\n\r\n",
            "one\n\nthree\n",
        ] {
            let from_str: Vec<&str> = text.lines().collect();
            let from_bytes: Vec<&[u8]> = byte_lines(text.as_bytes()).collect();
            assert_eq!(
                from_bytes,
                from_str.iter().map(|s| s.as_bytes()).collect::<Vec<_>>(),
                "mismatch on {text:?}"
            );
        }
    }

    #[test]
    fn byte_lexer_matches_string_parser_on_samples() {
        for line in [
            "10ns in set_imgAddr",
            "  12us  out  irq  ",
            "end 500ns",
            "# comment",
            "",
            "   ",
            "10ns sideways x",
            "banana in x",
            "10ns in",
            "10ns in x junk",
            "end",
            "end 5ns junk",
            "10ns",
            "\u{a0}10ns in x", // non-ASCII whitespace: falls back to str parser
            "10ns in caf\u{e9}",
        ] {
            let from_str = parse_trace_line(line);
            let from_bytes = parse_trace_line_bytes(line.as_bytes());
            assert_eq!(from_str, from_bytes, "mismatch on {line:?}");
        }
    }

    #[test]
    fn invalid_utf8_is_rejected_not_panicked() {
        let err = parse_trace_line_bytes(b"10ns in caf\xff").unwrap_err();
        assert!(err.contains("UTF-8"), "unexpected error: {err}");
    }

    #[test]
    fn read_trace_bytes_equals_read_trace() {
        let text = "# header\n10ns in a\n12ns out b\n\n20ns in a\nend 100ns\n";
        let mut voc_str = Vocabulary::new();
        let from_str = read_trace(text, &mut voc_str).expect("parses");
        let mut voc_bytes = Vocabulary::new();
        let from_bytes = read_trace_bytes(text.as_bytes(), &mut voc_bytes).expect("parses");
        assert_eq!(from_str, from_bytes);
        assert_eq!(voc_str.len(), voc_bytes.len());
        for name in voc_str.iter() {
            assert_eq!(voc_str.resolve(name), voc_bytes.resolve(name));
            assert_eq!(voc_str.direction(name), voc_bytes.direction(name));
        }
    }

    #[test]
    fn read_trace_bytes_reports_identical_errors() {
        for text in [
            "10ns in a\n5ns in b\n",
            "10ns sideways a\n",
            "banana in a\n",
            "end\n",
            "10ns in a\nend 5ns\n",
            "end 100ns\n10ns in a\n",
        ] {
            let mut voc_str = Vocabulary::new();
            let from_str = read_trace(text, &mut voc_str).unwrap_err();
            let mut voc_bytes = Vocabulary::new();
            let from_bytes = read_trace_bytes(text.as_bytes(), &mut voc_bytes).unwrap_err();
            assert_eq!(from_str, from_bytes, "mismatch on {text:?}");
        }
    }

    #[test]
    fn read_trace_bytes_into_reuses_the_buffer() {
        let mut voc = Vocabulary::new();
        let mut trace = Trace::new();
        read_trace_bytes_into(b"10ns in a\n20ns in b\n", &mut voc, &mut trace, None)
            .expect("parses");
        assert_eq!(trace.len(), 2);
        read_trace_bytes_into(b"30ns in a\n", &mut voc, &mut trace, None).expect("parses");
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.events()[0].time, SimTime::from_ns(30));
        assert_eq!(voc.len(), 2, "names interned once across files");
    }

    #[test]
    fn decode_events_into_resolves_against_frozen_vocabulary() {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let b = voc.output("b");
        let mut buf = Vec::new();
        let summary = decode_events_into(b"# c\n10ns in a\n20ns out b\nend 99ns\n", &voc, &mut buf)
            .expect("decodes");
        assert_eq!(summary.lines, 4);
        assert_eq!(summary.end_time, Some(SimTime::from_ns(99)));
        assert_eq!(
            buf,
            vec![
                TimedEvent::new(a, SimTime::from_ns(10)),
                TimedEvent::new(b, SimTime::from_ns(20)),
            ]
        );
        // The buffer is reusable: capacity survives, contents are replaced.
        let cap = buf.capacity();
        decode_events_into(b"30ns in a\n", &voc, &mut buf).expect("decodes");
        assert_eq!(buf.len(), 1);
        assert!(buf.capacity() >= cap.min(1));
    }

    #[test]
    fn decode_events_into_rejects_unknown_names_and_time_travel() {
        let mut voc = Vocabulary::new();
        voc.input("a");
        let mut buf = Vec::new();
        let err = decode_events_into(b"10ns in mystery\n", &voc, &mut buf).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("unknown event name `mystery`"));

        let err = decode_events_into(b"10ns in a\n5ns in a\n", &voc, &mut buf).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("precedes previous event"));

        let err = decode_events_into(b"10ns in a\nend 5ns\n", &voc, &mut buf).unwrap_err();
        assert!(err.message.contains("precedes last event"));
    }

    #[test]
    fn observed_variants_count_like_the_string_reader() {
        let registry = lomon_obs::Registry::new();
        let metrics = IoMetrics::register(&registry);
        let text = "# comment\n10ns in a\nend 20ns\n";
        let mut voc = Vocabulary::new();
        read_trace_bytes_observed(text.as_bytes(), &mut voc, Some(&metrics)).expect("parses");
        assert_eq!(metrics.lines.get(), 3);
        assert_eq!(metrics.bytes.get(), text.len() as u64);
        assert_eq!(metrics.parse_errors.get(), 0);
        assert_eq!(metrics.decode_ns.count(), 1);

        // The string reader counts the same families the same way.
        let registry2 = lomon_obs::Registry::new();
        let metrics2 = IoMetrics::register(&registry2);
        let mut voc2 = Vocabulary::new();
        read_trace_observed(text, &mut voc2, Some(&metrics2)).expect("parses");
        assert_eq!(metrics2.lines.get(), metrics.lines.get());
        assert_eq!(metrics2.bytes.get(), metrics.bytes.get());
        assert_eq!(metrics2.decode_ns.count(), 1);

        read_trace_bytes_observed(b"10ns sideways a\n", &mut voc, Some(&metrics)).unwrap_err();
        assert_eq!(metrics.parse_errors.get(), 1);

        let mut buf = Vec::new();
        decode_events_into_observed(text.as_bytes(), &voc, &mut buf, Some(&metrics))
            .expect("decodes");
        assert_eq!(metrics.decode_ns.count(), 3);
        decode_events_into_observed(b"zzz\n", &voc, &mut buf, Some(&metrics)).unwrap_err();
        assert_eq!(metrics.parse_errors.get(), 2);
    }
}
