//! Independent validation of the timed-implication semantics: a
//! brute-force episode checker (built on the untimed NFA oracle) against
//! the efficient `TimedImplicationMonitor`, on randomly generated and
//! randomly perturbed timed traces.
//!
//! Restricted to the unambiguous premise shape `P = p[1,1]` so the
//! brute-force decomposition is unique: episodes split at each `p`; the
//! end of `P` is that `p`'s timestamp; the end of `Q` is the earliest
//! prefix of the episode's responses accepted by `L(Q)`.

use proptest::prelude::*;

use lomon::core::ast::{Fragment, FragmentOp, LooseOrdering, Property, Range, TimedImplication};
use lomon::core::monitor::build_monitor;
use lomon::core::semantics::{ordering_nfa, PatternOracle};
use lomon::core::verdict::{run_to_end, Verdict};
use lomon::core::wf;
use lomon::trace::{Name, SimTime, Trace, Vocabulary};

/// Brute-force: is the (already untimed-valid) trace timing-violated?
fn brute_force_timing_violation(
    premise: Name,
    response: &LooseOrdering,
    bound: SimTime,
    trace: &Trace,
) -> bool {
    let q_nfa = ordering_nfa(response);
    let alpha = response.alpha();

    // Split into episodes at each premise event.
    let mut episodes: Vec<(SimTime, Vec<(Name, SimTime)>)> = Vec::new();
    for event in trace.iter() {
        if event.name == premise {
            episodes.push((event.time, Vec::new()));
        } else if alpha.contains(event.name) {
            if let Some((_, responses)) = episodes.last_mut() {
                responses.push((event.name, event.time));
            }
            // Responses before the first premise would be an untimed
            // violation; the caller only passes untimed-valid traces.
        }
    }

    for (premise_end, responses) in &episodes {
        let deadline = *premise_end + bound;
        // Earliest prefix of the responses that is a full member of L(Q).
        let names: Vec<Name> = responses.iter().map(|&(n, _)| n).collect();
        let earliest = (1..=names.len())
            .find(|&j| q_nfa.accepts(names[..j].iter()))
            .map(|j| responses[j - 1].1);
        match earliest {
            Some(stop) => {
                if stop > deadline {
                    return true;
                }
            }
            None => {
                // Q never completed in this episode: a miss once
                // observation outlives the deadline.
                if trace.end_time() > deadline {
                    return true;
                }
            }
        }
    }
    false
}

#[derive(Debug, Clone)]
struct ResponseSpec {
    fragments: Vec<(bool, Vec<(u32, u32)>)>,
}

fn response_strategy() -> impl Strategy<Value = ResponseSpec> {
    prop::collection::vec(
        (
            any::<bool>(),
            prop::collection::vec((1u32..=2, 0u32..=1), 1..=2),
        ),
        1..=2,
    )
    .prop_map(|fragments| ResponseSpec { fragments })
}

fn build_response(spec: &ResponseSpec, voc: &mut Vocabulary) -> LooseOrdering {
    let mut counter = 0;
    LooseOrdering::new(
        spec.fragments
            .iter()
            .map(|(any_op, ranges)| {
                let op = if *any_op {
                    FragmentOp::Any
                } else {
                    FragmentOp::All
                };
                let ranges = ranges
                    .iter()
                    .map(|&(u, extra)| {
                        let name = voc.output(&format!("q{counter}"));
                        counter += 1;
                        Range::new(name, u, u + extra)
                    })
                    .collect();
                Fragment::new(op, ranges)
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random episode structures with random (sometimes deadline-busting)
    /// gaps: the monitor must agree with the brute-force checker whenever
    /// the untimed oracle accepts, and with the untimed oracle otherwise.
    #[test]
    fn monitor_matches_brute_force_timing(
        spec in response_strategy(),
        episodes in prop::collection::vec(
            (
                // Gap before the premise event.
                1u64..2000,
                // Per-response-event gaps (consumed as needed).
                prop::collection::vec(1u64..2000, 0..10),
            ),
            1..4,
        ),
        bound_ns in 100u64..3000,
    ) {
        let mut voc = Vocabulary::new();
        let premise = voc.input("p");
        let response = build_response(&spec, &mut voc);
        let bound = SimTime::from_ns(bound_ns);
        let property: Property = TimedImplication::new(
            LooseOrdering::new(vec![Fragment::singleton(Range::once(premise))]),
            response.clone(),
            bound,
        )
        .into();
        prop_assume!(wf::check(&property, &voc).is_empty());

        // Build a trace: each episode emits p, then a response attempt
        // using the generator-free approach — walk the response NFA's
        // alphabet greedily using the per-episode gap list as both event
        // selector and timing.
        let q_names: Vec<Name> = response.alpha().iter().collect();
        let mut clock = SimTime::ZERO;
        let mut trace = Trace::new();
        for (lead, gaps) in &episodes {
            clock += SimTime::from_ns(*lead);
            trace.push(premise, clock);
            for (k, gap) in gaps.iter().enumerate() {
                clock += SimTime::from_ns(*gap);
                // Deterministic pseudo-choice of a response name.
                let name = q_names[(k * 7 + gaps.len()) % q_names.len()];
                trace.push(name, clock);
            }
        }
        trace.set_end_time(clock + SimTime::from_ns(5000));

        // Ground truth: untimed first, then timing on top.
        let oracle = PatternOracle::new(&property);
        let untimed_ok = oracle.check(&trace).is_ok();
        let expected_violated = if !untimed_ok {
            true
        } else {
            brute_force_timing_violation(premise, &response, bound, &trace)
        };

        let mut monitor = build_monitor(property.clone(), &voc).expect("well-formed");
        let verdict = run_to_end(&mut monitor, &trace);
        prop_assert_eq!(
            verdict == Verdict::Violated,
            expected_violated,
            "monitor {} vs brute force {} on {} (untimed ok: {})\ntrace: {:?}",
            verdict,
            expected_violated,
            property.display(&voc),
            untimed_ok,
            trace
                .iter()
                .map(|e| format!("{}@{}", voc.resolve(e.name), e.time))
                .collect::<Vec<_>>()
        );
    }
}
