//! Random trace generation from loose-ordering patterns.
//!
//! The paper's final sentence: "Future work will be devoted to a
//! translation of the patterns into some code for generating random
//! sequences. This will provide a full integration of loose-orderings in an
//! ABV framework." This module is that generator: a seeded random member
//! of the pattern's language, with timestamps that respect a timed
//! implication's budget — Fig. 1's stimuli generator derived directly from
//! the specification.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use lomon_core::ast::{Fragment, FragmentOp, LooseOrdering, Property};
use lomon_trace::{Name, SimTime, Trace};

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// RNG seed (same seed, same trace).
    pub seed: u64,
    /// Number of `P·i` / `P·Q` episodes (one-shot antecedents always get
    /// one episode plus a random tail).
    pub episodes: u32,
    /// Lower bound between consecutive events.
    pub gap_lo: SimTime,
    /// Upper bound between consecutive events.
    pub gap_hi: SimTime,
    /// Length of the arbitrary tail appended after a one-shot antecedent's
    /// trigger.
    pub tail: u32,
}

impl GeneratorConfig {
    /// Sensible defaults for a given seed.
    pub fn new(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            episodes: 3,
            gap_lo: SimTime::from_ns(10),
            gap_hi: SimTime::from_ns(100),
            tail: 4,
        }
    }
}

/// A generated satisfying trace, with the choices that produced it (useful
/// for coverage accounting).
#[derive(Debug, Clone)]
pub struct GeneratedTrace {
    /// The trace itself.
    pub trace: Trace,
    /// Per episode, per fragment: the participating ranges (indices) in
    /// emission order with their chosen repetition counts.
    pub choices: Vec<Vec<Vec<(usize, u32)>>>,
}

/// Generate one satisfying trace for a (well-formed) property.
///
/// Timed implications emit each episode's `Q` within the budget; repeated
/// antecedents emit `episodes` rounds of `P·i`; one-shot antecedents emit
/// one round plus an arbitrary tail over the alphabet.
pub fn generate(property: &Property, config: &GeneratorConfig) -> GeneratedTrace {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut names: Vec<(Name, SimTime)> = Vec::new();
    let mut choices = Vec::new();
    let mut clock = SimTime::ZERO;
    let gap = |rng: &mut StdRng, clock: &mut SimTime, lo: SimTime, hi: SimTime| {
        *clock += SimTime::from_ps(rng.gen_range(lo.as_ps()..=hi.as_ps()));
        *clock
    };

    match property {
        Property::Antecedent(a) => {
            let rounds = if a.repeated {
                config.episodes.max(1)
            } else {
                1
            };
            for _ in 0..rounds {
                let mut episode = Vec::new();
                emit_ordering(
                    &a.antecedent,
                    &mut rng,
                    &mut |name, rng_inner| {
                        let t = gap(rng_inner, &mut clock, config.gap_lo, config.gap_hi);
                        names.push((name, t));
                    },
                    &mut episode,
                );
                let t = gap(&mut rng, &mut clock, config.gap_lo, config.gap_hi);
                names.push((a.trigger, t));
                choices.push(episode);
            }
            if !a.repeated {
                // Anything over α is acceptable after the first trigger.
                let alphabet: Vec<Name> = a.alpha().iter().collect();
                for _ in 0..config.tail {
                    let name = alphabet[rng.gen_range(0..alphabet.len())];
                    let t = gap(&mut rng, &mut clock, config.gap_lo, config.gap_hi);
                    names.push((name, t));
                }
            }
        }
        Property::Timed(t) => {
            for _ in 0..config.episodes.max(1) {
                let mut episode = Vec::new();
                emit_ordering(
                    &t.premise,
                    &mut rng,
                    &mut |name, rng_inner| {
                        let ts = gap(rng_inner, &mut clock, config.gap_lo, config.gap_hi);
                        names.push((name, ts));
                    },
                    &mut episode,
                );
                // Q must finish within `bound` of the premise's end: count
                // the response events first, then squeeze their gaps into
                // (at most) the budget.
                let mut response_names = Vec::new();
                emit_ordering(
                    &t.response,
                    &mut rng,
                    &mut |name, _| response_names.push(name),
                    &mut episode,
                );
                let count = response_names.len() as u64;
                if count > 0 {
                    // Keep a 20% margin under the budget.
                    let budget = t.bound * 4 / 5;
                    let max_gap = (budget / count).max(SimTime::from_ps(1));
                    let lo = config.gap_lo.min(max_gap);
                    for name in response_names {
                        let ts = gap(&mut rng, &mut clock, lo, max_gap);
                        names.push((name, ts));
                    }
                }
                choices.push(episode);
            }
        }
    }

    GeneratedTrace {
        trace: Trace::from_pairs(names.into_iter().map(|(n, t)| (t, n))),
        choices,
    }
}

/// Emit one random member of a loose-ordering, recording the per-fragment
/// choices.
fn emit_ordering(
    ordering: &LooseOrdering,
    rng: &mut StdRng,
    emit: &mut impl FnMut(Name, &mut StdRng),
    episode: &mut Vec<Vec<(usize, u32)>>,
) {
    for fragment in &ordering.fragments {
        episode.push(emit_fragment(fragment, rng, emit));
    }
}

/// Emit one random member of a fragment; returns `(range index, count)` in
/// emission order.
fn emit_fragment(
    fragment: &Fragment,
    rng: &mut StdRng,
    emit: &mut impl FnMut(Name, &mut StdRng),
) -> Vec<(usize, u32)> {
    let mut participating: Vec<usize> = match fragment.op {
        FragmentOp::All => (0..fragment.ranges.len()).collect(),
        FragmentOp::Any => {
            let mut picked: Vec<usize> = (0..fragment.ranges.len())
                .filter(|_| rng.gen_bool(0.5))
                .collect();
            if picked.is_empty() {
                picked.push(rng.gen_range(0..fragment.ranges.len()));
            }
            picked
        }
    };
    participating.shuffle(rng);
    let mut out = Vec::new();
    for index in participating {
        let range = &fragment.ranges[index];
        let count = rng.gen_range(range.min..=range.max);
        for _ in 0..count {
            emit(range.name, rng);
        }
        out.push((index, count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lomon_core::monitor::build_monitor;
    use lomon_core::parse::parse_property;
    use lomon_core::semantics::PatternOracle;
    use lomon_core::verdict::{run_to_end, Verdict};
    use lomon_trace::Vocabulary;

    fn check_generated(text: &str, seeds: std::ops::Range<u64>) {
        let mut voc = Vocabulary::new();
        let property = parse_property(text, &mut voc).expect(text);
        let oracle = PatternOracle::new(&property);
        for seed in seeds {
            let generated = generate(&property, &GeneratorConfig::new(seed));
            assert!(
                oracle.check(&generated.trace).is_ok(),
                "{text} seed {seed}: generated trace rejected by the oracle"
            );
            let mut monitor = build_monitor(property.clone(), &voc).expect("well-formed");
            let verdict = run_to_end(&mut monitor, &generated.trace);
            assert!(
                verdict.is_ok(),
                "{text} seed {seed}: monitor verdict {verdict}"
            );
        }
    }

    #[test]
    fn generated_traces_satisfy_antecedents() {
        check_generated("all{a, b, c} << go once", 0..20);
        check_generated("all{a, b} < any{c[2,8], d} < e << i repeated", 0..20);
        check_generated("n[3,5] << i repeated", 0..20);
    }

    #[test]
    fn generated_traces_satisfy_timed_implications() {
        check_generated("start => read[2,4] < irq within 1 ms", 0..20);
        check_generated("a < b => out1[1,3] < out2 within 500 us", 0..20);
    }

    #[test]
    fn one_shot_traces_end_satisfied() {
        let mut voc = Vocabulary::new();
        let property = parse_property("all{a, b} << go once", &mut voc).unwrap();
        let generated = generate(&property, &GeneratorConfig::new(3));
        let mut monitor = build_monitor(property, &voc).unwrap();
        assert_eq!(
            run_to_end(&mut monitor, &generated.trace),
            Verdict::Satisfied
        );
        // One episode plus the tail.
        assert!(generated.trace.len() as u32 >= 3 + GeneratorConfig::new(3).tail);
    }

    #[test]
    fn repeated_episode_count_respected() {
        let mut voc = Vocabulary::new();
        let property = parse_property("a << i repeated", &mut voc).unwrap();
        let config = GeneratorConfig {
            episodes: 5,
            ..GeneratorConfig::new(1)
        };
        let generated = generate(&property, &config);
        let i = voc.lookup("i").unwrap();
        assert_eq!(generated.trace.names().filter(|n| *n == i).count(), 5);
        assert_eq!(generated.choices.len(), 5);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut voc = Vocabulary::new();
        let property = parse_property("any{a, b[2,3]} << i repeated", &mut voc).unwrap();
        let a = generate(&property, &GeneratorConfig::new(9));
        let b = generate(&property, &GeneratorConfig::new(9));
        assert_eq!(a.trace, b.trace);
        let c = generate(&property, &GeneratorConfig::new(10));
        assert_ne!(a.trace, c.trace);
    }

    #[test]
    fn timed_episodes_meet_their_budgets() {
        let mut voc = Vocabulary::new();
        let property = parse_property("start => read[2,4] < irq within 100 us", &mut voc).unwrap();
        let generated = generate(&property, &GeneratorConfig::new(4));
        let start = voc.lookup("start").unwrap();
        let irq = voc.lookup("irq").unwrap();
        let events = generated.trace.events();
        let mut last_start = None;
        for e in events {
            if e.name == start {
                last_start = Some(e.time);
            } else if e.name == irq {
                let started = last_start.expect("irq after start");
                assert!(e.time - started <= SimTime::from_us(100));
            }
        }
    }

    #[test]
    fn choices_describe_the_emission() {
        let mut voc = Vocabulary::new();
        let property = parse_property("all{a, b} << i once", &mut voc).unwrap();
        let generated = generate(&property, &GeneratorConfig::new(6));
        // One episode, one fragment, both ranges once each.
        assert_eq!(generated.choices.len(), 1);
        assert_eq!(generated.choices[0].len(), 1);
        let mut indices: Vec<usize> = generated.choices[0][0].iter().map(|&(ix, _)| ix).collect();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1]);
        assert!(generated.choices[0][0].iter().all(|&(_, count)| count == 1));
    }
}
