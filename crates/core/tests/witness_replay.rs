//! Witness soundness, differentially: on random properties × random
//! traces, explain mode must (a) record the *same* witness chain in all
//! three execution backends — interp, compiled, and the fused group
//! monitor — (b) never perturb observation (verdict, ops and violation of
//! an explain-on monitor are identical to an explain-off one), and
//! (c) satisfy the replay contract: when the flight recorder did not
//! overflow, replaying only the witness's events through a fresh monitor
//! of the same property reproduces the identical violation
//! (kind, time, expected set) in every backend.

use proptest::prelude::*;

use lomon_core::ast::{
    Antecedent, Fragment, FragmentOp, LooseOrdering, Property, Range, TimedImplication,
};
use lomon_core::compiled::{compile_monitor, CompiledMonitor};
use lomon_core::fused::FusedProgram;
use lomon_core::monitor::build_monitor;
use lomon_core::verdict::{Monitor, Verdict, Violation};
use lomon_core::wf;
use lomon_core::witness::{replay_witness, Witness};
use lomon_trace::{Name, SimTime, Trace, Vocabulary};

/// A compact, vocabulary-independent description of a random pattern
/// (same shape as the oracle-equivalence suite's).
#[derive(Debug, Clone)]
struct PatternSpec {
    fragments: Vec<(bool, Vec<(u32, u32)>)>,
    repeated: bool,
}

fn fragment_strategy(max_ranges: usize) -> impl Strategy<Value = (bool, Vec<(u32, u32)>)> {
    (
        any::<bool>(),
        prop::collection::vec((1u32..=3, 0u32..=2), 1..=max_ranges),
    )
}

fn pattern_strategy() -> impl Strategy<Value = PatternSpec> {
    (
        prop::collection::vec(fragment_strategy(3), 1..=3),
        any::<bool>(),
    )
        .prop_map(|(fragments, repeated)| PatternSpec {
            fragments,
            repeated,
        })
}

fn build_ordering(
    spec: &[(bool, Vec<(u32, u32)>)],
    voc: &mut Vocabulary,
    prefix: &str,
) -> LooseOrdering {
    let mut counter = 0;
    let fragments = spec
        .iter()
        .map(|(any_op, ranges)| {
            let op = if *any_op {
                FragmentOp::Any
            } else {
                FragmentOp::All
            };
            let ranges = ranges
                .iter()
                .map(|&(u, extra)| {
                    let name = voc.input(&format!("{prefix}{counter}"));
                    counter += 1;
                    Range::new(name, u, u + extra)
                })
                .collect();
            Fragment::new(op, ranges)
        })
        .collect();
    LooseOrdering::new(fragments)
}

fn build_antecedent(spec: &PatternSpec, voc: &mut Vocabulary) -> Property {
    let ordering = build_ordering(&spec.fragments, voc, "n");
    let trigger = voc.input("trigger");
    Antecedent::new(ordering, trigger, spec.repeated).into()
}

fn build_timed(spec: &PatternSpec, other: &PatternSpec, voc: &mut Vocabulary) -> Property {
    let premise = build_ordering(&spec.fragments, voc, "p");
    let mut counter = 0;
    let response = LooseOrdering::new(
        other
            .fragments
            .iter()
            .map(|(any_op, ranges)| {
                let op = if *any_op {
                    FragmentOp::Any
                } else {
                    FragmentOp::All
                };
                let ranges = ranges
                    .iter()
                    .map(|&(u, extra)| {
                        let name = voc.output(&format!("q{counter}"));
                        counter += 1;
                        Range::new(name, u, u + extra)
                    })
                    .collect();
                Fragment::new(op, ranges)
            })
            .collect(),
    );
    // A tight budget so deadline-class violations (misses, end-of-trace
    // expiries, stalls) are actually exercised, not just ordering errors.
    TimedImplication::new(premise, response, SimTime::from_ns(8)).into()
}

fn trace_from_indices(indices: &[usize], universe: &[Name]) -> Trace {
    Trace::from_pairs(indices.iter().enumerate().map(|(k, &ix)| {
        (
            SimTime::from_ns(k as u64 + 1),
            universe[ix % universe.len()],
        )
    }))
}

/// Feed the whole trace, then finish at `end` — the same closing sequence
/// a session applies. Returns the final verdict.
fn run(monitor: &mut dyn Monitor, trace: &Trace, end: SimTime) -> Verdict {
    for &event in trace.iter() {
        if monitor.verdict().is_final() {
            break;
        }
        monitor.observe(event);
    }
    if monitor.verdict().is_final() {
        monitor.verdict()
    } else {
        monitor.finish(end)
    }
}

/// The fused group monitor for a single-property rulebook (with a
/// duplicate member, so the lowering actually deduplicates).
fn fused_monitor(property: &Property) -> CompiledMonitor {
    let fused = FusedProgram::lower(&[property.clone(), property.clone()]);
    assert_eq!(fused.group_count(), 1, "identical members share one group");
    fused.instantiate().remove(0)
}

/// The violation triple the replay contract promises to reproduce.
fn violation_key(v: &Violation) -> (String, SimTime, Vec<Name>) {
    (format!("{:?}", v.kind), v.time, v.expected.iter().collect())
}

/// Replay `witness` through a fresh monitor and check it reproduces the
/// original violation exactly.
fn check_replay(
    mut fresh: Box<dyn Monitor>,
    witness: &Witness,
    end: SimTime,
    original: &Violation,
    context: &str,
) {
    let verdict = replay_witness(fresh.as_mut(), witness, end);
    assert_eq!(verdict, Verdict::Violated, "replay verdict ({context})");
    let replayed = fresh
        .violation()
        .expect("replayed violation present")
        .clone();
    assert_eq!(
        violation_key(&replayed),
        violation_key(original),
        "replayed violation differs ({context})",
    );
}

/// The full differential check for one (property, trace, capacity) case.
fn check_case(property: &Property, voc: &Vocabulary, trace: &Trace, capacity: usize) {
    let end = SimTime::from_ns(trace.len() as u64 + 4);

    // Explain-off compiled monitor: the observation baseline.
    let mut baseline = compile_monitor(property.clone(), voc).expect("well-formed");
    let baseline_verdict = run(&mut baseline, trace, end);

    // Explain-on, all three backends.
    let mut interp = build_monitor(property.clone(), voc).expect("well-formed");
    let mut compiled = compile_monitor(property.clone(), voc).expect("well-formed");
    let mut fused = fused_monitor(property);
    interp.set_explain(capacity);
    compiled.set_explain(capacity);
    fused.set_explain(capacity);

    let iv = run(&mut interp, trace, end);
    let cv = run(&mut compiled, trace, end);
    let fv = run(&mut fused, trace, end);

    // (b) capture observes, never perturbs.
    assert_eq!(cv, baseline_verdict, "explain mode changed the verdict");
    assert_eq!(
        compiled.ops(),
        baseline.ops(),
        "explain mode changed the ops accounting"
    );
    assert_eq!(
        format!("{:?}", compiled.violation()),
        format!("{:?}", baseline.violation()),
        "explain mode changed the violation"
    );

    // (a) backend witness identity (raw chains and reconstructed
    // attribution both, since `witness()` returns the attributed form).
    assert_eq!(iv, cv, "interp vs compiled verdict");
    assert_eq!(cv, fv, "compiled vs fused verdict");
    let wi = interp.witness().expect("interp explain armed");
    let wc = compiled.witness().expect("compiled explain armed");
    let wf_ = fused.witness().expect("fused explain armed");
    assert_eq!(wi, wc, "interp vs compiled witness");
    assert_eq!(wc, wf_, "compiled vs fused witness");

    // (c) replay soundness, on complete chains.
    if cv == Verdict::Violated && wc.dropped == 0 {
        let original = compiled.violation().expect("violated").clone();
        check_replay(
            Box::new(build_monitor(property.clone(), voc).expect("well-formed")),
            &wc,
            end,
            &original,
            "interp",
        );
        check_replay(
            Box::new(compile_monitor(property.clone(), voc).expect("well-formed")),
            &wc,
            end,
            &original,
            "compiled",
        );
        check_replay(
            Box::new(fused_monitor(property)),
            &wc,
            end,
            &original,
            "fused",
        );
    }
}

/// Deterministic pin: a known ordering violation replays exactly, in
/// every backend, with a complete chain.
#[test]
fn known_violation_replays_exactly() {
    let mut voc = Vocabulary::new();
    let property = {
        let a = voc.input("a");
        let b = voc.input("b");
        let start = voc.input("start");
        let ordering = LooseOrdering::new(vec![Fragment::new(
            FragmentOp::All,
            vec![Range::new(a, 1, 1), Range::new(b, 1, 1)],
        )]);
        Property::from(Antecedent::new(ordering, start, false))
    };
    let names: Vec<Name> = ["a", "start"]
        .iter()
        .map(|n| voc.lookup(n).expect("interned"))
        .collect();
    let trace = Trace::from_names(names);
    check_case(&property, &voc, &trace, 16);

    let mut compiled = compile_monitor(property, &voc).expect("well-formed");
    compiled.set_explain(16);
    let end = SimTime::from_ns(trace.len() as u64 + 4);
    assert_eq!(run(&mut compiled, &trace, end), Verdict::Violated);
    let witness = compiled.witness().expect("armed");
    assert_eq!(witness.dropped, 0);
    assert_eq!(witness.steps.len(), 2, "both contributing events recorded");
}

/// Deterministic pin: ring overflow keeps the most recent steps, counts
/// the evictions, and the truncated chains still agree across backends.
#[test]
fn overflowed_chains_agree_across_backends() {
    let mut voc = Vocabulary::new();
    let property = {
        let a = voc.input("a");
        let start = voc.input("start");
        let ordering = LooseOrdering::new(vec![Fragment::new(
            FragmentOp::All,
            vec![Range::new(a, 1, 3)],
        )]);
        Property::from(Antecedent::new(ordering, start, true))
    };
    let a = voc.lookup("a").expect("interned");
    let start = voc.lookup("start").expect("interned");
    // Six `a, start` episodes: 12 contributing events through a 4-slot
    // ring, so 8 evictions and no final verdict.
    let trace = Trace::from_names([a, start].repeat(6));
    check_case(&property, &voc, &trace, 4);

    let mut compiled = compile_monitor(property, &voc).expect("well-formed");
    compiled.set_explain(4);
    run(&mut compiled, &trace, SimTime::from_ns(20));
    let witness = compiled.witness().expect("armed");
    assert_eq!(witness.dropped, 8);
    assert_eq!(witness.steps.len(), 4);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn antecedent_witnesses_agree_and_replay(
        spec in pattern_strategy(),
        indices in prop::collection::vec(0usize..16, 0..24),
        capacity in 1usize..=40,
    ) {
        let mut voc = Vocabulary::new();
        let property = build_antecedent(&spec, &mut voc);
        prop_assume!(wf::check(&property, &voc).is_empty());
        voc.input("noise_a");
        voc.input("noise_b");
        let universe: Vec<Name> = voc.iter().collect();
        let trace = trace_from_indices(&indices, &universe);
        check_case(&property, &voc, &trace, capacity);
    }

    #[test]
    fn timed_witnesses_agree_and_replay(
        premise in pattern_strategy(),
        response in pattern_strategy(),
        indices in prop::collection::vec(0usize..16, 0..24),
        capacity in 1usize..=40,
    ) {
        let mut voc = Vocabulary::new();
        let property = build_timed(&premise, &response, &mut voc);
        prop_assume!(wf::check(&property, &voc).is_empty());
        voc.input("noise_a");
        let universe: Vec<Name> = voc.iter().collect();
        let trace = trace_from_indices(&indices, &universe);
        check_case(&property, &voc, &trace, capacity);
    }

    /// Guided walks reach deep, mostly-valid prefixes before violating, so
    /// long witness chains (and ring overflow with small capacities) are
    /// exercised, not just quickly-rejected noise.
    #[test]
    fn guided_walk_witnesses_agree(
        spec in pattern_strategy(),
        choices in prop::collection::vec((0usize..8, 0u8..10), 1..40),
        capacity in 1usize..=12,
    ) {
        let mut voc = Vocabulary::new();
        let property = build_antecedent(&spec, &mut voc);
        prop_assume!(wf::check(&property, &voc).is_empty());
        let universe: Vec<Name> = voc.iter().collect();

        let mut scout = build_monitor(property.clone(), &voc).expect("well-formed");
        let mut names = Vec::new();
        for &(pick, misbehave) in &choices {
            let expected: Vec<Name> = scout.expected().iter().collect();
            let name = if misbehave == 0 || expected.is_empty() {
                universe[pick % universe.len()]
            } else {
                expected[pick % expected.len()]
            };
            names.push(name);
            scout.observe(lomon_trace::TimedEvent::new(
                name,
                SimTime::from_ns(names.len() as u64),
            ));
        }
        let trace = Trace::from_names(names);
        check_case(&property, &voc, &trace, capacity);
    }
}
