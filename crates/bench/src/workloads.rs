//! The hot-loop workload constructors, shared by the `hot_loop` bench
//! (backend ratios) and the `obs_overhead` bench (telemetry cost): a
//! rulebook [`Engine`] plus the event stream that drives it.

use lomon_engine::Engine;
use lomon_trace::{SimTime, TimedEvent, Vocabulary};

/// Episodes of one property arrive in short bursts before the stream moves
/// on — the granularity a TLM platform produces (one transaction's writes
/// complete before the next component's begin).
pub const EPISODE_BURST: usize = 4;

/// `count` antecedent properties over pairwise-disjoint alphabets, plus the
/// event stream that completes `rounds` episodes of each, interleaved at
/// [`EPISODE_BURST`] granularity.
///
/// # Panics
///
/// Panics if the generated rulebook fails to compile (a harness bug).
pub fn disjoint(count: usize, rounds: usize) -> (Engine, Vec<TimedEvent>) {
    let (engine, _, events) = disjoint_with_vocabulary(count, rounds);
    (engine, events)
}

/// [`disjoint`], additionally returning the vocabulary the rulebook was
/// compiled against. The `wire_speed` bench starts from trace *text*
/// (bytes in, verdicts out), so it needs the vocabulary to render the
/// event stream and to resolve names during decode.
///
/// # Panics
///
/// Panics if the generated rulebook fails to compile (a harness bug).
pub fn disjoint_with_vocabulary(
    count: usize,
    rounds: usize,
) -> (Engine, Vocabulary, Vec<TimedEvent>) {
    let mut voc = Vocabulary::new();
    let rulebook: Vec<String> = (0..count)
        .map(|k| format!("all{{p{k}_a, p{k}_b, p{k}_c}} << p{k}_start repeated"))
        .collect();
    let engine = Engine::compile(&rulebook, &mut voc).expect("bench rulebook compiles");
    let mut events = Vec::with_capacity(count * rounds * 4);
    let mut ns = 0u64;
    for _ in 0..rounds.div_ceil(EPISODE_BURST) {
        for k in 0..count {
            for _ in 0..EPISODE_BURST {
                for suffix in ["a", "b", "c", "start"] {
                    ns += 10;
                    let name = voc
                        .lookup(&format!("p{k}_{suffix}"))
                        .expect("compiled name");
                    events.push(TimedEvent::new(name, SimTime::from_ns(ns)));
                }
            }
        }
    }
    (engine, voc, events)
}

/// `count` antecedent properties over one *shared* alphabet (rotated range
/// order, alternating `all`/`any`), and the stream that satisfies them all
/// — every event concerns every property. The texts repeat with period 6
/// (2 connectives × 3 rotations), so the fused backend shares 6 unique
/// groups regardless of `count`.
///
/// # Panics
///
/// Panics if the generated rulebook fails to compile (a harness bug).
pub fn overlapping(count: usize, rounds: usize) -> (Engine, Vec<TimedEvent>) {
    let mut voc = Vocabulary::new();
    let names = ["s_a", "s_b", "s_c"];
    let rulebook: Vec<String> = (0..count)
        .map(|k| {
            let op = if k % 2 == 0 { "all" } else { "any" };
            let rotated: Vec<&str> = (0..3).map(|j| names[(k + j) % 3]).collect();
            format!("{op}{{{}}} << s_start repeated", rotated.join(", "))
        })
        .collect();
    let engine = Engine::compile(&rulebook, &mut voc).expect("bench rulebook compiles");
    let mut events = Vec::with_capacity(rounds * 4);
    let mut ns = 0u64;
    for _ in 0..rounds {
        for name in ["s_a", "s_b", "s_c", "s_start"] {
            ns += 10;
            let name = voc.lookup(name).expect("compiled name");
            events.push(TimedEvent::new(name, SimTime::from_ns(ns)));
        }
    }
    (engine, events)
}
