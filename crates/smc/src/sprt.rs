//! Wald's sequential probability ratio test (SPRT) for Bernoulli verdicts.
//!
//! Hypothesis testing answers the qualitative SMC question — *is the
//! satisfaction probability at least θ?* — without fixing the episode count
//! in advance. Following Younes' formulation (used by Ngo & Legay's PSCV
//! for SystemC), the test takes an indifference region `(p1, p0)` with
//! `p1 < p0` and decides between
//!
//! * `H0`: `p ≥ p0` (the property holds often enough), and
//! * `H1`: `p ≤ p1` (it does not),
//!
//! by accumulating the log-likelihood ratio of the observed episode
//! verdicts and stopping as soon as it crosses either of Wald's thresholds
//! `ln((1−β)/α)` (accept `H1`) or `ln(β/(1−α))` (accept `H0`). The expected
//! episode count is typically far below the fixed-size Okamoto bound — the
//! early-stopping payoff the campaign layer exploits.

use std::fmt;

/// Parameters of one SPRT: the indifference region and the error bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SprtConfig {
    /// `H0` threshold: the test accepts `H0` when `p ≥ p0`.
    pub p0: f64,
    /// `H1` threshold: the test accepts `H1` when `p ≤ p1` (`p1 < p0`).
    pub p1: f64,
    /// Bound on the type-I error (wrongly rejecting `H0`).
    pub alpha: f64,
    /// Bound on the type-II error (wrongly accepting `H0`).
    pub beta: f64,
}

/// An invalid [`SprtConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SprtConfigError(String);

impl fmt::Display for SprtConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SprtConfigError {}

impl SprtConfig {
    /// A test of `H0: p ≥ p0` vs `H1: p ≤ p1` with `α = β = 0.05`.
    ///
    /// # Errors
    ///
    /// Requires `0 ≤ p1 < p0 ≤ 1`.
    pub fn new(p0: f64, p1: f64) -> Result<Self, SprtConfigError> {
        SprtConfig {
            p0,
            p1,
            alpha: 0.05,
            beta: 0.05,
        }
        .validated()
    }

    /// Override the error bounds (each must lie in `(0, 0.5)`).
    ///
    /// # Errors
    ///
    /// Returns the violated constraint, if any.
    pub fn with_errors(mut self, alpha: f64, beta: f64) -> Result<Self, SprtConfigError> {
        self.alpha = alpha;
        self.beta = beta;
        self.validated()
    }

    fn validated(self) -> Result<Self, SprtConfigError> {
        if !(0.0..=1.0).contains(&self.p1) || !(0.0..=1.0).contains(&self.p0) {
            return Err(SprtConfigError(format!(
                "p0={} and p1={} must lie in [0,1]",
                self.p0, self.p1
            )));
        }
        if self.p1 >= self.p0 {
            return Err(SprtConfigError(format!(
                "the indifference region needs p1 < p0, got p1={} >= p0={}",
                self.p1, self.p0
            )));
        }
        for (label, e) in [("alpha", self.alpha), ("beta", self.beta)] {
            if !(e > 0.0 && e < 0.5) {
                return Err(SprtConfigError(format!("{label}={e} out of (0, 0.5)")));
            }
        }
        Ok(self)
    }
}

/// The verdict an SPRT can reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SprtDecision {
    /// `p ≥ p0` accepted: the satisfaction probability is high enough.
    AcceptH0,
    /// `p ≤ p1` accepted: the satisfaction probability is too low.
    AcceptH1,
}

impl fmt::Display for SprtDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SprtDecision::AcceptH0 => "accept H0 (p >= p0)",
            SprtDecision::AcceptH1 => "accept H1 (p <= p1)",
        })
    }
}

/// One running test: feed episode verdicts in a fixed order with
/// [`Sprt::observe`]; the decision, once reached, is final and further
/// observations are ignored. Determinism of the campaign layer rests on
/// the feeding order being episode-index order, never worker order.
#[derive(Debug, Clone)]
pub struct Sprt {
    config: SprtConfig,
    /// Log-likelihood increment of a satisfying episode, `ln(p1/p0)`.
    success_weight: f64,
    /// Log-likelihood increment of a violating episode,
    /// `ln((1−p1)/(1−p0))`.
    failure_weight: f64,
    /// Accept `H1` when the ratio reaches `ln((1−β)/α)`.
    upper: f64,
    /// Accept `H0` when the ratio reaches `ln(β/(1−α))`.
    lower: f64,
    llr: f64,
    trials: u64,
    decision: Option<SprtDecision>,
}

impl Sprt {
    /// Start a test with no observations.
    pub fn new(config: SprtConfig) -> Self {
        Sprt {
            config,
            success_weight: (config.p1 / config.p0).ln(),
            failure_weight: ((1.0 - config.p1) / (1.0 - config.p0)).ln(),
            upper: ((1.0 - config.beta) / config.alpha).ln(),
            lower: (config.beta / (1.0 - config.alpha)).ln(),
            llr: 0.0,
            trials: 0,
            decision: None,
        }
    }

    /// The parameters this test runs with.
    pub fn config(&self) -> SprtConfig {
        self.config
    }

    /// Feed one episode verdict; returns the decision if this observation
    /// (or an earlier one) settled the test.
    ///
    /// Degenerate hypotheses resolve in the natural way through the
    /// log-weights: with `p1 = 0` a single satisfying episode yields an
    /// infinitely negative ratio (accept `H0` — `p ≤ 0` is refuted), and
    /// with `p0 = 1` a single violating episode accepts `H1`.
    pub fn observe(&mut self, satisfied: bool) -> Option<SprtDecision> {
        if self.decision.is_some() {
            return self.decision;
        }
        self.trials += 1;
        self.llr += if satisfied {
            self.success_weight
        } else {
            self.failure_weight
        };
        if self.llr >= self.upper {
            self.decision = Some(SprtDecision::AcceptH1);
        } else if self.llr <= self.lower {
            self.decision = Some(SprtDecision::AcceptH0);
        }
        self.decision
    }

    /// The decision, if the test has stopped.
    pub fn decision(&self) -> Option<SprtDecision> {
        self.decision
    }

    /// Episodes consumed before the test stopped (all of them, while it is
    /// still running).
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The accumulated log-likelihood ratio.
    pub fn llr(&self) -> f64 {
        self.llr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn run_until_decision(p: f64, config: SprtConfig, seed: u64) -> (SprtDecision, u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sprt = Sprt::new(config);
        for _ in 0..1_000_000 {
            if let Some(decision) = sprt.observe(rng.gen_bool(p)) {
                return (decision, sprt.trials());
            }
        }
        panic!("SPRT failed to stop at p={p}");
    }

    #[test]
    fn config_is_validated() {
        assert!(SprtConfig::new(0.9, 0.7).is_ok());
        assert!(SprtConfig::new(0.7, 0.7).is_err());
        assert!(SprtConfig::new(0.5, 0.9).is_err());
        assert!(SprtConfig::new(1.2, 0.5).is_err());
        assert!(SprtConfig::new(0.9, 0.7)
            .unwrap()
            .with_errors(0.5, 0.1)
            .is_err());
    }

    #[test]
    fn clear_separation_decides_correctly_and_quickly() {
        let config = SprtConfig::new(0.9, 0.5).unwrap();
        for seed in 1..=20 {
            let (decision, trials) = run_until_decision(0.98, config, seed);
            assert_eq!(decision, SprtDecision::AcceptH0, "seed {seed}");
            assert!(trials < 100, "seed {seed} took {trials} episodes");
            let (decision, trials) = run_until_decision(0.2, config, 100 + seed);
            assert_eq!(decision, SprtDecision::AcceptH1, "seed {seed}");
            assert!(trials < 100, "seed {seed} took {trials} episodes");
        }
    }

    #[test]
    fn error_rate_is_roughly_bounded() {
        // True p exactly at p0: accepting H1 is a type-I error, bounded by
        // alpha = 0.05. Count errors over 200 independent runs.
        let config = SprtConfig::new(0.8, 0.5).unwrap();
        let errors = (0..200)
            .filter(|&seed| run_until_decision(0.8, config, seed).0 == SprtDecision::AcceptH1)
            .count();
        assert!(errors <= 24, "type-I errors: {errors}/200");
    }

    #[test]
    fn decision_is_sticky() {
        let mut sprt = Sprt::new(SprtConfig::new(0.9, 0.1).unwrap());
        while sprt.observe(false).is_none() {}
        let decision = sprt.decision().unwrap();
        let trials = sprt.trials();
        // Contradictory evidence after the stop changes nothing.
        for _ in 0..50 {
            assert_eq!(sprt.observe(true), Some(decision));
        }
        assert_eq!(sprt.trials(), trials);
    }

    #[test]
    fn degenerate_hypotheses_resolve_on_one_counterexample() {
        // H1: p <= 0 — one success refutes it.
        let mut sprt = Sprt::new(SprtConfig::new(0.5, 0.0).unwrap());
        assert_eq!(sprt.observe(true), Some(SprtDecision::AcceptH0));
        // H0: p >= 1 — one failure refutes it.
        let mut sprt = Sprt::new(SprtConfig::new(1.0, 0.5).unwrap());
        assert_eq!(sprt.observe(false), Some(SprtDecision::AcceptH1));
    }
}
