//! End-to-end tests for `lomon serve`: spawn the real binary, learn the
//! ephemeral addresses from the startup announcement, run one stream, hot
//! reload, and drain-shutdown over the admin endpoint.

mod common;

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use common::{lomon, stderr, PROPERTY};

/// Spawn `lomon serve` on ephemeral ports and parse the stream/admin
/// addresses from the stderr announcement.
fn spawn_serve(extra: &[&str]) -> (Child, String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_lomon"))
        .args(
            ["serve", "--listen", "127.0.0.1:0", "--admin", "127.0.0.1:0"]
                .iter()
                .chain(extra)
                .chain([PROPERTY].iter()),
        )
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lomon serve");
    let mut announce = String::new();
    BufReader::new(child.stderr.take().expect("piped stderr"))
        .read_line(&mut announce)
        .expect("startup announcement");
    // "serving 1 property on 127.0.0.1:PORT (admin 127.0.0.1:PORT)"
    let listen = announce
        .split(" on ")
        .nth(1)
        .and_then(|rest| rest.split(' ').next())
        .expect("listen address in announcement")
        .to_owned();
    let admin = announce
        .split("(admin ")
        .nth(1)
        .and_then(|rest| rest.split(')').next())
        .expect("admin address in announcement")
        .to_owned();
    (child, listen, admin)
}

fn http(addr: &str, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect admin");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: lomon\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut response = String::new();
    let mut reader = stream.try_clone().expect("clone");
    reader.read_to_string(&mut response).expect("read response");
    response
}

#[test]
fn serve_streams_reloads_and_drains() {
    let (mut child, listen, admin) = spawn_serve(&[]);

    // One stream end to end.
    let mut stream = TcpStream::connect(&listen).expect("connect stream");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut ready = String::new();
    reader.read_line(&mut ready).expect("ready frame");
    assert!(ready.contains("\"type\": \"ready\""), "got: {ready}");
    stream
        .write_all(b"{\"time\": \"5ns\", \"name\": \"start\"}\n")
        .expect("send event");
    let mut verdict = String::new();
    reader.read_line(&mut verdict).expect("verdict frame");
    assert!(
        verdict.contains("\"verdict\": \"violated\""),
        "got: {verdict}"
    );
    drop(reader);
    drop(stream);

    // Hot reload, then health reflects the new generation.
    let response = http(&admin, "POST", "/reload", "go => out:done within 50 ns\n");
    assert!(response.contains("200 OK"), "got: {response}");
    assert!(response.contains("\"generation\": 2"), "got: {response}");
    let response = http(&admin, "GET", "/health", "");
    assert!(response.contains("\"generation\": 2"), "got: {response}");

    // Drain shutdown: the daemon exits 0.
    let response = http(&admin, "POST", "/shutdown", "");
    assert!(response.contains("200 OK"), "got: {response}");
    let status = child.wait().expect("serve exits");
    assert_eq!(status.code(), Some(0));
}

#[test]
fn serve_rejects_a_broken_rulebook() {
    let output = lomon(&["serve", "--listen", "127.0.0.1:0", "all{unclosed << start"]);
    assert_eq!(output.status.code(), Some(1));
    let text = stderr(&output);
    assert!(text.contains("rulebook rejected"), "stderr: {text}");
}

#[test]
fn serve_usage_errors() {
    let output = lomon(&["serve", "--frobnicate", PROPERTY]);
    assert_eq!(output.status.code(), Some(2));
    let output = lomon(&["serve", "--max-streams", "0", PROPERTY]);
    assert_eq!(output.status.code(), Some(2));
    let output = lomon(&["serve"]);
    assert_eq!(output.status.code(), Some(2));
}
