//! Run-length lexing of traces — the paper's "lexical analyzer".
//!
//! Section 5 of the paper encodes a range `n[u,v]` in PSL by treating
//! *sequences of consecutive occurrences* of `n` as new vocabulary elements:
//! the run `n n n` becomes the single token `n⟨3⟩`. A PSL formula over the
//! token alphabet then only needs equality tests instead of counting. The
//! transformation is performed online by this transducer; its runtime cost
//! is the `∆` term the paper adds to every ViaPSL complexity figure.
//!
//! The transducer buffers the current run of a *collapsible* name and emits
//! its token when a different name (or end of trace) is observed — so token
//! emission lags the input by exactly one run. Names that are not
//! collapsible (not used in any non-trivial range) pass through as runs of
//! length 1… unless they repeat, in which case they form runs too: the token
//! alphabet is uniform, which keeps downstream logic simple.

use crate::{Name, NameSet, SimTime, TimedEvent};

/// A run-length token: `name` repeated `run` times consecutively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LexedToken {
    /// The repeated interface name.
    pub name: Name,
    /// Length of the maximal run (≥ 1).
    pub run: u32,
}

/// A token with the timestamps of its run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LexedEvent {
    /// The run-length token.
    pub token: LexedToken,
    /// Timestamp of the first event of the run.
    pub first_time: SimTime,
    /// Timestamp of the last event of the run.
    pub last_time: SimTime,
}

/// Online run-length transducer over timed events.
///
/// # Example
///
/// ```
/// use lomon_trace::{NameSet, RunLengthLexer, SimTime, TimedEvent, Vocabulary};
/// let mut voc = Vocabulary::new();
/// let n = voc.input("n");
/// let i = voc.input("i");
///
/// let mut lexer = RunLengthLexer::new([n].into_iter().collect::<NameSet>());
/// assert!(lexer.push(TimedEvent::new(n, SimTime::from_ns(1))).is_empty());
/// assert!(lexer.push(TimedEvent::new(n, SimTime::from_ns(2))).is_empty());
/// let out = lexer.push(TimedEvent::new(i, SimTime::from_ns(3)));
/// assert_eq!(out.len(), 2); // the n⟨2⟩ run, then i⟨1⟩ flushed eagerly
/// assert_eq!(out[0].token.run, 2);
/// assert_eq!(out[1].token.run, 1);
/// ```
#[derive(Debug, Clone)]
pub struct RunLengthLexer {
    /// Names whose runs are collapsed into multi-length tokens. Runs of
    /// other names are emitted eagerly, one token per event.
    collapsible: NameSet,
    /// Per-name run bound: when a run exceeds its bound, the (over-long)
    /// token is emitted *immediately* instead of waiting for the run to
    /// end, so downstream monitors detect `TooMany`-style violations at the
    /// same event as the direct monitors.
    bounds: std::collections::HashMap<Name, u32>,
    current: Option<(Name, u32, SimTime, SimTime)>,
    ops: u64,
}

impl RunLengthLexer {
    /// Create a lexer collapsing runs of the given names.
    pub fn new(collapsible: NameSet) -> Self {
        RunLengthLexer {
            collapsible,
            bounds: std::collections::HashMap::new(),
            current: None,
            ops: 0,
        }
    }

    /// Emit runs of `name` eagerly once they exceed `max_run` (see the
    /// `bounds` field). Returns `self` for chaining.
    pub fn with_bound(mut self, name: Name, max_run: u32) -> Self {
        self.bounds.insert(name, max_run);
        self
    }

    /// Feed one event; returns the tokens completed by this event (0–2).
    ///
    /// A collapsible run is completed only by the *next* different event;
    /// non-collapsible events complete immediately (run length 1), flushing
    /// any pending run first.
    pub fn push(&mut self, event: TimedEvent) -> Vec<LexedEvent> {
        // Cost model for ∆: one comparison + one update per event.
        self.ops += 2;
        let mut out = Vec::new();
        match self.current {
            Some((name, run, first, _last)) if name == event.name => {
                let run = run + 1;
                if self.bounds.get(&name).is_some_and(|&max| run > max) {
                    // Over-long run: emit it now so violations surface at
                    // the event that caused them.
                    self.current = None;
                    out.push(LexedEvent {
                        token: LexedToken { name, run },
                        first_time: first,
                        last_time: event.time,
                    });
                } else {
                    self.current = Some((name, run, first, event.time));
                }
            }
            Some((name, run, first, last)) => {
                out.push(LexedEvent {
                    token: LexedToken { name, run },
                    first_time: first,
                    last_time: last,
                });
                self.start_run(event, &mut out);
            }
            None => {
                self.start_run(event, &mut out);
            }
        }
        out
    }

    fn start_run(&mut self, event: TimedEvent, out: &mut Vec<LexedEvent>) {
        if self.collapsible.contains(event.name) {
            self.current = Some((event.name, 1, event.time, event.time));
        } else {
            self.current = None;
            out.push(LexedEvent {
                token: LexedToken {
                    name: event.name,
                    run: 1,
                },
                first_time: event.time,
                last_time: event.time,
            });
        }
    }

    /// Flush the pending run at end of observation, if any.
    pub fn finish(&mut self) -> Option<LexedEvent> {
        self.ops += 1;
        self.current
            .take()
            .map(|(name, run, first, last)| LexedEvent {
                token: LexedToken { name, run },
                first_time: first,
                last_time: last,
            })
    }

    /// Operations executed so far (the measured `∆` contribution).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Bits of mutable state the transducer keeps: the current name id,
    /// a presence flag, two timestamps and a run counter wide enough for
    /// `max_run`.
    pub fn state_bits(max_run: u64) -> u64 {
        let counter = 64 - max_run.max(1).leading_zeros() as u64;
        // name id (32) + present flag (1) + first/last timestamps (2×64)
        32 + 1 + 128 + counter
    }

    /// Lex a whole trace, including the final flush.
    pub fn lex_trace(collapsible: NameSet, trace: &crate::Trace) -> Vec<LexedEvent> {
        let mut lexer = RunLengthLexer::new(collapsible);
        let mut out = Vec::new();
        for &event in trace.iter() {
            out.extend(lexer.push(event));
        }
        out.extend(lexer.finish());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Trace, Vocabulary};

    fn setup() -> (Vocabulary, Name, Name, Name) {
        let mut voc = Vocabulary::new();
        let n = voc.input("n");
        let m = voc.input("m");
        let i = voc.input("i");
        (voc, n, m, i)
    }

    #[test]
    fn collapses_runs_of_collapsible_names() {
        let (_voc, n, _m, i) = setup();
        let trace = Trace::from_names([n, n, n, i, n, i]);
        let tokens = RunLengthLexer::lex_trace([n].into_iter().collect(), &trace);
        let summary: Vec<(Name, u32)> =
            tokens.iter().map(|t| (t.token.name, t.token.run)).collect();
        assert_eq!(summary, vec![(n, 3), (i, 1), (n, 1), (i, 1)]);
    }

    #[test]
    fn run_timestamps_span_the_run() {
        let (_voc, n, _m, i) = setup();
        let trace = Trace::from_pairs([
            (SimTime::from_ns(5), n),
            (SimTime::from_ns(9), n),
            (SimTime::from_ns(20), i),
        ]);
        let tokens = RunLengthLexer::lex_trace([n].into_iter().collect(), &trace);
        assert_eq!(tokens[0].first_time, SimTime::from_ns(5));
        assert_eq!(tokens[0].last_time, SimTime::from_ns(9));
        assert_eq!(tokens[1].first_time, SimTime::from_ns(20));
    }

    #[test]
    fn non_collapsible_repeats_still_tokenize_per_event() {
        let (_voc, n, m, _i) = setup();
        let trace = Trace::from_names([m, m, n, n]);
        let tokens = RunLengthLexer::lex_trace([n].into_iter().collect(), &trace);
        let summary: Vec<(Name, u32)> =
            tokens.iter().map(|t| (t.token.name, t.token.run)).collect();
        // m is not collapsible: each occurrence is its own run of length 1.
        assert_eq!(summary, vec![(m, 1), (m, 1), (n, 2)]);
    }

    #[test]
    fn finish_flushes_pending_run() {
        let (_voc, n, _m, _i) = setup();
        let mut lexer = RunLengthLexer::new([n].into_iter().collect());
        assert!(lexer
            .push(TimedEvent::new(n, SimTime::from_ns(1)))
            .is_empty());
        let flushed = lexer.finish().expect("pending run");
        assert_eq!(flushed.token, LexedToken { name: n, run: 1 });
        assert_eq!(lexer.finish(), None);
    }

    #[test]
    fn empty_trace_produces_no_tokens() {
        let tokens = RunLengthLexer::lex_trace(NameSet::new(), &Trace::new());
        assert!(tokens.is_empty());
    }

    #[test]
    fn ops_grow_linearly_with_events() {
        let (_voc, n, _m, i) = setup();
        let trace = Trace::from_names(vec![n; 100].into_iter().chain([i]));
        let mut lexer = RunLengthLexer::new([n].into_iter().collect());
        for &e in trace.iter() {
            lexer.push(e);
        }
        lexer.finish();
        assert_eq!(lexer.ops(), 2 * 101 + 1);
    }

    #[test]
    fn bounded_runs_emit_eagerly_on_overflow() {
        let (_voc, n, _m, i) = setup();
        let mut lexer = RunLengthLexer::new([n].into_iter().collect()).with_bound(n, 2);
        assert!(lexer
            .push(TimedEvent::new(n, SimTime::from_ns(1)))
            .is_empty());
        assert!(lexer
            .push(TimedEvent::new(n, SimTime::from_ns(2)))
            .is_empty());
        // Third n exceeds the bound: the over-long token comes out now.
        let out = lexer.push(TimedEvent::new(n, SimTime::from_ns(3)));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token, LexedToken { name: n, run: 3 });
        assert_eq!(out[0].last_time, SimTime::from_ns(3));
        // The run was flushed; a following i is its own token, and a new n
        // starts a fresh run.
        let out = lexer.push(TimedEvent::new(i, SimTime::from_ns(4)));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token.name, i);
        assert!(lexer
            .push(TimedEvent::new(n, SimTime::from_ns(5)))
            .is_empty());
        assert_eq!(
            lexer.finish().unwrap().token,
            LexedToken { name: n, run: 1 }
        );
    }

    #[test]
    fn state_bits_scale_with_counter_width() {
        let small = RunLengthLexer::state_bits(1);
        let large = RunLengthLexer::state_bits(60_000);
        assert!(large > small);
        assert_eq!(large - small, 16 - 1); // 60000 needs 16 bits, 1 needs 1
    }
}
