//! Criterion S4: throughput of the §8 future-work stimuli generator and of
//! the mutation engine on the Fig. 4 pattern.

use criterion::{criterion_group, criterion_main, Criterion};

use lomon_core::parse::parse_property;
use lomon_gen::{generate, mutate, GeneratorConfig};
use lomon_trace::Vocabulary;

fn bench_generation(c: &mut Criterion) {
    let mut voc = Vocabulary::new();
    let property = parse_property(
        "all{n1, n2} < any{n3[2,8], n4} < n5 << i repeated",
        &mut voc,
    )
    .expect("parses");

    let mut group = c.benchmark_group("generation");
    group.sample_size(30);
    group.bench_function("generate/fig4", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            generate(&property, &GeneratorConfig::new(seed)).trace.len()
        });
    });

    let base = generate(&property, &GeneratorConfig::new(1)).trace;
    group.bench_function("mutate/fig4", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            mutate(&property, &base, 10, seed).len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
