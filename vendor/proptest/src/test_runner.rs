//! Deterministic case runner (stand-in for `proptest::test_runner`).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration (subset of the real `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
    /// Global cap on `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why one generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert!` failed — the property is falsified.
    Fail(String),
    /// A `prop_assume!` failed — discard the case and draw another.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// Drives one `proptest!` test: draws cases until `config.cases` pass.
///
/// Every case gets its own RNG derived from `(seed, case index)`, so a
/// failure message's seed and case number exactly reproduce the inputs.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x1060_2016_u64); // DATE 2016 vintage; any fixed value works.
        TestRunner { config, seed }
    }

    pub fn run<F>(&mut self, mut test: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut case = 0u64;
        while passed < self.config.cases {
            case += 1;
            let mut rng =
                StdRng::seed_from_u64(self.seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            match test(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "proptest: too many global rejects ({rejected}) after {passed} \
                             passing cases (seed {:#x})",
                            self.seed
                        );
                    }
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "proptest: case #{case} failed (seed {:#x}, rerun with \
                         PROPTEST_SEED={}):\n{message}",
                        self.seed, self.seed
                    );
                }
            }
        }
    }
}
