//! Statistical model checking of the face-recognition platform: estimate
//! how often the case-study properties survive random fault injection,
//! then ask the qualitative question with an early-stopping SPRT.
//!
//! ```sh
//! cargo run --example smc_campaign
//! ```
//!
//! This is the library-level counterpart of `lomon smc`. Episodes are
//! full platform simulations with seed-randomized timing, configuration
//! ordering and faults; every worker monitors its episodes through one
//! reused `lomon-engine` session. The reports are identical for any
//! worker count — only the wall clock changes.

use lomon::smc::{Campaign, CampaignConfig, GenModel, ScenarioModel, SprtConfig};
use lomon::tlm::scenario::ScenarioConfig;

fn main() {
    // 1. Quantitative: with a 25% per-episode fault probability, what is
    //    the satisfaction probability of each property?
    let model = ScenarioModel::new(ScenarioConfig::nominal(0)).with_fault_probability(0.25);
    let config = CampaignConfig::estimate(2024, 400).with_jobs(0); // 0 = all cores
    let campaign = Campaign::new(&model, config).expect("case-study properties compile");
    println!("== estimation: 400 platform episodes, fault probability 0.25 ==");
    let report = campaign.run();
    print!("{}", report.render());

    // 2. Qualitative: is each property satisfied at least 90% of the time?
    //    The SPRT stops as soon as the evidence crosses Wald's thresholds —
    //    compare its episode count with the fixed-size campaign above.
    let sprt = SprtConfig::new(0.9, 0.6).expect("valid indifference region");
    println!();
    println!("== SPRT: H0 p >= 0.9 vs H1 p <= 0.6 (alpha = beta = 0.05) ==");
    let report = Campaign::new(&model, CampaignConfig::sprt(2024, sprt))
        .expect("compiles")
        .run();
    print!("{}", report.render());
    println!(
        "   -> decided after {} episodes instead of a fixed-size campaign's 400+",
        report.episodes
    );

    // 3. The same machinery over language-based stimuli: generate members
    //    of Example 2's language, mutate most of them, and measure how
    //    often a single-edit near-miss still satisfies the property.
    let gen = GenModel::new(vec![
        "all{set_imgAddr, set_glAddr, set_glSize} << start repeated".to_owned(),
    ])
    .expect("anchor parses")
    .with_mutation_probability(0.8);
    println!();
    println!("== mutation survival: generated stimuli, 80% mutated ==");
    let report = Campaign::new(&gen, CampaignConfig::estimate(7, 500))
        .expect("compiles")
        .run();
    print!("{}", report.render());
}
