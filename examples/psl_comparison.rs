//! The ViaPSL pipeline made visible: translate a loose-ordering property
//! into PSL (paper Section 5), print the formula, and compare the two
//! monitoring strategies' costs — a miniature of the paper's Fig. 6.
//!
//! ```sh
//! cargo run --example psl_comparison
//! ```

use lomon::core::complexity::{drct_cost, measure_drct};
use lomon::core::parse::parse_property;
use lomon::gen::{generate, GeneratorConfig};
use lomon::psl::complexity::viapsl_cost;
use lomon::psl::translate::{translate, TranslateOptions};
use lomon::trace::Vocabulary;

fn main() {
    // A small pattern whose translation is printable…
    let mut voc = Vocabulary::new();
    let small = parse_property("all{a, b} < c[2,3] << i repeated", &mut voc).unwrap();
    println!("property      : {}", small.display(&voc));
    let translation = translate(&small, TranslateOptions::default()).expect("translates");
    println!(
        "PSL conjuncts : {} observers, formula below",
        translation.observers.len()
    );
    println!("{}", translation.formula.display(&voc));
    println!();

    // …and the six Fig. 6 configurations compared in cost.
    println!(
        "{:<46} {:>12} {:>12} {:>14} {:>14}",
        "configuration", "Drct ops", "Drct bits", "ViaPSL ops", "ViaPSL bits"
    );
    for text in [
        "n << i repeated",
        "n[100,60000] << i repeated",
        "all{n1, n2, n3, n4} << i once",
        "all{n1, n2, n3, n4, n5} << i once",
        "n1 => n2 < n3 < n4 within 1 ms",
        "n1 => n2[100,60000] < n3 < n4 within 1 ms",
    ] {
        let mut voc = Vocabulary::new();
        let property = parse_property(text, &mut voc).unwrap();
        let workload = generate(&property, &GeneratorConfig::new(1)).trace;
        let drct = measure_drct(&property, &workload, &voc);
        let bits = drct_cost(&property).state_bits;
        let psl = viapsl_cost(&property).expect("translatable");
        println!(
            "{:<46} {:>12.1} {:>12} {:>14} {:>14}",
            text, drct.ops_per_event, bits, psl.ops_per_event, psl.state_bits
        );
    }
    println!();
    println!("The ranged rows cost ViaPSL ten orders of magnitude more than");
    println!("Drct — the paper's headline result, reproduced from scratch.");
}
