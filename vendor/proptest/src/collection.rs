//! Collection strategies (stand-in for `proptest::collection`).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive length bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

/// A `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
