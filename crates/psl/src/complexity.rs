//! The ViaPSL cost model (paper Section 7) — closed forms.
//!
//! Following \[14\] (Pierre & Ferro), the monitors generated from a PSL
//! formula have per-event time and state **linear in the size of the
//! formula**. The translation's formula size, however, explodes with range
//! widths: the paper's bound is
//!
//! ```text
//! Θ( ∆ + Σᵢ (vᵢ−uᵢ+1)² + Σⱼ |α(Fⱼ)|·|α(Fⱼ₋₁)| )
//! ```
//!
//! with `∆` the cost of the run-length lexer. This module computes, without
//! materializing anything, the exact conjunct counts and expanded formula
//! node counts of our translation (validated against the materialized
//! [`crate::translate::translate`] output by tests), from which:
//!
//! * `ops_per_event` = expanded formula nodes — each node is one sub-monitor
//!   doing O(1) work per observed token;
//! * `state_bits` = [`BITS_PER_NODE`] × expanded formula nodes — each node
//!   is realized as a small sub-monitor with a constant number of state
//!   bits in the modular synthesis.
//!
//! Absolute constants differ from the paper's (their generator's cost model
//! is not published); the *shape* — flat Drct vs quadratic ViaPSL in the
//! range width — is what EXPERIMENTS.md compares.

use lomon_core::ast::{Fragment, FragmentOp, Property, Range};

use crate::translate::{episode_shape, Family, TranslateError};

/// State bits charged per expanded formula node in the modular synthesis.
pub const BITS_PER_NODE: u64 = 4;

/// Closed-form cost of the ViaPSL strategy for one property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViaPslCost {
    /// Total conjuncts (= observers) of the translation.
    pub conjuncts: u64,
    /// Total expanded formula nodes.
    pub formula_nodes: u64,
    /// Per-event monitor operations (`= formula_nodes`).
    pub ops_per_event: u64,
    /// Monitor state bits (`= BITS_PER_NODE × formula_nodes`).
    pub state_bits: u64,
    /// Per-event lexer operations (the paper's `∆`, time part).
    pub delta_ops: u64,
    /// Lexer state bits (the paper's `∆`, space part).
    pub delta_bits: u64,
    /// The paper's Θ expression value (`Σ widths² + Σ |α|·|α|` in units).
    pub theta_units: u64,
    /// Per-family `(family, conjuncts, expanded nodes)` breakdown.
    pub per_family: Vec<(Family, u64, u64)>,
}

/// Weight of a single symbolic range atom once expanded (`2w−1` nodes for a
/// `w`-wide token disjunction).
fn atom_weight(range: &Range) -> u64 {
    2 * range.width() - 1
}

/// Weight of the union-of-ranges token set of a fragment.
fn fragment_tokens_weight(fragment: &Fragment) -> u64 {
    let total: u64 = fragment.ranges.iter().map(atom_weight).sum();
    if fragment.ranges.len() > 1 {
        total + 1
    } else {
        total
    }
}

/// The per-fragment observation obligations and their target weights.
fn obligation_weights(fragment: &Fragment) -> Vec<u64> {
    match fragment.op {
        FragmentOp::All => fragment.ranges.iter().map(atom_weight).collect(),
        FragmentOp::Any => vec![fragment_tokens_weight(fragment)],
    }
}

/// Total conjunct count of the translation, without materializing.
///
/// # Errors
///
/// Propagates [`TranslateError::Unsupported`] for shapes outside the
/// encoding's domain.
pub fn conjunct_count(property: &Property) -> Result<u64, TranslateError> {
    Ok(viapsl_cost(property)?.conjuncts)
}

/// Compute the full closed-form ViaPSL cost of a property.
///
/// # Errors
///
/// Propagates [`TranslateError::Unsupported`] for shapes outside the
/// encoding's domain.
///
/// # Example
///
/// ```
/// use lomon_core::parse::parse_property;
/// use lomon_psl::complexity::viapsl_cost;
/// use lomon_trace::Vocabulary;
///
/// let mut voc = Vocabulary::new();
/// let narrow = parse_property("n << i repeated", &mut voc).unwrap();
/// let wide = parse_property("n[100,60000] << i repeated", &mut voc).unwrap();
/// let narrow_cost = viapsl_cost(&narrow).unwrap();
/// let wide_cost = viapsl_cost(&wide).unwrap();
/// // The ViaPSL explosion: ops grow by the square of the range width.
/// assert!(wide_cost.ops_per_event > 3_000_000_000 * narrow_cost.ops_per_event / 100);
/// ```
pub fn viapsl_cost(property: &Property) -> Result<ViaPslCost, TranslateError> {
    let shape = episode_shape(property)?;
    let content = &shape.content;

    // Weight of the episode-boundary token set `I`.
    let trigger_weight: u64 = match &shape.trigger_range {
        Some(r) => atom_weight(r),
        None => 1,
    };
    let until_body = |avoid_w: u64, target_w: u64| 2 + avoid_w + target_w;
    // W-scoping of the invariant conjuncts for one-shot properties adds the
    // boundary disjunction to each of them.
    let scope_w = if shape.repeated { 0 } else { trigger_weight };
    // Precede/BeforeI wrapper: body [∧ always(I → X body)] when repeated.
    let rearmed = |body: u64| {
        if shape.repeated {
            1 + body + (3 + trigger_weight + body)
        } else {
            body
        }
    };

    let mut per_family: Vec<(Family, u64, u64)> = Vec::new();
    let mut push = |family: Family, count: u64, nodes: u64| {
        per_family.push((family, count, nodes));
    };

    // Asynch: unordered name pairs over α.
    let alpha = shape.alphabet.len() as u64;
    let asynch_count = alpha * alpha.saturating_sub(1) / 2;
    push(Family::Asynch, asynch_count, asynch_count * 5);

    // BadToken: non-trivial ranges (content + trigger range).
    let mut nontrivial: u64 = content
        .iter()
        .flat_map(|f| f.ranges.iter())
        .filter(|r| !r.is_trivial())
        .count() as u64;
    if shape
        .trigger_range
        .as_ref()
        .is_some_and(|r| !r.is_trivial())
    {
        nontrivial += 1;
    }
    push(Family::BadToken, nontrivial, nontrivial * (3 + scope_w));

    // MaxOne and Range: per exact token (pair) of each content range.
    let mut maxone_count = 0u64;
    let mut maxone_nodes = 0u64;
    let mut range_count = 0u64;
    let mut range_nodes = 0u64;
    for range in content.iter().flat_map(|f| f.ranges.iter()) {
        let w = range.width();
        maxone_count += w;
        maxone_nodes += w * (3 + 1 + until_body(1, trigger_weight) + scope_w);
        range_count += w * (w - 1);
        range_nodes += w * (w - 1) * (2 + 1 + until_body(1, trigger_weight) + scope_w);
    }
    push(Family::MaxOne, maxone_count, maxone_nodes);
    push(Family::Range, range_count, range_nodes);

    // Order: name pairs of adjacent fragments.
    let mut order_count = 0u64;
    let mut order_nodes = 0u64;
    for j in 1..content.len() {
        for x in &content[j].ranges {
            for y in &content[j - 1].ranges {
                order_count += 1;
                order_nodes +=
                    2 + atom_weight(x) + until_body(atom_weight(y), trigger_weight) + scope_w;
            }
        }
    }
    push(Family::Order, order_count, order_nodes);

    // Precede: per adjacent pair, one conjunct per obligation of the
    // predecessor.
    let mut precede_count = 0u64;
    let mut precede_nodes = 0u64;
    for j in 1..content.len() {
        let avoid_w = fragment_tokens_weight(&content[j]);
        for target_w in obligation_weights(&content[j - 1]) {
            precede_count += 1;
            precede_nodes += rearmed(until_body(avoid_w, target_w));
        }
    }
    push(Family::Precede, precede_count, precede_nodes);

    // BeforeI/AfterI: every fragment's obligations, guarded by `I`.
    let mut beforei_count = 0u64;
    let mut beforei_nodes = 0u64;
    for fragment in content {
        for target_w in obligation_weights(fragment) {
            beforei_count += 1;
            beforei_nodes += rearmed(until_body(trigger_weight, target_w));
        }
    }
    push(Family::BeforeI, beforei_count, beforei_nodes);

    let conjuncts: u64 = per_family.iter().map(|(_, c, _)| c).sum();
    let formula_nodes: u64 = per_family.iter().map(|(_, _, n)| n).sum();

    // The paper's Θ expression, in abstract units.
    let mut theta_units = 0u64;
    let mut all_ranges: Vec<&Range> = content.iter().flat_map(|f| f.ranges.iter()).collect();
    if let Some(r) = &shape.trigger_range {
        all_ranges.push(r);
    }
    for r in &all_ranges {
        theta_units += r.width() * r.width();
    }
    for j in 1..content.len() {
        theta_units += (content[j].ranges.len() * content[j - 1].ranges.len()) as u64;
    }

    // ∆: the run-length lexer (2 ops/event; state as in lomon-trace).
    let has_collapsible = all_ranges.iter().any(|r| !r.is_trivial());
    let max_bound = all_ranges.iter().map(|r| r.max).max().unwrap_or(1);
    let (delta_ops, delta_bits) = if has_collapsible {
        (
            2,
            lomon_trace::RunLengthLexer::state_bits(u64::from(max_bound)),
        )
    } else {
        (0, 0)
    };

    Ok(ViaPslCost {
        conjuncts,
        formula_nodes,
        ops_per_event: formula_nodes,
        state_bits: BITS_PER_NODE * formula_nodes,
        delta_ops,
        delta_bits,
        theta_units,
        per_family,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::{translate, TranslateOptions};
    use lomon_core::parse::parse_property;
    use lomon_trace::Vocabulary;

    fn parse(text: &str) -> Property {
        let mut voc = Vocabulary::new();
        parse_property(text, &mut voc).expect(text)
    }

    /// The closed forms must agree exactly with the materialized
    /// translation on every family.
    #[test]
    fn closed_form_matches_materialization() {
        for text in [
            "n << i repeated",
            "n << i once",
            "n[2,8] << i repeated",
            "all{n1, n2, n3, n4} << i once",
            "all{n1, n2, n3, n4, n5} << i once",
            "all{a, b} < any{c[2,8], d} < e << i repeated",
            "n1 => n2 < n3 < n4 within 1 ms",
            "start => read_img[2,4] < set_irq within 1 ms",
            "start => read_img[2,4] within 1 ms",
        ] {
            let p = parse(text);
            let cost = viapsl_cost(&p).expect(text);
            let t = translate(&p, TranslateOptions::default()).expect(text);
            assert_eq!(
                cost.conjuncts,
                t.observers.len() as u64,
                "conjunct count for {text}"
            );
            let observed_nodes: u64 = t.observers.iter().map(|o| o.weight()).sum();
            assert_eq!(cost.formula_nodes, observed_nodes, "nodes for {text}");
            // Per-family counts agree too.
            for &(family, count, nodes) in &cost.per_family {
                let got_count = t.observers.iter().filter(|o| o.family() == family).count() as u64;
                let got_nodes: u64 = t
                    .observers
                    .iter()
                    .filter(|o| o.family() == family)
                    .map(|o| o.weight())
                    .sum();
                assert_eq!(count, got_count, "{family:?} count for {text}");
                assert_eq!(nodes, got_nodes, "{family:?} nodes for {text}");
            }
        }
    }

    #[test]
    fn range_width_drives_quadratic_growth() {
        let narrow = viapsl_cost(&parse("n[1,2] << i repeated")).unwrap();
        let wide = viapsl_cost(&parse("n[1,20] << i repeated")).unwrap();
        // 2 tokens → 2 MaxOne + 2 Range; 20 tokens → 20 + 380.
        assert!(wide.conjuncts > 50 * narrow.conjuncts / 10);
        assert!(wide.theta_units == 400 + narrow.theta_units - 4);
    }

    #[test]
    fn huge_range_cost_is_computable_symbolically() {
        let cost = viapsl_cost(&parse("n[100,60000] << i repeated")).unwrap();
        let w = 59_901u64;
        // Range family dominates: w(w−1) conjuncts.
        assert!(cost.conjuncts > w * (w - 1));
        assert!(cost.ops_per_event > 10_000_000_000);
        assert!(cost.state_bits > 40_000_000_000);
        assert_eq!(cost.delta_ops, 2);
        assert!(cost.delta_bits > 0);
        assert_eq!(cost.theta_units, w * w); // the range's width squared
    }

    #[test]
    fn drct_vs_viapsl_shape_fig6() {
        // Rows 1 vs 2 of Fig. 6: Drct flat, ViaPSL explodes.
        let row1 = viapsl_cost(&parse("n << i repeated")).unwrap();
        let row2 = viapsl_cost(&parse("n[100,60000] << i repeated")).unwrap();
        assert!(row2.ops_per_event / row1.ops_per_event.max(1) > 1_000_000);

        let d1 = lomon_core::complexity::drct_cost(&parse("n << i repeated"));
        let d2 = lomon_core::complexity::drct_cost(&parse("n[100,60000] << i repeated"));
        assert_eq!(d1.theta_time, d2.theta_time);
    }

    #[test]
    fn fragment_size_grows_linearly() {
        let c4 = viapsl_cost(&parse("all{n1, n2, n3, n4} << i once")).unwrap();
        let c5 = viapsl_cost(&parse("all{n1, n2, n3, n4, n5} << i once")).unwrap();
        assert!(c5.ops_per_event > c4.ops_per_event);
        assert!(c5.ops_per_event < 2 * c4.ops_per_event);
    }

    #[test]
    fn delta_absent_for_trivial_ranges() {
        let cost = viapsl_cost(&parse("n << i repeated")).unwrap();
        assert_eq!(cost.delta_ops, 0);
        assert_eq!(cost.delta_bits, 0);
    }

    #[test]
    fn timed_rows_cover_trigger_range() {
        // Fig. 6 row 6: the huge range sits in Q.
        let cost = viapsl_cost(&parse("n1 => n2[100,60000] < n3 < n4 within 1 ms")).unwrap();
        let w = 59_901u64;
        assert!(cost.conjuncts > w * (w - 1));
        assert!(cost.theta_units >= w * w);
    }
}
