//! The Drct cost model (paper Section 7).
//!
//! The paper measures two quantities for a monitor:
//!
//! * **time** — "the number of operations executed by the monitors for each
//!   event observed";
//! * **space** — "the number of bits needed to store the Boolean and bounded
//!   Integer variables".
//!
//! For the direct strategy it states
//!
//! * time `Θ(max_{i∈[1..q]} |α(F_i)|)` — only the active fragment's
//!   recognizers work while scanning a sequence;
//! * space `Θ(Σ_{i=1..q} |α(F_i)|)`, with counters bounded by `max v_i` —
//!   **independent of the range widths**, the headline claim of Fig. 6.
//!
//! This module computes both the Θ-level quantities from the AST and the
//! *exact* accounting of our implementation (via the instrumented monitors),
//! plus a helper that measures average operations per event on a workload.
//! Absolute constants inevitably differ from the paper's unknown SystemC
//! implementation; EXPERIMENTS.md compares the *shapes*.

use lomon_trace::Trace;

use crate::ast::{LooseOrdering, Property};
use crate::monitor::PropertyMonitor;
use crate::verdict::Monitor;

/// Static cost figures of a Drct monitor for one property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrctCost {
    /// `max_j |α(F_j)|` — the Θ-level per-event time measure.
    pub theta_time: u64,
    /// `Σ_j |α(F_j)|` — the Θ-level space measure.
    pub theta_space: u64,
    /// Exact mutable-state bits of our monitor implementation.
    pub state_bits: u64,
    /// The largest range bound `max v_i` (drives counter width only).
    pub max_bound: u32,
}

fn orderings_of(property: &Property) -> Vec<&LooseOrdering> {
    match property {
        Property::Antecedent(a) => vec![&a.antecedent],
        Property::Timed(t) => vec![&t.premise, &t.response],
    }
}

/// Compute the static Drct cost of a (well-formed) property.
///
/// # Example
///
/// ```
/// use lomon_core::complexity::drct_cost;
/// use lomon_core::parse::parse_property;
/// use lomon_trace::Vocabulary;
///
/// let mut voc = Vocabulary::new();
/// let narrow = parse_property("n << i repeated", &mut voc).unwrap();
/// let wide = parse_property("n[100,60000] << i repeated", &mut voc).unwrap();
/// let narrow_cost = drct_cost(&narrow);
/// let wide_cost = drct_cost(&wide);
/// // The headline claim: range widths do not change the time measure.
/// assert_eq!(narrow_cost.theta_time, wide_cost.theta_time);
/// ```
pub fn drct_cost(property: &Property) -> DrctCost {
    let orderings = orderings_of(property);
    let theta_time = orderings
        .iter()
        .map(|l| l.max_fragment_alpha() as u64)
        .max()
        .unwrap_or(0);
    let theta_space = orderings
        .iter()
        .map(|l| l.total_alpha() as u64)
        .sum::<u64>();
    let max_bound = orderings
        .iter()
        .flat_map(|l| l.ranges())
        .map(|r| r.max)
        .max()
        .unwrap_or(0);
    let state_bits = match property {
        Property::Antecedent(a) => {
            crate::antecedent::AntecedentMonitor::new(a.clone()).state_bits()
        }
        Property::Timed(t) => crate::timed::TimedImplicationMonitor::new(t.clone()).state_bits(),
    };
    DrctCost {
        theta_time,
        theta_space,
        state_bits,
        max_bound,
    }
}

/// Measured cost of running a Drct monitor over a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredCost {
    /// Events observed.
    pub events: u64,
    /// Total abstract operations executed.
    pub total_ops: u64,
    /// Average operations per observed event.
    pub ops_per_event: f64,
    /// Mutable state bits of the monitor.
    pub state_bits: u64,
}

/// Run the property's Drct monitor (diagnostics off) over `trace` and report
/// the measured operation counts.
///
/// # Panics
///
/// Panics if the property is not well-formed — measurement presumes a valid
/// monitor.
pub fn measure_drct(
    property: &Property,
    trace: &Trace,
    voc: &lomon_trace::Vocabulary,
) -> MeasuredCost {
    let monitor = crate::monitor::build_monitor(property.clone(), voc)
        .expect("property must be well-formed for measurement");
    let mut monitor: PropertyMonitor = monitor.without_diagnostics();
    for &event in trace.iter() {
        monitor.observe(event);
    }
    let events = trace.len() as u64;
    let total_ops = monitor.ops();
    MeasuredCost {
        events,
        total_ops,
        ops_per_event: if events == 0 {
            0.0
        } else {
            total_ops as f64 / events as f64
        },
        state_bits: monitor.state_bits(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_property;
    use lomon_trace::{Trace, Vocabulary};

    #[test]
    fn theta_measures_fig6_rows() {
        let mut voc = Vocabulary::new();
        // Row 1 vs row 2: range width must not change θ-time or θ-space.
        let r1 = drct_cost(&parse_property("n << i repeated", &mut voc).unwrap());
        let r2 = drct_cost(&parse_property("n[100,60000] << i repeated", &mut voc).unwrap());
        assert_eq!(r1.theta_time, 1);
        assert_eq!(r2.theta_time, 1);
        assert_eq!(r1.theta_space, r2.theta_space);
        // Only the counter width grows.
        assert!(r2.state_bits > r1.state_bits);
        assert!(r2.state_bits - r1.state_bits <= 16);
    }

    #[test]
    fn theta_grows_with_fragment_size() {
        let mut voc = Vocabulary::new();
        let c4 = drct_cost(&parse_property("all{n1, n2, n3, n4} << i once", &mut voc).unwrap());
        let c5 = drct_cost(&parse_property("all{n1, n2, n3, n4, n5} << i once", &mut voc).unwrap());
        assert_eq!(c4.theta_time, 4);
        assert_eq!(c5.theta_time, 5);
        assert!(c5.state_bits > c4.state_bits);
    }

    #[test]
    fn timed_cost_covers_both_sides() {
        let mut voc = Vocabulary::new();
        let c = drct_cost(&parse_property("n1 => n2 < n3 < n4 within 1 ms", &mut voc).unwrap());
        assert_eq!(c.theta_time, 1); // all fragments are singletons
        assert_eq!(c.theta_space, 4);
        assert_eq!(c.max_bound, 1);
    }

    #[test]
    fn measured_ops_are_flat_in_range_width() {
        let mut voc = Vocabulary::new();
        let narrow = parse_property("n[1,4] << i repeated", &mut voc).unwrap();
        let wide = parse_property("m[1,60000] << i repeated", &mut voc).unwrap();
        let n = voc.lookup("n").unwrap();
        let m = voc.lookup("m").unwrap();
        let i = voc.lookup("i").unwrap();
        let trace_n = Trace::from_names([n, n, n, i, n, i]);
        let trace_m = Trace::from_names([m, m, m, i, m, i]);
        let cost_narrow = measure_drct(&narrow, &trace_n, &voc);
        let cost_wide = measure_drct(&wide, &trace_m, &voc);
        assert_eq!(cost_narrow.total_ops, cost_wide.total_ops);
        assert!(cost_narrow.ops_per_event > 0.0);
    }

    #[test]
    fn measured_cost_on_empty_trace() {
        let mut voc = Vocabulary::new();
        let p = parse_property("n << i once", &mut voc).unwrap();
        let cost = measure_drct(&p, &Trace::new(), &voc);
        assert_eq!(cost.events, 0);
        assert_eq!(cost.ops_per_event, 0.0);
    }
}
