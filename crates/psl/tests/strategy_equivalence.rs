//! Cross-strategy equivalence: Drct monitors, ViaPSL observer monitors, the
//! independent NFA pattern semantics and the three-valued PSL evaluation
//! must all agree on (untimed) acceptance — the validation the paper
//! performs with SPOT and Lustre testing tools.

use proptest::prelude::*;

use lomon_core::ast::{
    Antecedent, Fragment, FragmentOp, LooseOrdering, Property, Range, TimedImplication,
};
use lomon_core::monitor::build_monitor;
use lomon_core::semantics::PatternOracle;
use lomon_core::verdict::{Monitor, Verdict};
use lomon_core::wf;
use lomon_psl::eval::{eval, Truth};
use lomon_psl::monitor::PslMonitor;
use lomon_psl::translate::{translate, TranslateOptions};
use lomon_trace::{Name, NameSet, RunLengthLexer, SimTime, Trace, Vocabulary};

#[derive(Debug, Clone)]
struct PatternSpec {
    fragments: Vec<(bool, Vec<(u32, u32)>)>,
    repeated: bool,
}

fn fragment_strategy() -> impl Strategy<Value = (bool, Vec<(u32, u32)>)> {
    (
        any::<bool>(),
        prop::collection::vec((1u32..=3, 0u32..=2), 1..=3),
    )
}

fn pattern_strategy() -> impl Strategy<Value = PatternSpec> {
    (
        prop::collection::vec(fragment_strategy(), 1..=3),
        any::<bool>(),
    )
        .prop_map(|(fragments, repeated)| PatternSpec {
            fragments,
            repeated,
        })
}

fn build_ordering(
    spec: &[(bool, Vec<(u32, u32)>)],
    voc: &mut Vocabulary,
    prefix: &str,
    output: bool,
) -> LooseOrdering {
    let mut counter = 0;
    LooseOrdering::new(
        spec.iter()
            .map(|(any_op, ranges)| {
                let op = if *any_op {
                    FragmentOp::Any
                } else {
                    FragmentOp::All
                };
                let ranges = ranges
                    .iter()
                    .map(|&(u, extra)| {
                        let text = format!("{prefix}{counter}");
                        let name = if output {
                            voc.output(&text)
                        } else {
                            voc.input(&text)
                        };
                        counter += 1;
                        Range::new(name, u, u + extra)
                    })
                    .collect();
                Fragment::new(op, ranges)
            })
            .collect(),
    )
}

/// Run every implementation over `trace` and check they agree on untimed
/// acceptance (and on `Satisfied` for one-shot antecedents).
fn check_all(property: &Property, voc: &Vocabulary, trace: &Trace) {
    // 1. Independent pattern semantics.
    let oracle = PatternOracle::new(property);
    let oracle_ok = oracle.check(trace).is_ok();

    // 2. Direct monitor.
    let mut drct = build_monitor(property.clone(), voc).expect("well-formed");
    for &e in trace.iter() {
        drct.observe(e);
    }
    // No finish(): timed deadlines must not interfere (bounds are huge, but
    // end-of-trace deadline checks would still fire on unanswered P).
    let drct_ok = drct.verdict() != Verdict::Violated;

    // 3. ViaPSL observer monitor.
    let translation = translate(property, TranslateOptions::default()).expect("supported, small");
    let mut viapsl = PslMonitor::from_translation(translation.clone());
    for &e in trace.iter() {
        viapsl.observe(e);
    }
    viapsl.finish(trace.end_time());
    let viapsl_ok = viapsl.verdict() != Verdict::Violated;

    // 4. Three-valued evaluation of the materialized formula on the lexed
    //    token stream.
    let mut collapsible = NameSet::new();
    for r in &translation.collapsible {
        collapsible.insert(r.name);
    }
    let mut lexer = RunLengthLexer::new(collapsible);
    for r in &translation.collapsible {
        lexer = lexer.with_bound(r.name, r.max);
    }
    let mut tokens = Vec::new();
    for &e in trace.iter() {
        if property.alpha().contains(e.name) {
            tokens.extend(lexer.push(e).into_iter().map(|l| l.token));
        }
    }
    // A pending run at end of trace is extendable: the evaluation is False
    // only if the tokens so far are False, or every completion of the
    // pending run makes them False.
    let eval_ok = match lexer.finish() {
        None => eval(&translation.formula, &tokens) != Truth::False,
        Some(pending) => {
            if eval(&translation.formula, &tokens) == Truth::False {
                false
            } else {
                let bound = translation
                    .collapsible
                    .iter()
                    .find(|r| r.name == pending.token.name)
                    .map(|r| r.max)
                    .unwrap_or(pending.token.run);
                !(pending.token.run..=bound + 1).all(|run| {
                    let mut with = tokens.clone();
                    with.push(lomon_trace::LexedToken {
                        name: pending.token.name,
                        run,
                    });
                    eval(&translation.formula, &with) == Truth::False
                })
            }
        }
    };

    let word: Vec<&str> = trace.names().map(|n| voc.resolve(n)).collect();
    assert_eq!(
        drct_ok,
        oracle_ok,
        "Drct vs oracle on {} over {word:?}",
        property.display(voc)
    );
    assert_eq!(
        viapsl_ok,
        oracle_ok,
        "ViaPSL vs oracle on {} over {word:?}",
        property.display(voc)
    );
    assert_eq!(
        eval_ok,
        oracle_ok,
        "PSL eval vs oracle on {} over {word:?}\nformula: {}\ntokens: {tokens:?}",
        property.display(voc),
        translation.formula.display(voc)
    );

    if let Property::Antecedent(a) = property {
        if !a.repeated && oracle_ok {
            assert_eq!(
                viapsl.verdict() == Verdict::Satisfied,
                drct.verdict() == Verdict::Satisfied,
                "Satisfied mismatch on {} over {word:?}",
                property.display(voc)
            );
        }
    }
}

fn universe_trace(indices: &[usize], universe: &[Name]) -> Trace {
    Trace::from_pairs(indices.iter().enumerate().map(|(k, &ix)| {
        (
            SimTime::from_ns(k as u64 + 1),
            universe[ix % universe.len()],
        )
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn antecedent_strategies_agree(
        spec in pattern_strategy(),
        indices in prop::collection::vec(0usize..16, 0..24),
    ) {
        let mut voc = Vocabulary::new();
        let ordering = build_ordering(&spec.fragments, &mut voc, "n", false);
        let trigger = voc.input("trigger");
        let property: Property = Antecedent::new(ordering, trigger, spec.repeated).into();
        prop_assume!(wf::check(&property, &voc).is_empty());
        voc.input("noise");
        let universe: Vec<Name> = voc.iter().collect();
        check_all(&property, &voc, &universe_trace(&indices, &universe));
    }

    #[test]
    fn timed_strategies_agree(
        premise in pattern_strategy(),
        response in pattern_strategy(),
        indices in prop::collection::vec(0usize..16, 0..24),
    ) {
        let mut voc = Vocabulary::new();
        let p = build_ordering(&premise.fragments, &mut voc, "p", false);
        let q = build_ordering(&response.fragments, &mut voc, "q", true);
        // The translation needs a single-range reset point.
        prop_assume!(q.fragments.last().is_some_and(|f| f.ranges.len() == 1));
        let property: Property =
            TimedImplication::new(p, q, SimTime::from_sec(1)).into();
        prop_assume!(wf::check(&property, &voc).is_empty());
        voc.input("noise");
        let universe: Vec<Name> = voc.iter().collect();
        check_all(&property, &voc, &universe_trace(&indices, &universe));
    }

    /// Guided walks: mostly follow the Drct monitor's expected set so the
    /// traces regularly reach deep, valid configurations.
    #[test]
    fn guided_walks_agree_across_strategies(
        spec in pattern_strategy(),
        choices in prop::collection::vec((0usize..8, 0u8..10), 1..40),
    ) {
        let mut voc = Vocabulary::new();
        let ordering = build_ordering(&spec.fragments, &mut voc, "n", false);
        let trigger = voc.input("trigger");
        let property: Property = Antecedent::new(ordering, trigger, spec.repeated).into();
        prop_assume!(wf::check(&property, &voc).is_empty());
        let universe: Vec<Name> = voc.iter().collect();

        let mut scout = build_monitor(property.clone(), &voc).expect("well-formed");
        let mut names = Vec::new();
        for &(pick, misbehave) in &choices {
            let expected: Vec<Name> = scout.expected().iter().collect();
            let name = if misbehave == 0 || expected.is_empty() {
                universe[pick % universe.len()]
            } else {
                expected[pick % expected.len()]
            };
            names.push(name);
            scout.observe(lomon_trace::TimedEvent::new(
                name,
                SimTime::from_ns(names.len() as u64),
            ));
        }
        check_all(&property, &voc, &Trace::from_names(names));
    }
}
