//! The paper's running examples, checked end to end exactly as stated in
//! the text (Sections 3 and 4).

use lomon::core::monitor::build_monitor;
use lomon::core::parse::parse_property;
use lomon::core::semantics::{ordering_nfa, PatternOracle};
use lomon::core::verdict::{run_to_end, Verdict, ViolationKind};
use lomon::core::Monitor;
use lomon::trace::{Name, SimTime, Trace, Vocabulary};

/// Example 1: `ℓ = n1[2,8] < ({n2, n3}, ∨)` — "first we have several n1 in
/// a row (the number of occurrences of n1 is in [2,8]); then we have either
/// n2 or n3, or both in any order."
#[test]
fn example1_loose_ordering_language() {
    let mut voc = Vocabulary::new();
    let ordering =
        lomon::core::parse::parse_ordering("n1[2,8] < any{n2, n3}", &mut voc).expect("parses");
    let nfa = ordering_nfa(&ordering);
    let n = |s: &str| voc.lookup(s).unwrap();
    let (n1, n2, n3) = (n("n1"), n("n2"), n("n3"));

    let word = |xs: &[Name]| xs.to_vec();
    for good in [
        word(&[n1, n1, n2]),
        word(&[n1, n1, n1, n3]),
        word(&[n1, n1, n2, n3]),
        word(&[n1, n1, n3, n2]),
    ] {
        assert!(nfa.accepts(good.iter()), "{good:?}");
    }
    for bad in [
        word(&[n1, n2]),         // only one n1
        word(&[n2, n1, n1]),     // fragment order broken
        word(&[n1, n1]),         // second fragment missing
        word(&[n1, n1, n2, n2]), // n2 twice
    ] {
        assert!(!nfa.accepts(bad.iter()), "{bad:?}");
    }
    // Nine n1's exceed the range.
    let too_many = [n1; 9];
    assert!(!nfa.accepts_prefix(too_many.iter()));
}

/// Example 2: the IPU's configuration registers must all be written, in any
/// order, before recognition starts.
#[test]
fn example2_antecedent() {
    let mut voc = Vocabulary::new();
    let property = parse_property(
        "all{set_imgAddr, set_glAddr, set_glSize} << start once",
        &mut voc,
    )
    .expect("parses");
    let n = |s: &str| voc.lookup(s).unwrap();
    let (img, gl, sz, start) = (
        n("set_imgAddr"),
        n("set_glAddr"),
        n("set_glSize"),
        n("start"),
    );

    // All six permutations are accepted.
    let perms = [
        [img, gl, sz],
        [img, sz, gl],
        [gl, img, sz],
        [gl, sz, img],
        [sz, img, gl],
        [sz, gl, img],
    ];
    for perm in perms {
        let mut monitor = build_monitor(property.clone(), &voc).expect("well-formed");
        let trace = Trace::from_names(perm.into_iter().chain([start]));
        assert_eq!(
            run_to_end(&mut monitor, &trace),
            Verdict::Satisfied,
            "{perm:?}"
        );
    }

    // Missing any single register is rejected at `start`.
    for keep in perms[0]
        .iter()
        .copied()
        .take(2)
        .zip(perms[0].iter().copied().skip(1))
    {
        let (a, b) = keep;
        let mut monitor = build_monitor(property.clone(), &voc).expect("well-formed");
        let trace = Trace::from_names([a, b, start]);
        assert_eq!(run_to_end(&mut monitor, &trace), Verdict::Violated);
        let violation = monitor.violation().expect("diagnostic");
        assert_eq!(violation.kind, ViolationKind::MissingRange);
    }
}

/// Example 3: `(start ⇒ read_img[100,60000] < set_irq, T)` with the paper's
/// literal bounds — the monitor is insensitive to the huge range.
#[test]
fn example3_timed_implication_full_bounds() {
    let mut voc = Vocabulary::new();
    let property = parse_property(
        "start => read_img[100,60000] < set_irq within 60000 us",
        &mut voc,
    )
    .expect("parses");
    let n = |s: &str| voc.lookup(s).unwrap();
    let (start, read, irq) = (n("start"), n("read_img"), n("set_irq"));

    // 150 reads, nicely inside [100, 60000]; irq within the budget.
    let mut monitor = build_monitor(property.clone(), &voc).expect("well-formed");
    let mut trace = Trace::new();
    trace.push(start, SimTime::from_us(1));
    for k in 0..150u64 {
        trace.push(read, SimTime::from_us(2 + k));
    }
    trace.push(irq, SimTime::from_us(200));
    assert_eq!(
        run_to_end(&mut monitor, &trace),
        Verdict::PresumablySatisfied
    );

    // 99 reads are too few.
    let mut monitor = build_monitor(property.clone(), &voc).expect("well-formed");
    let mut trace = Trace::new();
    trace.push(start, SimTime::from_us(1));
    for k in 0..99u64 {
        trace.push(read, SimTime::from_us(2 + k));
    }
    trace.push(irq, SimTime::from_us(200));
    assert_eq!(run_to_end(&mut monitor, &trace), Verdict::Violated);

    // An irq far beyond the budget is a deadline miss.
    let mut monitor = build_monitor(property, &voc).expect("well-formed");
    let mut trace = Trace::new();
    trace.push(start, SimTime::from_us(1));
    for k in 0..150u64 {
        trace.push(read, SimTime::from_us(2 + k));
    }
    trace.push(irq, SimTime::from_sec(300));
    assert_eq!(run_to_end(&mut monitor, &trace), Verdict::Violated);
    assert_eq!(
        monitor.violation().unwrap().kind,
        ViolationKind::DeadlineMiss
    );
}

/// The Fig. 4 property with its full attribute machinery, against the
/// reference oracle on characteristic traces.
#[test]
fn fig4_property_characteristic_traces() {
    let mut voc = Vocabulary::new();
    let property = parse_property(
        "all{n1, n2} < any{n3[2,8], n4} < n5 << i repeated",
        &mut voc,
    )
    .expect("parses");
    let oracle = PatternOracle::new(&property);
    let n = |s: &str| voc.lookup(s).unwrap();
    let (n1, n2, n3, n4, n5, i) = (n("n1"), n("n2"), n("n3"), n("n4"), n("n5"), n("i"));

    let cases: Vec<(Vec<Name>, bool)> = vec![
        (vec![n1, n2, n3, n3, n5, i], true),
        (vec![n2, n1, n4, n5, i], true),
        (vec![n1, n2, n3, n3, n3, n4, n5, i], true),
        (vec![n1, n2, n4, n3, n3, n5, i], true),
        (vec![n1, n2, n3, n3, n5, i, n2, n1, n4, n5, i], true), // two episodes
        (vec![n1, n3, n3, n5, i], false),                       // n2 missing
        (vec![n1, n2, n3, n5, i], false),                       // one n3 only
        (vec![n1, n2, n5, i], false),                           // F2 skipped
        (vec![n1, n2, n3, n3, n4, n3, n5, i], false),           // n3 split
        (vec![i], false),                                       // trigger first
    ];
    for (word, expect_ok) in cases {
        let trace = Trace::from_names(word.clone());
        assert_eq!(
            oracle.check(&trace).is_ok(),
            expect_ok,
            "oracle on {word:?}"
        );
        let mut monitor = build_monitor(property.clone(), &voc).expect("well-formed");
        let verdict = run_to_end(&mut monitor, &trace);
        assert_eq!(verdict.is_ok(), expect_ok, "monitor on {word:?}");
    }
}
