//! Property-based guarantees of the generation/mutation/coverage layer:
//!
//! * every [`Mutant`] labelled `violates()` must actually drive the
//!   property's Drct monitor to `Violated` under `run_to_end` — the
//!   mutation oracle and the monitors must never disagree on a negative
//!   test, for any property shape, base seed or mutation seed;
//! * [`Coverage::overall`] is monotone under [`Coverage::record`]: more
//!   traces can only reveal more of the specification, never less.

use proptest::prelude::*;

use lomon_core::monitor::build_monitor;
use lomon_core::parse::parse_property;
use lomon_core::verdict::{run_to_end, Verdict};
use lomon_gen::{generate, mutate, Coverage, GeneratorConfig, Mutant};
use lomon_trace::Vocabulary;

/// A spread of property shapes: plain and ranged names, `∧`/`∨` fragments,
/// multi-fragment chains, one-shot and repeated, timed implications.
const TEXTS: &[&str] = &[
    "a << i once",
    "n[2,4] << i once",
    "all{a, b, c} << go repeated",
    "any{a, b} << go repeated",
    "all{a, b} < any{c[2,3], d} < e << i repeated",
    "all{a, b} < c << i once",
    "start => read[2,3] < irq within 1 ms",
    "go => out1 < out2[1,2] within 500 us",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The satellite guarantee: `violates() == true` ⟹ the monitor ends
    /// `Violated` on the mutant's trace. (The converse is checked too —
    /// a non-violating label must leave the monitor un-violated — so the
    /// labels are exact, not just sound.)
    #[test]
    fn violating_mutants_violate_under_run_to_end(
        text_ix in 0usize..TEXTS.len(),
        base_seed in 0u64..500,
        mutation_seed in 0u64..500,
    ) {
        let text = TEXTS[text_ix];
        let mut voc = Vocabulary::new();
        let property = parse_property(text, &mut voc).expect(text);
        let base = generate(&property, &GeneratorConfig::new(base_seed)).trace;
        let mutants: Vec<Mutant> = mutate(&property, &base, 12, mutation_seed);
        prop_assert!(!mutants.is_empty(), "{text}: no mutants from a non-empty base");
        for mutant in mutants {
            let mut monitor = build_monitor(property.clone(), &voc).expect("well-formed");
            let verdict = run_to_end(&mut monitor, &mutant.trace);
            if mutant.violates() {
                prop_assert_eq!(
                    verdict,
                    Verdict::Violated,
                    "{}: {:?} labelled violating but monitor says {}",
                    text,
                    mutant.kind,
                    verdict
                );
            } else {
                // Labels are exact: the untimed oracle accepting means the
                // monitor must not flag an (untimed) ordering violation.
                // Timed properties may still miss deadlines on re-spaced
                // timestamps, so restrict the converse to antecedents.
                if !text.contains("within") {
                    prop_assert!(
                        verdict.is_ok(),
                        "{}: {:?} labelled legal but monitor says {}",
                        text,
                        mutant.kind,
                        verdict
                    );
                }
            }
        }
    }

    /// Coverage only grows: recording any sequence of generated traces
    /// yields a non-decreasing `overall()` (and the three dimensions it is
    /// the minimum of stay within [0, 1]).
    #[test]
    fn coverage_overall_is_monotone_under_record(
        text_ix in 0usize..TEXTS.len(),
        seeds in prop::collection::vec(0u64..10_000, 1..24),
    ) {
        let text = TEXTS[text_ix];
        let mut voc = Vocabulary::new();
        let property = parse_property(text, &mut voc).expect(text);
        let mut coverage = Coverage::new(&property);
        let mut last = coverage.overall();
        prop_assert!(last >= 0.0);
        for seed in seeds {
            coverage.record(&generate(&property, &GeneratorConfig::new(seed)));
            let now = coverage.overall();
            prop_assert!(
                now >= last,
                "{}: overall() fell from {} to {} after seed {}",
                text,
                last,
                now,
                seed
            );
            prop_assert!(now <= 1.0 + 1e-9);
            last = now;
        }
    }
}
