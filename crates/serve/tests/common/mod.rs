//! Shared helpers of the serve e2e suites: a line-frame test client and a
//! minimal admin-HTTP caller.
#![allow(dead_code)] // each suite uses its own subset

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use lomon_serve::{ServeConfig, Server};

/// The standard two-property rulebook: the paper's IPU configuration
/// pattern plus a timed request/response bound.
pub const RULEBOOK: &str = "all{set_imgAddr, set_glAddr, set_glSize} << start repeated\n\
                            go => out:done within 50 ns\n";

/// A config with test-friendly timeouts (fast ticks, short-but-safe
/// deadlines).
pub fn test_config() -> ServeConfig {
    ServeConfig {
        read_tick: Duration::from_millis(5),
        idle_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(2),
        ..ServeConfig::default()
    }
}

pub fn start(rulebook: &str) -> Server {
    Server::start(test_config(), rulebook).expect("server starts")
}

/// One NDJSON stream client.
pub struct Client {
    pub stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    /// Send one frame (newline appended).
    pub fn send(&mut self, line: &str) {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
    }

    /// Send raw bytes, no framing.
    pub fn send_raw(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("send raw");
    }

    /// Read one frame (blocking up to the client read timeout).
    pub fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read frame");
        line
    }

    /// Half-close the write side and read everything until server EOF.
    pub fn finish(mut self) -> String {
        let _ = self.stream.shutdown(Shutdown::Write);
        let mut rest = String::new();
        let _ = self.reader.read_to_string(&mut rest);
        rest
    }

    /// Read until server EOF without closing our write side first (for
    /// streams the *server* terminates).
    pub fn read_to_eof(mut self) -> String {
        let mut rest = String::new();
        let _ = self.reader.read_to_string(&mut rest);
        rest
    }
}

/// One admin-endpoint HTTP request. Returns (status, body).
pub fn admin(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect admin");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: lomon\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = String::new();
    stream
        .try_clone()
        .expect("clone")
        .read_to_string(&mut response)
        .expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

/// Poll `cond` until it holds or `deadline` elapses; panics on timeout.
pub fn wait_until(what: &str, deadline: Duration, cond: impl Fn() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(
            start.elapsed() < deadline,
            "timed out after {deadline:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}
