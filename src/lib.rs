//! # lomon — loose-ordering monitors for SystemC/TLM-style models
//!
//! Umbrella crate re-exporting the whole workspace. See the README for the
//! architecture overview and `DESIGN.md` for the paper-to-code map.

pub use lomon_core as core;
pub use lomon_gen as gen;
pub use lomon_kernel as kernel;
pub use lomon_psl as psl;
pub use lomon_sync as sync;
pub use lomon_tlm as tlm;
pub use lomon_trace as trace;
