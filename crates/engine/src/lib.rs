//! # lomon-engine — streaming multi-property monitoring
//!
//! The paper's headline claim is that direct (Drct) recognizers make
//! loose-ordering monitoring cheap enough to leave enabled on every
//! simulation run. This crate is the subsystem that exercises the claim at
//! scale: an [`Engine`] compiles a *set* of properties once and then checks
//! **live event streams** against all of them incrementally — no
//! materialized `Trace` required.
//!
//! ## Event-indexed dispatch
//!
//! The engine builds an inverted subscription index from each property's
//! alphabet (`Name` → subscribed monitors). An incoming event only steps
//! the monitors that can possibly react to it, instead of broadcasting to
//! all N monitors; monitors whose verdict goes final are retired from
//! dispatch entirely. Two subtleties keep indexed dispatch *verdict-exact*
//! with respect to per-property [`lomon_core::verdict::run_to_end`]:
//!
//! * antecedent monitors ignore out-of-alphabet events outright, so
//!   skipping them loses nothing;
//! * timed-implication monitors use *any* event's timestamp to detect an
//!   expired hard deadline, so the engine keeps the earliest open
//!   [`lomon_core::verdict::Monitor::deadline`] among live timed monitors
//!   and, whenever an event's timestamp passes it, sweeps exactly those
//!   monitors with an `advance_time` notification before skipping them.
//!
//! The win is measured, not assumed: every [`Session`] counts events seen,
//! monitor steps performed, and steps skipped by the index
//! ([`DispatchStats`]), and `cargo run -p lomon-bench --bin engine_dispatch`
//! plots indexed vs naive-broadcast dispatch as the property count grows.
//!
//! ## Execution backends
//!
//! Orthogonal to *which* monitors an event reaches (dispatch) is *how* a
//! monitor step executes. A [`Session`] runs one of three backends:
//!
//! * [`Backend::Fused`] (the default) — at [`Engine::compile`] time the
//!   **whole rulebook** is lowered into one fused program
//!   ([`lomon_core::fused`]): per-property flat-table programs interned
//!   with structural deduplication, so every set of observationally
//!   identical properties shares **one** mutable cell arena, and one
//!   global event→(group, action-row) CSR table routes each event over
//!   the *unique* groups only. Verdicts fan back out to per-property
//!   slots through the group→members table. On overlapping rulebooks
//!   (many properties watching one interface — the SMC and NISTT shapes)
//!   this does strictly less work than any per-property backend: 200
//!   properties over a shared bus alphabet cost ~98 ns/event instead of
//!   the per-property backend's ~3.2 µs (see `BENCH_hot_loop.json`).
//! * [`Backend::Compiled`] — one flat-table monitor *per property*
//!   ([`lomon_core::compiled`]): a monitor step is one table row index
//!   and a handful of integer state updates, no allocation. The
//!   first-line **differential oracle** for the fused backend (same
//!   lowering, no sharing), and equivalent to it when no two properties
//!   share structure.
//! * [`Backend::Interp`] — the tree-walking interpreter monitors
//!   ([`lomon_core::monitor`]), which classify every event against the
//!   recognition-context bitsets at runtime. The **root oracle**, closest
//!   to the paper's construction: use it to cross-check a suspicious
//!   verdict (`--backend interp` on the CLI) or when stepping through
//!   monitor internals in a debugger.
//!
//! All three backends are verdict-, diagnostic- and ops-identical per
//! property (asserted by `tests/engine_oracle.rs` and the `hot_loop
//! --check` CI gate), so any disagreement is a bug in one of them.
//!
//! ## Static analysis
//!
//! [`Engine::compile_with_analysis`] compiles the rulebook and then runs
//! the whole-rulebook static analysis of [`lomon_core::analysis`] over the
//! fused representation — duplicate, vacuous, subsumed and conflicting
//! properties, unobserved vocabulary, dead action-table entries — returning
//! the engine together with the coded [`lomon_core::analysis::Diagnostic`]
//! findings. Compile failures convert to the same diagnostic form through
//! [`compile::error_diagnostics`]. The CLI's `lomon lint` is a thin shell
//! over these two calls.
//! `cargo run -p lomon-bench --bin hot_loop --release` measures the
//! ns/event gaps and writes the machine-readable `BENCH_hot_loop.json`
//! tracked at the repository root; [`DispatchStats`] exposes how much the
//! fusion shared (`unique_cells` vs `total_cells`, `shared_hits`).
//!
//! ## Explainability & profiling
//!
//! [`Session::enable_explain`] puts a session's monitors into explain
//! mode: each unit keeps a bounded flight recorder of contributing steps
//! ([`lomon_core::witness`]), so every violation in a report carries a
//! [`lomon_core::witness::Witness`] chain that replays to the identical
//! violation. Detached (the default) it costs nothing, like
//! [`Session::attach_metrics`]. For *where the time goes*,
//! [`profile_trace`] replays a recorded trace through the fused program
//! with per-group wall-clock attribution, optionally exporting through a
//! [`lomon_obs::Registry`] — the CLI's `lomon profile` is a shell over it.
//!
//! ## Sessions
//!
//! One compiled [`Engine`] serves any number of independent [`Session`]s —
//! one per simulated platform or traffic source — so millions of short
//! streams can be checked against a fixed rulebook without re-parsing or
//! re-validating anything. Sessions are plain data (`Send`), cheap to open,
//! and reusable via [`Session::reset`].
//!
//! ## Example
//!
//! ```
//! use lomon_engine::Engine;
//! use lomon_core::verdict::Verdict;
//! use lomon_trace::{SimTime, TimedEvent, Vocabulary};
//!
//! let mut voc = Vocabulary::new();
//! let engine = Engine::compile(
//!     &[
//!         "all{set_imgAddr, set_glAddr, set_glSize} << start once",
//!         "start => out:set_irq within 1 ms",
//!     ],
//!     &mut voc,
//! )
//! .expect("both properties compile");
//!
//! let mut session = engine.session();
//! for (ns, name) in [
//!     (10, "set_glAddr"),
//!     (12, "set_imgAddr"),
//!     (15, "set_glSize"),
//!     (20, "start"),
//!     (40, "set_irq"),
//! ] {
//!     let name = voc.lookup(name).expect("compiled alphabet");
//!     session.ingest(TimedEvent::new(name, SimTime::from_ns(ns)));
//! }
//! let report = session.finish(SimTime::from_ns(100));
//! assert_eq!(report.properties[0].verdict, Verdict::Satisfied);
//! assert!(report.is_ok());
//! assert!(report.stats.steps_skipped > 0, "the index skipped work");
//! ```

#![warn(missing_docs)]

pub mod compile;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod session;

pub use compile::{error_diagnostics, CompileError, Engine};
pub use metrics::SessionMetrics;
pub use profile::{profile_trace, GroupProfile, ProfileReport};
pub use report::{DispatchStats, EngineReport, PropertyReport};
pub use session::{Backend, DispatchMode, Session, SessionState};
