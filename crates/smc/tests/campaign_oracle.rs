//! Campaign-level guarantees, checked against ground truth:
//!
//! * **oracle convergence** — on a model whose episode space is small
//!   enough to enumerate exhaustively, the Chernoff–Hoeffding interval of
//!   every property must contain the exactly computed satisfaction
//!   probability;
//! * **jobs-determinism** — the same `(model, seed, mode)` must produce a
//!   bit-identical report for every worker count, for estimation and SPRT
//!   campaigns alike (the tentpole invariant of `lomon-smc`);
//! * **SPRT early stopping** — clearly separated hypotheses must decide
//!   long before the episode cap, with the decision matching ground truth.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use lomon_core::monitor::build_monitor;
use lomon_core::parse::parse_property;
use lomon_core::verdict::run_to_end;
use lomon_smc::{
    Campaign, CampaignConfig, CampaignMode, EpisodeModel, GenModel, ScenarioModel, SprtConfig,
    SprtDecision,
};
use lomon_tlm::scenario::ScenarioConfig;
use lomon_trace::{Name, SimTime, TimedEvent, Trace, Vocabulary};

/// The enumerable model: each episode is a uniformly random permutation of
/// the three events `a`, `b`, `go` — 6 equiprobable outcomes, so every
/// property's satisfaction probability is exactly (satisfying
/// permutations)/6.
struct PermutationModel {
    voc: Vocabulary,
    names: [Name; 3],
    properties: Vec<String>,
}

impl PermutationModel {
    fn new(properties: Vec<String>) -> Self {
        let mut voc = Vocabulary::new();
        let names = [voc.input("a"), voc.input("b"), voc.input("go")];
        PermutationModel {
            voc,
            names,
            properties,
        }
    }

    /// All 6 orderings of the three events.
    fn all_episodes(&self) -> Vec<Vec<Name>> {
        let [a, b, go] = self.names;
        vec![
            vec![a, b, go],
            vec![a, go, b],
            vec![b, a, go],
            vec![b, go, a],
            vec![go, a, b],
            vec![go, b, a],
        ]
    }

    /// Exhaustive ground truth for one property: the exact fraction of
    /// episodes whose trace satisfies it, computed by the per-property
    /// monitor (`run_to_end`), independently of the campaign machinery.
    fn ground_truth(&self, text: &str) -> f64 {
        let mut voc = self.voc.clone();
        let property = parse_property(text, &mut voc).expect("property parses");
        let episodes = self.all_episodes();
        let satisfied = episodes
            .iter()
            .filter(|names| {
                let trace = Trace::from_names(names.iter().copied());
                let mut monitor = build_monitor(property.clone(), &voc).expect("well-formed");
                run_to_end(&mut monitor, &trace).is_ok()
            })
            .count();
        satisfied as f64 / episodes.len() as f64
    }
}

impl EpisodeModel for PermutationModel {
    fn properties(&self) -> Vec<String> {
        self.properties.clone()
    }

    fn vocabulary(&self) -> Vocabulary {
        self.voc.clone()
    }

    fn episode(&self, seed: u64, out: &mut Vec<TimedEvent>) -> SimTime {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut names = self.names;
        names.shuffle(&mut rng);
        for (k, name) in names.into_iter().enumerate() {
            out.push(TimedEvent::new(name, SimTime::from_ns(10 * (k as u64 + 1))));
        }
        SimTime::from_ns(40)
    }
}

fn permutation_properties() -> Vec<String> {
    vec![
        // go must come last: 2 of 6 permutations → p = 1/3.
        "all{a, b} << go once".to_owned(),
        // a before go: 3 of 6 permutations → p = 1/2.
        "a << go once".to_owned(),
    ]
}

#[test]
fn estimator_interval_contains_the_exhaustive_probability() {
    let model = PermutationModel::new(permutation_properties());
    let campaign = Campaign::new(&model, CampaignConfig::estimate_with_precision(2024, 0.04))
        .expect("compiles");
    let report = campaign.run();
    assert!(report.episodes >= 1_000, "Okamoto bound sizes the campaign");
    for (estimate, text) in report.properties.iter().zip(permutation_properties()) {
        let truth = model.ground_truth(&text);
        assert!(
            estimate.contains(truth),
            "{text}: interval {:?} misses exhaustive probability {truth} \
             (mean {}, half-width {})",
            estimate.interval(),
            estimate.mean,
            estimate.half_width,
        );
        // The interval is non-vacuous: it actually separates 1/3 from 1/2.
        assert!(estimate.half_width < 0.05);
    }
    // Sanity on the ground truths themselves.
    assert_eq!(model.ground_truth(&permutation_properties()[0]), 1.0 / 3.0);
    assert_eq!(model.ground_truth(&permutation_properties()[1]), 0.5);
}

#[test]
fn estimation_reports_are_identical_for_every_worker_count() {
    let model = PermutationModel::new(permutation_properties());
    let reference = Campaign::new(&model, CampaignConfig::estimate(7, 500).with_jobs(1))
        .expect("compiles")
        .run();
    for jobs in [2, 3, 5, 8] {
        let report = Campaign::new(&model, CampaignConfig::estimate(7, 500).with_jobs(jobs))
            .expect("compiles")
            .run();
        assert_eq!(report, reference, "jobs={jobs} changed the report");
    }
    // A different seed *does* change it (the equality above is not vacuous).
    let other = Campaign::new(&model, CampaignConfig::estimate(8, 500).with_jobs(1))
        .expect("compiles")
        .run();
    assert_ne!(other, reference);
}

#[test]
fn sprt_reports_are_identical_for_every_worker_count() {
    let model = PermutationModel::new(permutation_properties());
    let sprt = SprtConfig::new(0.9, 0.6).expect("valid");
    let reference = Campaign::new(&model, CampaignConfig::sprt(11, sprt).with_jobs(1))
        .expect("compiles")
        .run();
    for jobs in [2, 4, 7] {
        let report = Campaign::new(&model, CampaignConfig::sprt(11, sprt).with_jobs(jobs))
            .expect("compiles")
            .run();
        assert_eq!(report, reference, "jobs={jobs} changed the SPRT report");
    }
}

#[test]
fn sprt_decides_correctly_and_stops_early() {
    // Truths: 1/3 and 1/2 — both well below the indifference region
    // (0.6, 0.9), so both tests must accept H1 far before the cap.
    let model = PermutationModel::new(permutation_properties());
    let sprt = SprtConfig::new(0.9, 0.6).expect("valid");
    let mut config = CampaignConfig::sprt(3, sprt);
    if let CampaignMode::Sprt { max_episodes, .. } = &mut config.mode {
        *max_episodes = 10_000;
    }
    let report = Campaign::new(&model, config).expect("compiles").run();
    assert!(report.all_decided());
    assert!(report.any_rejected());
    for estimate in &report.properties {
        let sprt = estimate.sprt.as_ref().expect("SPRT campaign");
        assert_eq!(sprt.decision, Some(SprtDecision::AcceptH1));
    }
    assert!(
        report.episodes < 1_000,
        "early stopping consumed {} episodes",
        report.episodes
    );
}

#[test]
fn sprt_accepts_h0_on_an_always_satisfied_property() {
    // `x << y once` over names the episodes never emit: the monitor ends
    // PresumablySatisfied every episode → p = 1.
    let mut properties = permutation_properties();
    properties.push("x << y once".to_owned());
    let mut model = PermutationModel::new(properties);
    model.voc.input("x");
    model.voc.input("y");
    let sprt = SprtConfig::new(0.9, 0.6).expect("valid");
    let report = Campaign::new(&model, CampaignConfig::sprt(5, sprt))
        .expect("compiles")
        .run();
    let last = report.properties.last().unwrap();
    assert_eq!(
        last.sprt.as_ref().unwrap().decision,
        Some(SprtDecision::AcceptH0)
    );
    assert_eq!(last.mean, 1.0);
}

#[test]
fn scenario_campaigns_are_deterministic_across_jobs() {
    // The real workload: full platform simulations with randomized fault
    // injection, monitored through per-worker sessions.
    let model = ScenarioModel::new(ScenarioConfig::nominal(1)).with_fault_probability(0.4);
    let reference = Campaign::new(&model, CampaignConfig::estimate(21, 24).with_jobs(1))
        .expect("compiles")
        .run();
    for jobs in [2, 4] {
        let report = Campaign::new(&model, CampaignConfig::estimate(21, 24).with_jobs(jobs))
            .expect("compiles")
            .run();
        assert_eq!(report, reference, "jobs={jobs} changed the scenario report");
    }
    // Faults were actually drawn: some episode violated something.
    assert!(
        reference.properties.iter().any(|p| p.mean < 1.0),
        "fault injection never produced a violation: {reference:?}"
    );
    // And nominal episodes exist too.
    assert!(reference.properties.iter().all(|p| p.mean > 0.0));
}

#[test]
fn fault_free_scenarios_estimate_probability_one() {
    let model = ScenarioModel::new(ScenarioConfig::nominal(2));
    let report = Campaign::new(&model, CampaignConfig::estimate(9, 8))
        .expect("compiles")
        .run();
    for estimate in &report.properties {
        assert_eq!(estimate.mean, 1.0, "{}", estimate.property);
        assert_eq!(estimate.successes, 8);
    }
    assert!(report.events > 0);
    assert!(report.monitor_steps > 0);
}

#[test]
fn gen_model_campaigns_run_and_are_deterministic() {
    let model = GenModel::new(vec!["all{a, b, c} << go repeated".to_owned()])
        .expect("anchor parses")
        .with_mutation_probability(0.7);
    let a = Campaign::new(&model, CampaignConfig::estimate(13, 400).with_jobs(3))
        .expect("compiles")
        .run();
    let b = Campaign::new(&model, CampaignConfig::estimate(13, 400).with_jobs(1))
        .expect("compiles")
        .run();
    assert_eq!(a, b);
    let p = &a.properties[0];
    // Un-mutated episodes always satisfy; mutated ones usually violate —
    // the estimate must land strictly inside (0, 1).
    assert!(p.mean > 0.0 && p.mean < 1.0, "mean {}", p.mean);
}

#[test]
fn telemetry_and_observer_do_not_perturb_reports() {
    let model = ScenarioModel::new(ScenarioConfig::nominal(1)).with_fault_probability(0.4);
    let plain = Campaign::new(&model, CampaignConfig::estimate(33, 64).with_jobs(2))
        .expect("compiles")
        .run();

    let registry = lomon_obs::Registry::new();
    let mut observed =
        Campaign::new(&model, CampaignConfig::estimate(33, 64).with_jobs(2)).expect("compiles");
    let metrics = lomon_smc::CampaignMetrics::register(&registry, observed.engine().len());
    observed.attach_metrics(std::sync::Arc::clone(&metrics));
    let mut snapshots: Vec<(u64, u64)> = Vec::new();
    let report = observed.run_observed(&mut |p| {
        snapshots.push((p.episodes, p.successes.iter().sum()));
    });

    // The registry and observer are pure observation: bit-identical report.
    assert_eq!(report, plain);
    // Counters agree with the aggregate report.
    assert_eq!(metrics.episodes.get(), report.episodes);
    assert_eq!(metrics.session.events.get(), report.events);
    assert_eq!(metrics.session.monitor_steps.get(), report.monitor_steps);
    assert_eq!(metrics.session.streams.get(), report.episodes);
    assert_eq!(metrics.episode_duration_ns.count(), report.episodes);
    // The live estimate gauges ended on the report's numbers.
    for (id, estimate) in report.properties.iter().enumerate() {
        assert!((metrics.means[id].get() - estimate.mean).abs() < 1e-12);
        assert!((metrics.half_widths[id].get() - estimate.half_width).abs() < 1e-12);
    }
    // The snapshot sequence itself is jobs-independent.
    let mut snapshots_other: Vec<(u64, u64)> = Vec::new();
    Campaign::new(&model, CampaignConfig::estimate(33, 64).with_jobs(1))
        .expect("compiles")
        .run_observed(&mut |p| {
            snapshots_other.push((p.episodes, p.successes.iter().sum()));
        });
    assert_eq!(snapshots, snapshots_other);
    assert_eq!(
        snapshots.last(),
        Some(&(64, report.properties.iter().map(|p| p.successes).sum()))
    );
}

#[test]
fn report_stats_carry_the_canonical_schema() {
    let model = ScenarioModel::new(ScenarioConfig::nominal(1));
    let report = Campaign::new(&model, CampaignConfig::estimate(5, 8))
        .expect("compiles")
        .run();
    assert_eq!(report.backend, "fused");
    assert_eq!(report.stats.events, report.events);
    assert_eq!(report.stats.monitor_steps, report.monitor_steps);
    assert!(report.stats.total_cells >= report.stats.unique_cells);
    let json = report.render_json();
    assert!(
        json.contains("\"stats\": {\"backend\": \"fused\""),
        "{json}"
    );
    assert!(json.contains("\"violations\": "), "{json}");
    // The pre-schema top-level aliases survive.
    assert!(json.contains("\"events\": "), "{json}");
    assert!(json.contains("\"monitor_steps\": "), "{json}");
}
