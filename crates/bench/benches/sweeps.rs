//! Criterion sweeps S1/S2: per-event latency vs range width (Drct flat,
//! ViaPSL quadratic) and vs fragment size (both linear-ish).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use lomon_core::monitor::build_monitor;
use lomon_core::verdict::Monitor;
use lomon_gen::{generate, GeneratorConfig};
use lomon_psl::monitor::PslMonitor;
use lomon_psl::translate::TranslateOptions;
use lomon_trace::{Trace, Vocabulary};

fn run_monitor<M: Monitor>(mut monitor: M, workload: &Trace) -> M {
    for &event in workload.iter() {
        monitor.observe(event);
    }
    monitor
}

fn bench_range_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_width");
    group.sample_size(15);
    for width in [1u32, 4, 16, 64, 128] {
        let mut voc = Vocabulary::new();
        let property = lomon_bench::range_sweep_property(width, &mut voc);
        let workload = generate(
            &property,
            &GeneratorConfig {
                episodes: 2,
                ..GeneratorConfig::new(3)
            },
        )
        .trace;
        group.throughput(criterion::Throughput::Elements(workload.len() as u64));

        group.bench_with_input(BenchmarkId::new("drct", width), &width, |b, _| {
            b.iter_batched(
                || {
                    build_monitor(property.clone(), &voc)
                        .expect("well-formed")
                        .without_diagnostics()
                },
                |m| run_monitor(m, &workload).verdict(),
                BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("viapsl", width), &width, |b, _| {
            b.iter_batched(
                || {
                    PslMonitor::build_with(
                        &property,
                        TranslateOptions {
                            conjunct_limit: 100_000,
                        },
                    )
                    .expect("materializable at these widths")
                },
                |m| run_monitor(m, &workload).verdict(),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_fragment_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("fragment_size");
    group.sample_size(15);
    for k in [2usize, 4, 8, 16] {
        let mut voc = Vocabulary::new();
        let property = lomon_bench::names_sweep_property(k, &mut voc);
        let workload = generate(&property, &GeneratorConfig::new(5)).trace;
        group.throughput(criterion::Throughput::Elements(workload.len() as u64));

        group.bench_with_input(BenchmarkId::new("drct", k), &k, |b, _| {
            b.iter_batched(
                || {
                    build_monitor(property.clone(), &voc)
                        .expect("well-formed")
                        .without_diagnostics()
                },
                |m| run_monitor(m, &workload).verdict(),
                BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("viapsl", k), &k, |b, _| {
            b.iter_batched(
                || PslMonitor::build(&property).expect("small"),
                |m| run_monitor(m, &workload).verdict(),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_range_width, bench_fragment_size);
criterion_main!(benches);
