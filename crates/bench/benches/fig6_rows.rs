//! Criterion wall-clock companion to the Fig. 6 table: per-event monitor
//! latency for both strategies on each configuration (ViaPSL only where the
//! translation is materializable — rows 2 and 6 exceed 3×10⁹ conjuncts and
//! are covered by the closed-form model in the `fig6` binary instead).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use lomon_bench::{evaluate_row, fig6_rows};
use lomon_core::monitor::build_monitor;
use lomon_core::verdict::Monitor;
use lomon_psl::monitor::PslMonitor;
use lomon_psl::translate::TranslateOptions;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(20);
    for row in fig6_rows() {
        let result = evaluate_row(&row, 42);
        let events = result.workload.len().max(1) as u64;
        group.throughput(criterion::Throughput::Elements(events));

        let property = result.property.clone();
        let vocabulary = result.vocabulary.clone();
        let workload = result.workload.clone();
        group.bench_function(format!("row{}/drct", row.id), |b| {
            b.iter_batched(
                || {
                    build_monitor(property.clone(), &vocabulary)
                        .expect("well-formed")
                        .without_diagnostics()
                },
                |mut monitor| {
                    for &event in workload.iter() {
                        monitor.observe(event);
                    }
                    monitor.verdict()
                },
                BatchSize::SmallInput,
            );
        });

        if PslMonitor::build_with(
            &result.property,
            TranslateOptions {
                conjunct_limit: 100_000,
            },
        )
        .is_ok()
        {
            let property = result.property.clone();
            let workload = result.workload.clone();
            group.bench_function(format!("row{}/viapsl", row.id), |b| {
                b.iter_batched(
                    || {
                        PslMonitor::build_with(
                            &property,
                            TranslateOptions {
                                conjunct_limit: 100_000,
                            },
                        )
                        .expect("materializable")
                    },
                    |mut monitor| {
                        for &event in workload.iter() {
                            monitor.observe(event);
                        }
                        monitor.verdict()
                    },
                    BatchSize::SmallInput,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
