//! Episode models: what one randomized run of the system under
//! verification looks like.
//!
//! A campaign is generic over an [`EpisodeModel`]: anything that can name
//! the monitored properties, provide the vocabulary they are written
//! against, and — given a derived per-episode seed — produce one episode's
//! event stream. Two models ship with the crate:
//!
//! * [`ScenarioModel`] — drives the `lomon-tlm` face-recognition platform
//!   (stimuli, firmware, fault switches) and streams the recorded
//!   interface trace; faults are drawn per episode with a configurable
//!   probability, which is what makes the satisfaction probabilities
//!   non-trivial;
//! * [`GenModel`] — language-based stimuli from `lomon-gen`: each episode
//!   is a generated member of a property's language (or a fixed base
//!   trace), optionally passed through a single-edit mutation, so the
//!   model doubles as a self-test of the monitors on labelled near-misses.

use rand::rngs::StdRng;
use rand::{Rng, RngCore as _, SeedableRng};

use lomon_core::ast::Property;
use lomon_core::parse::parse_property;
use lomon_gen::{generate, mutate, GeneratorConfig};
use lomon_tlm::scenario::{case_study_properties, run_scenario, ScenarioConfig};
use lomon_tlm::{EventNames, FaultPlan};
use lomon_trace::{SimTime, TimedEvent, Trace, Vocabulary};

/// A source of randomized episodes for a campaign.
///
/// Implementations must be [`Sync`]: one model instance is shared by every
/// worker thread. All episode randomness must come from the `seed`
/// argument (derived by the campaign as `master.fork(episode_index)`), so
/// an episode's stream is a pure function of `(campaign seed, index)` —
/// the invariant behind jobs-independent results.
pub trait EpisodeModel: Sync {
    /// The property texts the campaign compiles into its shared engine.
    fn properties(&self) -> Vec<String>;

    /// The vocabulary the properties and episode streams are written
    /// against (platform names pre-interned; compilation may intern more).
    fn vocabulary(&self) -> Vocabulary;

    /// Produce episode `seed`'s event stream into `out` (cleared by the
    /// caller) and return the end-of-observation time.
    fn episode(&self, seed: u64, out: &mut Vec<TimedEvent>) -> SimTime;
}

/// Campaigns over the `lomon-tlm` virtual platform: each episode is one
/// full simulation with seed-randomized loose timing, loose configuration
/// ordering, and (with probability [`ScenarioModel::with_fault_probability`])
/// one uniformly drawn fault-injection switch.
#[derive(Debug, Clone)]
pub struct ScenarioModel {
    base: ScenarioConfig,
    fault_probability: f64,
    /// Monitored property texts; `None` means the case-study rulebook.
    properties: Option<Vec<String>>,
}

impl ScenarioModel {
    /// A fault-free model over the given base scenario (its `seed`,
    /// `fault` and `monitors` fields are overridden per episode).
    pub fn new(base: ScenarioConfig) -> Self {
        ScenarioModel {
            base,
            fault_probability: 0.0,
            properties: None,
        }
    }

    /// Monitor a custom rulebook over the platform's interface names
    /// instead of the two case-study properties.
    pub fn with_properties(mut self, texts: Vec<String>) -> Self {
        self.properties = Some(texts);
        self
    }

    /// Inject a uniformly drawn platform fault with probability `p` per
    /// episode.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn with_fault_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "fault probability {p} out of [0,1]"
        );
        self.fault_probability = p;
        self
    }

    /// The seven fault switches of the platform, drawn uniformly.
    fn draw_fault(rng: &mut StdRng) -> FaultPlan {
        let mut fault = FaultPlan::default();
        match rng.gen_range(0u32..7) {
            0 => fault.skip_register = Some(rng.gen_range(0usize..3)),
            1 => fault.early_start = true,
            2 => fault.drop_irq = true,
            3 => fault.early_irq = true,
            4 => fault.extra_reads = rng.gen_range(1u32..=3),
            5 => fault.slowdown = 50,
            _ => fault.double_start = true,
        }
        fault
    }
}

impl EpisodeModel for ScenarioModel {
    fn properties(&self) -> Vec<String> {
        match &self.properties {
            Some(texts) => texts.clone(),
            None => case_study_properties(&self.base)
                .into_iter()
                .map(|(_, text)| text)
                .collect(),
        }
    }

    fn vocabulary(&self) -> Vocabulary {
        // The platform interns its interface names first; episode traces
        // (which do the same internally) then agree name-for-name.
        let mut voc = Vocabulary::new();
        let _ = EventNames::intern(&mut voc);
        voc
    }

    fn episode(&self, seed: u64, out: &mut Vec<TimedEvent>) -> SimTime {
        let mut rng = StdRng::seed_from_u64(seed);
        let fault = if self.fault_probability > 0.0 && rng.gen_bool(self.fault_probability) {
            Self::draw_fault(&mut rng)
        } else {
            FaultPlan::default()
        };
        let config = ScenarioConfig {
            seed: rng.next_u64(),
            fault,
            // The campaign's engine does the monitoring; attaching the
            // scenario's own monitors would double the work.
            monitors: false,
            ..self.base
        };
        let report = run_scenario(&config);
        out.extend_from_slice(report.trace.events());
        report.trace.end_time()
    }
}

/// Campaigns over `lomon-gen` stimuli: each episode is a satisfying member
/// of the anchor property's language (freshly generated, or a fixed base
/// trace), passed through one random near-miss mutation with probability
/// [`GenModel::with_mutation_probability`].
#[derive(Debug, Clone)]
pub struct GenModel {
    /// The anchor property: mutation alphabet and episode language.
    anchor: Property,
    /// All monitored property texts (the anchor first).
    texts: Vec<String>,
    voc: Vocabulary,
    /// `Some` — mutate this fixed trace; `None` — generate per episode.
    base: Option<Trace>,
    generator: GeneratorConfig,
    mutation_probability: f64,
}

impl GenModel {
    /// A model monitoring `texts` (the first is the *anchor* whose language
    /// and alphabet drive generation and mutation), generating a fresh
    /// satisfying trace per episode.
    ///
    /// # Errors
    ///
    /// Returns the parse error rendered against the offending source if the
    /// anchor does not parse. (Later properties are validated by the
    /// campaign's engine compilation.)
    pub fn new(texts: Vec<String>) -> Result<Self, String> {
        Self::build(texts, Vocabulary::new(), None)
    }

    /// A model mutating a fixed base trace instead of generating one per
    /// episode. `voc` must be the vocabulary the trace was loaded against
    /// (the anchor is parsed against it, so trace and property names
    /// agree) — this is `lomon smc --trace`.
    ///
    /// # Errors
    ///
    /// Returns the rendered parse error if the anchor does not parse.
    pub fn from_trace(texts: Vec<String>, base: Trace, voc: Vocabulary) -> Result<Self, String> {
        Self::build(texts, voc, Some(base))
    }

    fn build(texts: Vec<String>, mut voc: Vocabulary, base: Option<Trace>) -> Result<Self, String> {
        let first = texts
            .first()
            .ok_or("a GenModel needs at least one property")?;
        let anchor = parse_property(first, &mut voc).map_err(|e| e.display_with_source(first))?;
        Ok(GenModel {
            anchor,
            texts,
            voc,
            base,
            generator: GeneratorConfig::new(0),
            mutation_probability: 0.5,
        })
    }

    /// Per-episode probability of applying one single-edit mutation
    /// (default `0.5`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn with_mutation_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "mutation probability {p} out of [0,1]"
        );
        self.mutation_probability = p;
        self
    }

    /// Episode-count/gap parameters of the per-episode generator.
    pub fn with_generator(mut self, generator: GeneratorConfig) -> Self {
        self.generator = generator;
        self
    }
}

impl EpisodeModel for GenModel {
    fn properties(&self) -> Vec<String> {
        self.texts.clone()
    }

    fn vocabulary(&self) -> Vocabulary {
        self.voc.clone()
    }

    fn episode(&self, seed: u64, out: &mut Vec<TimedEvent>) -> SimTime {
        let mut rng = StdRng::seed_from_u64(seed);
        let generated;
        let base = match &self.base {
            Some(base) => base,
            None => {
                let config = GeneratorConfig {
                    seed: rng.next_u64(),
                    ..self.generator
                };
                generated = generate(&self.anchor, &config).trace;
                &generated
            }
        };
        let mutated;
        let trace = if rng.gen_bool(self.mutation_probability) {
            match mutate(&self.anchor, base, 1, rng.next_u64()).pop() {
                Some(mutant) => {
                    mutated = mutant.trace;
                    &mutated
                }
                None => base, // empty base: nothing to edit
            }
        } else {
            base
        };
        out.extend_from_slice(trace.events());
        trace.end_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_model_exposes_the_case_study() {
        let model = ScenarioModel::new(ScenarioConfig::nominal(1));
        let texts = model.properties();
        assert_eq!(texts.len(), 2);
        assert!(texts[0].contains("set_imgAddr"));
        let mut voc = model.vocabulary();
        // Every property name is pre-interned by the platform vocabulary.
        for text in &texts {
            parse_property(text, &mut voc).expect("case-study property parses");
        }
    }

    #[test]
    fn scenario_episodes_are_seed_deterministic() {
        let model = ScenarioModel::new(ScenarioConfig::nominal(1)).with_fault_probability(0.5);
        let (mut a, mut b, mut c) = (Vec::new(), Vec::new(), Vec::new());
        let end_a = model.episode(99, &mut a);
        let end_b = model.episode(99, &mut b);
        let _ = model.episode(100, &mut c);
        assert_eq!(a, b);
        assert_eq!(end_a, end_b);
        assert_ne!(a, c);
    }

    #[test]
    fn scenario_trace_names_resolve_in_the_model_vocabulary() {
        let model = ScenarioModel::new(ScenarioConfig::nominal(3));
        let voc = model.vocabulary();
        let mut events = Vec::new();
        model.episode(7, &mut events);
        assert!(!events.is_empty());
        for event in &events {
            // Resolving panics on an out-of-vocabulary name.
            let _ = voc.resolve(event.name);
        }
    }

    #[test]
    fn gen_model_generates_and_mutates() {
        let model = GenModel::new(vec!["all{a, b} << go repeated".into()])
            .expect("anchor parses")
            .with_mutation_probability(1.0);
        let mut out = Vec::new();
        let end = model.episode(5, &mut out);
        assert!(!out.is_empty());
        assert!(end >= out.last().unwrap().time);
        // Determinism per seed.
        let mut again = Vec::new();
        model.episode(5, &mut again);
        assert_eq!(out, again);
    }

    #[test]
    fn gen_model_rejects_garbage_anchors() {
        assert!(GenModel::new(vec!["all{unclosed << go".into()]).is_err());
        assert!(GenModel::new(Vec::new()).is_err());
    }
}
