//! Parallel simulation campaigns: shard episodes across workers, monitor
//! every episode stream through a per-worker engine [`Session`], and
//! aggregate the Bernoulli verdicts into statistical ones.
//!
//! ## Determinism
//!
//! A campaign's report is a pure function of `(model, seed, mode)` —
//! **never** of `jobs`, the batch size, or thread scheduling:
//!
//! * episode `k`'s randomness is the forked stream `master.fork(k)`, so an
//!   episode computes the same stream no matter which worker runs it;
//! * estimation aggregates integer success counts, which are
//!   partition-invariant sums;
//! * SPRT tests consume episode verdicts in episode-index order, with a
//!   fixed scheduling quantum (`SPRT_BATCH`), so the early-stopping point
//!   is the same for every worker count.
//!
//! ## Parallelism
//!
//! Workers are scoped `std::thread`s, re-joined at each scheduling-batch
//! boundary (the aggregation point). Each worker owns one [`Session`]
//! cloned from the shared compiled engine and one event buffer for the
//! *whole campaign*, rewound between episodes via [`Session::reset`] — the
//! per-episode cost is the simulation plus monitoring, with no per-episode
//! compilation or allocation churn. `crates/bench/src/bin/smc_scaling.rs`
//! measures the resulting speedup and gates it in CI.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngCore as _, SeedableRng};

use lomon_engine::{Backend, CompileError, DispatchMode, DispatchStats, Engine, Session};
use lomon_trace::{json_escape, TimedEvent, Vocabulary};

use crate::estimate::{half_width, required_episodes};
use crate::metrics::CampaignMetrics;
use crate::model::EpisodeModel;
use crate::sprt::{Sprt, SprtConfig, SprtDecision};

/// What question the campaign answers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CampaignMode {
    /// Quantitative: run a fixed number of episodes and report each
    /// property's estimated satisfaction probability with its
    /// Chernoff–Hoeffding interval.
    Estimate {
        /// Episodes to run (e.g. from
        /// [`required_episodes`](crate::estimate::required_episodes)).
        episodes: u64,
    },
    /// Qualitative: run Wald's SPRT per property, stopping as soon as
    /// every test has decided (or `max_episodes` is exhausted).
    Sprt {
        /// The shared test parameters.
        config: SprtConfig,
        /// Hard cap on episodes (undecided tests report `None`).
        max_episodes: u64,
    },
}

/// Campaign parameters. See [`Campaign`] for the run entry point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Master seed; episode `k` uses the forked stream `seed → fork(k)`.
    pub seed: u64,
    /// Worker threads; `0` means all available cores.
    pub jobs: usize,
    /// Confidence level `1 − δ` of the reported intervals.
    pub confidence: f64,
    /// The question mode.
    pub mode: CampaignMode,
    /// Monitor execution backend. The fused rulebook backend (the
    /// default) shares one cell arena across structurally identical
    /// properties and re-pays nothing per episode; `Compiled` and
    /// `Interp` are the verdict-identical differential oracles. Switching
    /// backends never changes the statistical content of a report
    /// (verdicts, estimates, SPRT decisions, `events`); only
    /// [`CampaignReport::monitor_steps`] differs, because the fused
    /// backend steps each shared group once for all its members.
    pub backend: Backend,
}

impl CampaignConfig {
    /// An estimation campaign with an explicit episode budget.
    pub fn estimate(seed: u64, episodes: u64) -> Self {
        CampaignConfig {
            seed,
            jobs: 0,
            confidence: 0.95,
            mode: CampaignMode::Estimate { episodes },
            backend: Backend::Fused,
        }
    }

    /// An estimation campaign sized by the Okamoto bound: enough episodes
    /// for a `±epsilon` interval at the default 95% confidence.
    pub fn estimate_with_precision(seed: u64, epsilon: f64) -> Self {
        let confidence = 0.95;
        CampaignConfig {
            seed,
            jobs: 0,
            confidence,
            mode: CampaignMode::Estimate {
                episodes: required_episodes(epsilon, 1.0 - confidence),
            },
            backend: Backend::Fused,
        }
    }

    /// An SPRT campaign (capped at 100 000 episodes by default).
    pub fn sprt(seed: u64, config: SprtConfig) -> Self {
        CampaignConfig {
            seed,
            jobs: 0,
            confidence: 0.95,
            mode: CampaignMode::Sprt {
                config,
                max_episodes: 100_000,
            },
            backend: Backend::Fused,
        }
    }

    /// Override the worker count (`0` = all cores).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Override the monitor execution backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }
}

/// Why a campaign could not run.
#[derive(Debug, Clone)]
pub enum CampaignError {
    /// The model's property set failed to compile (every failure listed).
    Compile(Vec<CompileError>),
    /// A configuration value is unusable.
    InvalidConfig(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Compile(errors) => {
                write!(f, "{} property(ies) failed to compile", errors.len())
            }
            CampaignError::InvalidConfig(message) => f.write_str(message),
        }
    }
}

impl std::error::Error for CampaignError {}

/// The SPRT outcome for one property.
#[derive(Debug, Clone, PartialEq)]
pub struct SprtReport {
    /// The decision, or `None` if the episode cap ran out first.
    pub decision: Option<SprtDecision>,
    /// Episodes the test consumed before stopping.
    pub episodes_used: u64,
    /// The final log-likelihood ratio.
    pub llr: f64,
    /// The test parameters, echoed for the report.
    pub config: SprtConfig,
}

/// One property's statistical verdict.
///
/// The quantitative guarantee is the Chernoff–Hoeffding bound: with
/// probability at least [`PropertyEstimate::confidence`] (over the
/// campaign's sampling), the true satisfaction probability lies within
/// [`PropertyEstimate::half_width`] of [`PropertyEstimate::mean`] — see
/// [`PropertyEstimate::interval`]. The qualitative guarantee, when
/// [`PropertyEstimate::sprt`] is present, is Wald's: the decision is wrong
/// with probability at most `alpha` (a spurious `AcceptH1`) or `beta` (a
/// spurious `AcceptH0`) when the true probability lies outside the
/// indifference region `(p1, p0)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyEstimate {
    /// The property's source text.
    pub property: String,
    /// Episodes whose stream satisfied the property (verdict not
    /// `Violated` at end of episode).
    pub successes: u64,
    /// Episodes observed (= the campaign's consumed episodes).
    pub episodes: u64,
    /// The point estimate `successes / episodes`.
    pub mean: f64,
    /// Chernoff–Hoeffding half-width `ε = √(ln(2/δ)/2n)` at this sample
    /// size; `δ = 1 − confidence`.
    pub half_width: f64,
    /// The confidence level `1 − δ` the interval carries.
    pub confidence: f64,
    /// The SPRT outcome, in [`CampaignMode::Sprt`] campaigns.
    pub sprt: Option<SprtReport>,
}

impl PropertyEstimate {
    /// The confidence interval `[mean − ε, mean + ε]` clamped to `[0, 1]`.
    pub fn interval(&self) -> (f64, f64) {
        (
            (self.mean - self.half_width).max(0.0),
            (self.mean + self.half_width).min(1.0),
        )
    }

    /// Whether `p` lies inside [`PropertyEstimate::interval`].
    pub fn contains(&self, p: f64) -> bool {
        let (lo, hi) = self.interval();
        (lo..=hi).contains(&p)
    }
}

/// Aggregate outcome of a campaign.
///
/// Reports compare equal ([`PartialEq`]) exactly when the statistical
/// content is identical; worker count and wall-clock are deliberately not
/// recorded here, so determinism across `--jobs` is `assert_eq!`-able.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The master seed the campaign ran with.
    pub seed: u64,
    /// Episodes actually consumed (early-stopped SPRT campaigns consume
    /// fewer than the cap).
    pub episodes: u64,
    /// Per-property statistical verdicts, in compilation order.
    pub properties: Vec<PropertyEstimate>,
    /// Interface events monitored across all consumed episodes. Kept as a
    /// top-level alias of `stats.events`.
    pub events: u64,
    /// Monitor steps the engine sessions performed (after indexed-dispatch
    /// skipping). Kept as a top-level alias of `stats.monitor_steps`.
    pub monitor_steps: u64,
    /// Full dispatch accounting summed over every consumed episode — the
    /// same canonical schema `check` and `watch` report. Partition
    /// invariant, so still identical across `--jobs`.
    pub stats: DispatchStats,
    /// Stable label of the monitor backend the campaign ran on.
    pub backend: &'static str,
}

impl CampaignReport {
    /// Whether every property's SPRT reached a decision (vacuously true
    /// for estimation campaigns).
    pub fn all_decided(&self) -> bool {
        self.properties
            .iter()
            .all(|p| p.sprt.as_ref().is_none_or(|s| s.decision.is_some()))
    }

    /// Whether any property's SPRT accepted `H1` (probability too low).
    pub fn any_rejected(&self) -> bool {
        self.properties.iter().any(|p| {
            p.sprt
                .as_ref()
                .is_some_and(|s| s.decision == Some(SprtDecision::AcceptH1))
        })
    }

    /// Multi-line human rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for p in &self.properties {
            let (lo, hi) = p.interval();
            let _ = writeln!(
                out,
                "  P[{}] = {:.4}  in [{:.4}, {:.4}] at {:.0}% confidence  ({}/{} episodes)",
                p.property,
                p.mean,
                lo,
                hi,
                p.confidence * 100.0,
                p.successes,
                p.episodes,
            );
            if let Some(sprt) = &p.sprt {
                let decision = match sprt.decision {
                    Some(d) => d.to_string(),
                    None => "undecided (episode cap reached)".to_owned(),
                };
                let _ = writeln!(
                    out,
                    "      SPRT p0={} p1={}: {decision} after {} episodes (llr {:.3})",
                    sprt.config.p0, sprt.config.p1, sprt.episodes_used, sprt.llr,
                );
            }
        }
        let _ = writeln!(
            out,
            "  campaign: {} episodes, {} events, {} monitor steps, seed {}",
            self.episodes, self.events, self.monitor_steps, self.seed,
        );
        out
    }

    /// One-line JSON rendering for machine consumers (`lomon smc --format
    /// json`): the per-property estimates (with their SPRT outcomes, when
    /// present) and the campaign totals. Deterministic for a given report,
    /// so piping it through `diff` across `--jobs` values is a valid
    /// determinism check.
    pub fn render_json(&self) -> String {
        // Shortest-roundtrip float rendering; a non-finite value (only
        // possible in a degenerate zero-episode campaign) becomes `null`.
        fn num(x: f64) -> String {
            if x.is_finite() {
                format!("{x}")
            } else {
                "null".to_owned()
            }
        }
        let mut out = String::from("{\"properties\": [");
        for (k, p) in self.properties.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            let (lo, hi) = p.interval();
            let _ = write!(
                out,
                "{{\"property\": \"{}\", \"successes\": {}, \"episodes\": {}, \
                 \"mean\": {}, \"half_width\": {}, \"interval\": [{}, {}], \
                 \"confidence\": {}",
                json_escape(&p.property),
                p.successes,
                p.episodes,
                num(p.mean),
                num(p.half_width),
                num(lo),
                num(hi),
                num(p.confidence),
            );
            if let Some(sprt) = &p.sprt {
                let decision = match sprt.decision {
                    Some(d) => format!("\"{d}\""),
                    None => "null".to_owned(),
                };
                let _ = write!(
                    out,
                    ", \"sprt\": {{\"p0\": {}, \"p1\": {}, \"decision\": {decision}, \
                     \"episodes_used\": {}, \"llr\": {}}}",
                    num(sprt.config.p0),
                    num(sprt.config.p1),
                    sprt.episodes_used,
                    num(sprt.llr),
                );
            }
            out.push('}');
        }
        // Property-episodes that ended violated — the `violations` slot of
        // the canonical stats object.
        let violations: u64 = self
            .properties
            .iter()
            .map(|p| p.episodes - p.successes)
            .sum();
        let _ = write!(
            out,
            "], \"seed\": {}, \"episodes\": {}, \"events\": {}, \
             \"monitor_steps\": {}, \"all_decided\": {}, \"any_rejected\": {}, \
             \"stats\": {}}}",
            self.seed,
            self.episodes,
            self.events,
            self.monitor_steps,
            self.all_decided(),
            self.any_rejected(),
            self.stats.render_json_object(self.backend, violations),
        );
        out
    }
}

/// A progress snapshot handed to the [`Campaign::run_observed`] observer
/// after each scheduling batch is aggregated. Batch boundaries are
/// jobs-independent, so for a fixed seed the observer sees the same
/// sequence of snapshots no matter the worker count.
#[derive(Debug, Clone, Copy)]
pub struct CampaignProgress<'a> {
    /// Episodes consumed so far.
    pub episodes: u64,
    /// The campaign's episode budget (the cap, for SPRT campaigns).
    pub planned: u64,
    /// Per-property success counts so far, in compilation order.
    pub successes: &'a [u64],
    /// The Chernoff–Hoeffding half-width at the current sample size.
    pub half_width: f64,
    /// SPRT tests still undecided; `None` for estimation campaigns.
    pub sprt_undecided: Option<usize>,
}

/// One worker's campaign-lifetime state: an engine session and a stream
/// buffer, both rewound (not reallocated) between episodes.
#[derive(Debug)]
struct Worker<'e> {
    session: Session<'e>,
    buffer: Vec<TimedEvent>,
}

/// One episode's digest, produced by a worker and consumed by the
/// (sequential, index-ordered) aggregator.
#[derive(Debug, Clone)]
struct EpisodeResult {
    /// Per-property satisfaction (`verdict.is_ok()` at end of episode).
    satisfied: Vec<bool>,
    events: u64,
    monitor_steps: u64,
    steps_skipped: u64,
    shared_hits: u64,
    retired: u64,
}

/// A compiled campaign: the model, the shared engine, and the config.
///
/// ```
/// use lomon_smc::{Campaign, CampaignConfig, ScenarioModel};
/// use lomon_tlm::scenario::ScenarioConfig;
///
/// let model = ScenarioModel::new(ScenarioConfig::nominal(1));
/// let report = Campaign::new(&model, CampaignConfig::estimate(7, 4).with_jobs(2))
///     .expect("case-study properties compile")
///     .run();
/// assert_eq!(report.episodes, 4);
/// // Fault-free scenarios satisfy both case-study properties.
/// assert!(report.properties.iter().all(|p| p.mean == 1.0));
/// ```
#[derive(Debug)]
pub struct Campaign<'m, M: EpisodeModel + ?Sized> {
    model: &'m M,
    engine: Engine,
    #[allow(dead_code)] // resolved names are useful to callers via `vocabulary()`
    vocabulary: Vocabulary,
    config: CampaignConfig,
    /// Live telemetry, if attached. Workers flush their sessions' dispatch
    /// deltas into it; the aggregator updates the campaign gauges at batch
    /// boundaries. Never consulted by the statistics themselves.
    metrics: Option<Arc<CampaignMetrics>>,
}

/// The fixed scheduling quantum of SPRT campaigns: episodes are dispatched
/// to workers in batches of this many, and the early-stopping point is
/// evaluated at episode granularity *within* a batch. The size is a
/// constant — never derived from the worker count — which keeps the
/// stopping point (and so the whole report) identical across `--jobs`.
const SPRT_BATCH: u64 = 64;

/// The scheduling quantum of estimation campaigns. Estimation never stops
/// early and aggregates partition-invariant sums, so the quantum only
/// bounds the in-flight result memory; a large one amortizes the
/// per-batch thread spawns over more episodes.
const ESTIMATE_BATCH: u64 = 4096;

impl<'m, M: EpisodeModel + ?Sized> Campaign<'m, M> {
    /// Compile the model's property set and validate the configuration.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Compile`] lists *every* failing property;
    /// [`CampaignError::InvalidConfig`] reports an unusable parameter.
    pub fn new(model: &'m M, config: CampaignConfig) -> Result<Self, CampaignError> {
        if !(config.confidence > 0.0 && config.confidence < 1.0) {
            return Err(CampaignError::InvalidConfig(format!(
                "confidence {} out of (0,1)",
                config.confidence
            )));
        }
        let texts = model.properties();
        if texts.is_empty() {
            return Err(CampaignError::InvalidConfig(
                "the model monitors no properties".into(),
            ));
        }
        let mut vocabulary = model.vocabulary();
        let engine = Engine::compile(&texts, &mut vocabulary).map_err(CampaignError::Compile)?;
        Ok(Campaign {
            model,
            engine,
            vocabulary,
            config,
            metrics: None,
        })
    }

    /// Attach live telemetry (from [`CampaignMetrics::register`]): worker
    /// sessions flush dispatch deltas into the shared registry, episode
    /// durations land in the histogram, and the estimate gauges update at
    /// every batch boundary. Reports stay bit-identical with or without a
    /// registry attached.
    pub fn attach_metrics(&mut self, metrics: Arc<CampaignMetrics>) {
        self.metrics = Some(metrics);
    }

    /// The compiled engine (e.g. to inspect alphabets).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The vocabulary after compilation.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }

    /// Run the campaign to completion and report.
    pub fn run(&self) -> CampaignReport {
        self.run_observed(&mut |_| {})
    }

    /// [`Campaign::run`] with a progress observer: after each scheduling
    /// batch is aggregated the observer receives a [`CampaignProgress`]
    /// snapshot. Batches are the jobs-independent quanta ([`SPRT_BATCH`] /
    /// [`ESTIMATE_BATCH`]), so the snapshot sequence — like the report —
    /// is a pure function of `(model, seed, mode)`.
    pub fn run_observed(&self, observer: &mut dyn FnMut(CampaignProgress<'_>)) -> CampaignReport {
        let jobs = effective_jobs(self.config.jobs);
        let master = StdRng::seed_from_u64(self.config.seed);
        let n_props = self.engine.len();
        let delta = 1.0 - self.config.confidence;

        let (total, batch, mut sprts): (u64, u64, Option<Vec<Sprt>>) = match self.config.mode {
            CampaignMode::Estimate { episodes } => (episodes, ESTIMATE_BATCH, None),
            CampaignMode::Sprt {
                config,
                max_episodes,
            } => (
                max_episodes,
                SPRT_BATCH,
                Some((0..n_props).map(|_| Sprt::new(config)).collect()),
            ),
        };

        let mut successes = vec![0u64; n_props];
        let mut consumed = 0u64;
        let mut stats = DispatchStats {
            properties: n_props as u64,
            ..DispatchStats::default()
        };
        {
            let sharing = self.engine.sharing();
            stats.total_cells = sharing.total_cells;
            stats.unique_cells = sharing.unique_cells;
        }

        if let Some(m) = &self.metrics {
            #[allow(clippy::cast_precision_loss)]
            m.planned.set(total as f64);
            let undecided = if sprts.is_some() { n_props } else { 0 };
            #[allow(clippy::cast_precision_loss)]
            m.sprt_undecided.set(undecided as f64);
        }

        // One session + stream buffer per worker for the whole campaign:
        // `reset()` rewinds them between episodes, so the monitor clones
        // and event allocations happen `jobs` times, not per episode or
        // per batch.
        let mut workers: Vec<Worker<'_>> = (0..jobs)
            .map(|_| {
                let mut session = self
                    .engine
                    .session_with_backend(DispatchMode::Indexed, self.config.backend);
                if let Some(m) = &self.metrics {
                    session.attach_metrics(Arc::clone(&m.session));
                }
                Worker {
                    session,
                    buffer: Vec::new(),
                }
            })
            .collect();

        let mut next = 0u64;
        while next < total {
            let len = batch.min(total - next);
            let results = self.run_batch(&master, next, len, &mut workers);
            next += len;
            let batch_start = consumed;
            let mut decided_early = false;
            for result in &results {
                consumed += 1;
                stats.events += result.events;
                stats.monitor_steps += result.monitor_steps;
                stats.steps_skipped += result.steps_skipped;
                stats.shared_hits += result.shared_hits;
                stats.retired += result.retired;
                for (id, &ok) in result.satisfied.iter().enumerate() {
                    if ok {
                        successes[id] += 1;
                    }
                    if let Some(sprts) = &mut sprts {
                        sprts[id].observe(ok);
                    }
                }
                if let Some(sprts) = &sprts {
                    if sprts.iter().all(|s| s.decision().is_some()) {
                        decided_early = true;
                        break;
                    }
                }
            }
            let undecided = sprts
                .as_ref()
                .map(|sprts| sprts.iter().filter(|s| s.decision().is_none()).count());
            let current_half_width = half_width(consumed, delta);
            if let Some(m) = &self.metrics {
                m.episodes.add(consumed - batch_start);
                m.batches.inc();
                #[allow(clippy::cast_precision_loss)]
                m.sprt_undecided.set(undecided.unwrap_or(0) as f64);
                for (id, &succ) in successes.iter().enumerate() {
                    #[allow(clippy::cast_precision_loss)]
                    let mean = if consumed == 0 {
                        0.0
                    } else {
                        succ as f64 / consumed as f64
                    };
                    m.means[id].set(mean);
                    m.half_widths[id].set(current_half_width);
                }
            }
            observer(CampaignProgress {
                episodes: consumed,
                planned: total,
                successes: &successes,
                half_width: current_half_width,
                sprt_undecided: undecided,
            });
            if decided_early {
                break;
            }
        }

        let properties = (0..n_props)
            .map(|id| {
                let mean = if consumed == 0 {
                    0.0
                } else {
                    successes[id] as f64 / consumed as f64
                };
                PropertyEstimate {
                    property: self.engine.property_display(id).to_owned(),
                    successes: successes[id],
                    episodes: consumed,
                    mean,
                    half_width: half_width(consumed, delta),
                    confidence: self.config.confidence,
                    sprt: sprts.as_ref().map(|sprts| SprtReport {
                        decision: sprts[id].decision(),
                        episodes_used: sprts[id].trials(),
                        llr: sprts[id].llr(),
                        config: sprts[id].config(),
                    }),
                }
            })
            .collect();

        CampaignReport {
            seed: self.config.seed,
            episodes: consumed,
            properties,
            events: stats.events,
            monitor_steps: stats.monitor_steps,
            stats,
            backend: self.config.backend.label(),
        }
    }

    /// Run episodes `start .. start+len` across the workers and return
    /// their results in episode order.
    fn run_batch(
        &self,
        master: &StdRng,
        start: u64,
        len: u64,
        workers: &mut [Worker<'_>],
    ) -> Vec<EpisodeResult> {
        let len_usize = len as usize;
        let mut slots: Vec<Option<EpisodeResult>> = vec![None; len_usize];
        let chunk = len_usize.div_ceil(workers.len());
        std::thread::scope(|scope| {
            for ((w, slot_chunk), worker) in
                slots.chunks_mut(chunk).enumerate().zip(workers.iter_mut())
            {
                let first = start + (w * chunk) as u64;
                scope.spawn(move || {
                    for (offset, slot) in slot_chunk.iter_mut().enumerate() {
                        let k = first + offset as u64;
                        *slot = Some(self.run_episode(
                            master,
                            k,
                            &mut worker.session,
                            &mut worker.buffer,
                        ));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every batch slot filled"))
            .collect()
    }

    /// Run one episode: derive its stream, simulate, monitor, digest.
    fn run_episode(
        &self,
        master: &StdRng,
        episode: u64,
        session: &mut Session<'_>,
        buffer: &mut Vec<TimedEvent>,
    ) -> EpisodeResult {
        let seed = master.fork(episode).next_u64();
        // Wall-clock is telemetry-only (never part of the report), so the
        // Instant reads happen only with a registry attached.
        let started = self.metrics.as_ref().map(|_| Instant::now());
        buffer.clear();
        let end = self.model.episode(seed, buffer);
        session.reset();
        session.ingest_batch(buffer);
        session.close(end);
        if let (Some(started), Some(m)) = (started, &self.metrics) {
            m.episode_duration_ns
                .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        let stats = *session.stats();
        EpisodeResult {
            satisfied: (0..self.engine.len())
                .map(|id| session.verdict(id).is_ok())
                .collect(),
            events: stats.events,
            monitor_steps: stats.monitor_steps,
            steps_skipped: stats.steps_skipped,
            shared_hits: stats.shared_hits,
            retired: (self.engine.len() - session.active_len()) as u64,
        }
    }
}

/// Resolve `0` to the machine's available parallelism.
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        return jobs;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}
