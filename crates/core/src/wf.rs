//! Well-formedness of loose-ordering patterns — the constraints column of
//! the paper's Fig. 3.
//!
//! The constraints "mainly state that we should not reuse the same interface
//! names in two ranges, or fragments, of the same property": disjointness is
//! what lets the direct monitors classify every event in O(1) with no
//! backtracking, so it is checked *before* any monitor is built.

use lomon_trace::{Direction, Name, NameSet, Vocabulary};

use crate::ast::{Antecedent, Fragment, LooseOrdering, Property, Range, TimedImplication};

/// A well-formedness violation, with enough structure for precise messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WfError {
    /// A range with `u = 0`: a possibly-empty block would make fragment
    /// boundaries ambiguous. (The paper's examples all use `u ≥ 1`.)
    ZeroMin {
        /// The offending range's name.
        name: Name,
    },
    /// A range with `u > v` denotes no sequence at all.
    EmptyInterval {
        /// The offending range's name.
        name: Name,
        /// Lower bound.
        min: u32,
        /// Upper bound.
        max: u32,
    },
    /// A fragment with no ranges.
    EmptyFragment,
    /// A loose-ordering with no fragments.
    EmptyOrdering,
    /// The same name appears in two ranges of one property
    /// (`i ≠ j ⇒ α(Ri) ∩ α(Rj) = ∅` and the fragment-level analogue).
    DuplicateName {
        /// The name used twice.
        name: Name,
    },
    /// The trigger `i` of an antecedent also appears in `P`
    /// (`α(P) ∩ {i} = ∅`).
    TriggerInAntecedent {
        /// The trigger name.
        trigger: Name,
    },
    /// The trigger `i` of an antecedent is not an input (`i ∈ I`).
    TriggerNotInput {
        /// The trigger name.
        trigger: Name,
    },
    /// A name of a timed implication's response `Q` is not an output
    /// (`α(Q) ⊆ O`).
    ResponseNotOutput {
        /// The offending name.
        name: Name,
    },
}

impl WfError {
    /// Human-readable message, resolving names against `voc`.
    pub fn display(&self, voc: &Vocabulary) -> String {
        match self {
            WfError::ZeroMin { name } => {
                format!(
                    "range `{}` has a zero minimum; use u ≥ 1",
                    voc.resolve(*name)
                )
            }
            WfError::EmptyInterval { name, min, max } => format!(
                "range `{}[{min},{max}]` is empty: the minimum exceeds the maximum",
                voc.resolve(*name)
            ),
            WfError::EmptyFragment => "fragment has no ranges".to_owned(),
            WfError::EmptyOrdering => "loose-ordering has no fragments".to_owned(),
            WfError::DuplicateName { name } => format!(
                "name `{}` is used by two ranges of the same property; \
                 ranges and fragments must have disjoint alphabets",
                voc.resolve(*name)
            ),
            WfError::TriggerInAntecedent { trigger } => format!(
                "trigger `{}` also occurs inside the antecedent P",
                voc.resolve(*trigger)
            ),
            WfError::TriggerNotInput { trigger } => format!(
                "trigger `{}` must be an input of the component",
                voc.resolve(*trigger)
            ),
            WfError::ResponseNotOutput { name } => format!(
                "name `{}` in the response Q must be an output of the component",
                voc.resolve(*name)
            ),
        }
    }
}

fn check_range(range: &Range, seen: &mut NameSet, errors: &mut Vec<WfError>) {
    if range.min == 0 {
        errors.push(WfError::ZeroMin { name: range.name });
    }
    if range.min > range.max {
        errors.push(WfError::EmptyInterval {
            name: range.name,
            min: range.min,
            max: range.max,
        });
    }
    if !seen.insert(range.name) {
        errors.push(WfError::DuplicateName { name: range.name });
    }
}

fn check_fragment(fragment: &Fragment, seen: &mut NameSet, errors: &mut Vec<WfError>) {
    if fragment.ranges.is_empty() {
        errors.push(WfError::EmptyFragment);
    }
    for range in &fragment.ranges {
        check_range(range, seen, errors);
    }
}

fn check_ordering(ordering: &LooseOrdering, seen: &mut NameSet, errors: &mut Vec<WfError>) {
    if ordering.fragments.is_empty() {
        errors.push(WfError::EmptyOrdering);
    }
    for fragment in &ordering.fragments {
        check_fragment(fragment, seen, errors);
    }
}

/// Check an antecedent requirement; returns all violations found.
pub fn check_antecedent(a: &Antecedent, voc: &Vocabulary) -> Vec<WfError> {
    let mut errors = Vec::new();
    let mut seen = NameSet::new();
    check_ordering(&a.antecedent, &mut seen, &mut errors);
    if seen.contains(a.trigger) {
        errors.push(WfError::TriggerInAntecedent { trigger: a.trigger });
    }
    if voc.direction(a.trigger) != Direction::Input {
        errors.push(WfError::TriggerNotInput { trigger: a.trigger });
    }
    errors
}

/// Check a timed implication constraint; returns all violations found.
pub fn check_timed(t: &TimedImplication, voc: &Vocabulary) -> Vec<WfError> {
    let mut errors = Vec::new();
    // P and Q are monitored as one concatenated (cyclic) ordering, so their
    // alphabets must be mutually disjoint too: one shared `seen` set.
    let mut seen = NameSet::new();
    check_ordering(&t.premise, &mut seen, &mut errors);
    check_ordering(&t.response, &mut seen, &mut errors);
    for range in t.response.ranges() {
        if voc.direction(range.name) != Direction::Output {
            errors.push(WfError::ResponseNotOutput { name: range.name });
        }
    }
    errors
}

/// Check a property; returns all violations found (empty = well-formed).
pub fn check(property: &Property, voc: &Vocabulary) -> Vec<WfError> {
    match property {
        Property::Antecedent(a) => check_antecedent(a, voc),
        Property::Timed(t) => check_timed(t, voc),
    }
}

/// Check a property, returning it on success — the entry point used by
/// monitor builders.
///
/// # Errors
///
/// Returns the list of violations if the property is not well-formed.
pub fn validate(property: Property, voc: &Vocabulary) -> Result<Property, Vec<WfError>> {
    let errors = check(&property, voc);
    if errors.is_empty() {
        Ok(property)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::FragmentOp;
    use lomon_trace::SimTime;

    struct Fix {
        voc: Vocabulary,
        a: Name,
        b: Name,
        out1: Name,
        out2: Name,
        i: Name,
    }

    fn fix() -> Fix {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let b = voc.input("b");
        let out1 = voc.output("o1");
        let out2 = voc.output("o2");
        let i = voc.input("i");
        Fix {
            voc,
            a,
            b,
            out1,
            out2,
            i,
        }
    }

    fn ordering_of(names: &[Name]) -> LooseOrdering {
        LooseOrdering::new(
            names
                .iter()
                .map(|&n| Fragment::singleton(Range::once(n)))
                .collect(),
        )
    }

    #[test]
    fn good_antecedent_passes() {
        let f = fix();
        let a = Antecedent::new(ordering_of(&[f.a, f.b]), f.i, true);
        assert!(check_antecedent(&a, &f.voc).is_empty());
    }

    #[test]
    fn good_timed_passes() {
        let f = fix();
        let t = TimedImplication::new(
            ordering_of(&[f.a]),
            ordering_of(&[f.out1, f.out2]),
            SimTime::from_ns(100),
        );
        assert!(check_timed(&t, &f.voc).is_empty());
    }

    #[test]
    fn zero_min_detected() {
        let f = fix();
        let p = LooseOrdering::new(vec![Fragment::singleton(Range::new(f.a, 0, 3))]);
        let errs = check_antecedent(&Antecedent::new(p, f.i, false), &f.voc);
        assert!(matches!(errs[0], WfError::ZeroMin { name } if name == f.a));
        assert!(errs[0].display(&f.voc).contains("zero minimum"));
    }

    #[test]
    fn empty_interval_detected() {
        let f = fix();
        let p = LooseOrdering::new(vec![Fragment::singleton(Range::new(f.a, 5, 2))]);
        let errs = check_antecedent(&Antecedent::new(p, f.i, false), &f.voc);
        assert!(matches!(
            errs[0],
            WfError::EmptyInterval { min: 5, max: 2, .. }
        ));
    }

    #[test]
    fn duplicate_name_within_fragment_detected() {
        let f = fix();
        let frag = Fragment::new(FragmentOp::All, vec![Range::once(f.a), Range::once(f.a)]);
        let p = LooseOrdering::new(vec![frag]);
        let errs = check_antecedent(&Antecedent::new(p, f.i, false), &f.voc);
        assert!(matches!(errs[0], WfError::DuplicateName { name } if name == f.a));
    }

    #[test]
    fn duplicate_name_across_fragments_detected() {
        let f = fix();
        let p = ordering_of(&[f.a, f.b, f.a]);
        let errs = check_antecedent(&Antecedent::new(p, f.i, false), &f.voc);
        assert_eq!(errs.len(), 1);
        assert!(matches!(errs[0], WfError::DuplicateName { name } if name == f.a));
    }

    #[test]
    fn duplicate_across_premise_and_response_detected() {
        let f = fix();
        let t = TimedImplication::new(
            ordering_of(&[f.out1]),
            ordering_of(&[f.out1]),
            SimTime::from_ns(1),
        );
        let errs = check_timed(&t, &f.voc);
        assert!(errs
            .iter()
            .any(|e| matches!(e, WfError::DuplicateName { name } if *name == f.out1)));
    }

    #[test]
    fn trigger_in_antecedent_detected() {
        let f = fix();
        let p = ordering_of(&[f.a, f.i]);
        let errs = check_antecedent(&Antecedent::new(p, f.i, true), &f.voc);
        assert!(errs
            .iter()
            .any(|e| matches!(e, WfError::TriggerInAntecedent { trigger } if *trigger == f.i)));
    }

    #[test]
    fn trigger_must_be_input() {
        let f = fix();
        let errs = check_antecedent(&Antecedent::new(ordering_of(&[f.a]), f.out1, true), &f.voc);
        assert!(matches!(errs[0], WfError::TriggerNotInput { trigger } if trigger == f.out1));
    }

    #[test]
    fn response_must_be_outputs() {
        let f = fix();
        let t = TimedImplication::new(
            ordering_of(&[f.a]),
            ordering_of(&[f.b]),
            SimTime::from_ns(1),
        );
        let errs = check_timed(&t, &f.voc);
        assert!(matches!(errs[0], WfError::ResponseNotOutput { name } if name == f.b));
    }

    #[test]
    fn empty_structures_detected() {
        let f = fix();
        let p = LooseOrdering::new(vec![]);
        let errs = check_antecedent(&Antecedent::new(p, f.i, false), &f.voc);
        assert!(errs.contains(&WfError::EmptyOrdering));

        let p = LooseOrdering::new(vec![Fragment::new(FragmentOp::Any, vec![])]);
        let errs = check_antecedent(&Antecedent::new(p, f.i, false), &f.voc);
        assert!(errs.contains(&WfError::EmptyFragment));
    }

    #[test]
    fn validate_passes_through_good_property() {
        let f = fix();
        let prop: Property = Antecedent::new(ordering_of(&[f.a]), f.i, true).into();
        assert!(validate(prop, &f.voc).is_ok());
    }

    #[test]
    fn validate_reports_all_errors_at_once() {
        let f = fix();
        let p = LooseOrdering::new(vec![Fragment::singleton(Range::new(f.a, 0, 0))]);
        let prop: Property = Antecedent::new(p, f.out1, false).into();
        let errs = validate(prop, &f.voc).unwrap_err();
        // zero min + trigger not input (interval [0,0] has min ≤ max, so no
        // EmptyInterval here).
        assert_eq!(errs.len(), 2);
    }

    #[test]
    fn paper_example_2_is_well_formed() {
        // (({set_imgAddr, set_glAddr, set_glSize}, ∧) << start, false)
        let mut voc = Vocabulary::new();
        let img = voc.input("set_imgAddr");
        let gl = voc.input("set_glAddr");
        let sz = voc.input("set_glSize");
        let start = voc.input("start");
        let frag = Fragment::new(
            FragmentOp::All,
            vec![Range::once(img), Range::once(gl), Range::once(sz)],
        );
        let a = Antecedent::new(LooseOrdering::new(vec![frag]), start, false);
        assert!(check_antecedent(&a, &voc).is_empty());
    }

    #[test]
    fn paper_example_3_is_well_formed() {
        // (start ⇒ read_img[100,60000] < set_irq, T)
        let mut voc = Vocabulary::new();
        let start = voc.input("start");
        let read_img = voc.output("read_img");
        let set_irq = voc.output("set_irq");
        let t = TimedImplication::new(
            LooseOrdering::new(vec![Fragment::singleton(Range::once(start))]),
            LooseOrdering::new(vec![
                Fragment::singleton(Range::new(read_img, 100, 60_000)),
                Fragment::singleton(Range::once(set_irq)),
            ]),
            SimTime::from_us(60),
        );
        assert!(check_timed(&t, &voc).is_empty());
    }
}
