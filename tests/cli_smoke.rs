//! Smoke tests for the `lomon` binary: every subcommand against the
//! checked-in fixture, plus malformed invocations, which must exit non-zero
//! with a usage message rather than panic.

mod common;

use std::path::Path;

use common::{lomon, stderr, stdout, FIXTURE, PROPERTY};

#[test]
fn fixture_is_checked_in() {
    assert!(
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join(FIXTURE)
            .is_file(),
        "missing fixture {FIXTURE}"
    );
}

#[test]
fn check_accepts_fixture() {
    let output = lomon(&["check", FIXTURE, PROPERTY]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("12 events"), "stdout: {text}");
    assert!(text.contains("presumably satisfied"), "stdout: {text}");
}

#[test]
fn check_reports_violation_nonzero() {
    // The fixture interleaves all three config writes before each start, so
    // demanding `start` strictly first must fail.
    let output = lomon(&["check", FIXTURE, "start << set_imgAddr once"]);
    assert_eq!(output.status.code(), Some(1), "stderr: {}", stderr(&output));
    assert!(stdout(&output).contains("violated"));
}

#[test]
fn gen_roundtrips_through_check() {
    let generated = lomon(&["gen", PROPERTY, "7", "3"]);
    assert!(generated.status.success(), "stderr: {}", stderr(&generated));
    let expected = std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join(FIXTURE))
        .expect("read fixture");
    // Generation is deterministic per seed: the fixture IS `gen <prop> 7 3`.
    assert_eq!(stdout(&generated), expected);
}

#[test]
fn vcd_renders_fixture() {
    let output = lomon(&["vcd", FIXTURE]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("$timescale"), "stdout: {text}");
    assert!(text.contains("set_imgAddr"), "stdout: {text}");
}

#[test]
fn demo_runs_clean() {
    let output = lomon(&["demo"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(stdout(&output).contains("btn_press"));
    assert!(stderr(&output).contains("online verdict"));
}

#[test]
fn no_arguments_prints_usage() {
    let output = lomon(&[]);
    assert_eq!(output.status.code(), Some(2));
    assert!(stderr(&output).contains("usage:"));
}

#[test]
fn unknown_command_prints_usage() {
    let output = lomon(&["frobnicate"]);
    assert_eq!(output.status.code(), Some(2));
    let text = stderr(&output);
    assert!(
        text.contains("unknown command `frobnicate`"),
        "stderr: {text}"
    );
    assert!(text.contains("usage:"), "stderr: {text}");
}

#[test]
fn missing_operands_print_usage() {
    for args in [
        &["check", FIXTURE] as &[&str],
        &["vcd"],
        &["vcd", FIXTURE, "extra"],
        &["gen"],
        &["gen", PROPERTY, "1", "2", "extra"],
        &["demo", "extra"],
    ] {
        let output = lomon(args);
        assert_eq!(output.status.code(), Some(2), "args: {args:?}");
        assert!(stderr(&output).contains("usage:"), "args: {args:?}");
    }
}

#[test]
fn malformed_seed_is_rejected() {
    let output = lomon(&["gen", PROPERTY, "notanumber"]);
    assert_eq!(output.status.code(), Some(2));
    assert!(stderr(&output).contains("not an unsigned integer"));

    let output = lomon(&["gen", PROPERTY, "1", "-3"]);
    assert_eq!(output.status.code(), Some(2));
    assert!(stderr(&output).contains("episode count"));
}

#[test]
fn malformed_property_is_rejected() {
    let output = lomon(&["check", FIXTURE, "all{unclosed << start"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(stderr(&output).contains("error in property"));
}

#[test]
fn missing_trace_file_is_rejected() {
    let output = lomon(&["check", "no/such/file.trace", PROPERTY]);
    assert_eq!(output.status.code(), Some(1));
    assert!(stderr(&output).contains("cannot read"));
}

#[test]
fn check_accepts_whitespace_free_properties() {
    // Spaces around `<<` and the `once` modality are optional; the
    // file/property split must not mistake such a property for a path.
    let output = lomon(&["check", FIXTURE, "set_imgAddr<<start"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(stdout(&output).contains("[satisfied] set_imgAddr<<start"));
}

#[test]
fn check_names_the_unreadable_file_in_multi_file_mode() {
    // A typo'd second path must produce the file diagnostic, not a
    // property parse error rendered over the filename.
    let output = lomon(&["check", FIXTURE, "typo.trace", PROPERTY]);
    assert_eq!(output.status.code(), Some(1));
    assert!(stderr(&output).contains("cannot read typo.trace"));
}

#[test]
fn check_replays_multiple_files_through_one_engine() {
    let output = lomon(&["check", FIXTURE, FIXTURE, FIXTURE, PROPERTY]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert_eq!(
        text.matches("12 events, end at").count(),
        3,
        "one per-file header each: {text}"
    );
    assert_eq!(text.matches("presumably satisfied").count(), 3);
    assert!(text.contains("3 files checked: all ok"), "stdout: {text}");
}

#[test]
fn multi_file_check_exit_code_combines_all_files() {
    // A second file that violates the property: the combined exit code is
    // non-zero even though the first file is clean.
    let dir = std::env::temp_dir().join(format!("lomon-check-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bad = dir.join("bad.trace");
    std::fs::write(&bad, "10ns in start\n20ns in set_imgAddr\nend 30ns\n").expect("write trace");
    let output = lomon(&["check", FIXTURE, bad.to_str().unwrap(), PROPERTY]);
    assert_eq!(output.status.code(), Some(1), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("violations found"), "stdout: {text}");
    assert!(text.contains("presumably satisfied"), "stdout: {text}");
    assert!(text.contains("violated"), "stdout: {text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn smc_scenario_campaign_runs() {
    let output = lomon(&[
        "smc",
        "--episodes",
        "8",
        "--jobs",
        "2",
        "--seed",
        "3",
        "--fault-prob",
        "0",
    ]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("platform campaign"), "stdout: {text}");
    // Fault-free episodes satisfy both case-study properties exactly.
    assert_eq!(text.matches("= 1.0000").count(), 2, "stdout: {text}");
    assert!(text.contains("8 episodes"), "stdout: {text}");
}

#[test]
fn smc_reports_are_jobs_independent() {
    let run = |jobs: &str| {
        let output = lomon(&[
            "smc",
            "--episodes",
            "12",
            "--jobs",
            jobs,
            "--seed",
            "9",
            "--fault-prob",
            "0.5",
        ]);
        assert!(output.status.success(), "stderr: {}", stderr(&output));
        // Strip the (timing) footer lines; keep the statistical content.
        stdout(&output)
            .lines()
            .filter(|l| !l.contains("wall clock") && !l.contains("jobs"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(run("1"), run("3"));
}

#[test]
fn smc_sprt_rejects_faulty_platform() {
    let output = lomon(&[
        "smc",
        "--sprt",
        "0.9",
        "0.4",
        "--seed",
        "2",
        "--fault-prob",
        "0.8",
    ]);
    assert_eq!(output.status.code(), Some(1), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("accept H1"), "stdout: {text}");
}

#[test]
fn smc_trace_campaign_estimates_mutation_survival() {
    let output = lomon(&[
        "smc",
        "--trace",
        FIXTURE,
        PROPERTY,
        "--episodes",
        "32",
        "--mutation-prob",
        "1",
        "--seed",
        "6",
    ]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("trace campaign"), "stdout: {text}");
    assert!(text.contains("32 episodes"), "stdout: {text}");
}

#[test]
fn smc_rejects_malformed_invocations() {
    for args in [
        &["smc", "--episodes", "abc"] as &[&str],
        &["smc", "--sprt", "0.5", "0.9"], // p1 must be below p0
        &["smc", "--sprt", "0.9"],        // missing second value
        &["smc", "--confidence", "2"],
        &["smc", "--unknown-flag"],
        &["smc", "--trace"], // missing value
        // Flags the selected mode would ignore are rejected, not dropped.
        &["smc", "--mutation-prob", "0.5"], // needs --trace
        &[
            "smc",
            "--trace",
            FIXTURE,
            "--fault-prob",
            "0.5",
            "a << b once",
        ],
        &["smc", "--epsilon", "0.1", "--episodes", "5"],
        &["smc", "--epsilon", "0.1", "--sprt", "0.9", "0.5"],
    ] {
        let output = lomon(args);
        assert_eq!(output.status.code(), Some(2), "args: {args:?}");
        assert!(stderr(&output).contains("usage:"), "args: {args:?}");
    }
    // `--trace` without a property is a usage error too.
    let output = lomon(&["smc", "--trace", FIXTURE]);
    assert_eq!(output.status.code(), Some(2));
    assert!(stderr(&output).contains("at least one property"));
}

#[test]
fn smc_reports_property_errors_before_running() {
    let output = lomon(&["smc", "--episodes", "2", "all{unclosed << start"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(stderr(&output).contains("error in property"));
}

#[test]
fn check_format_json_emits_machine_report_with_sharing_stats() {
    // Two copies of the property: the fused backend (the default) interns
    // them into one group, which the JSON stats must expose.
    let output = lomon(&["check", "--format", "json", FIXTURE, PROPERTY, PROPERTY]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1, "one JSON object per trace file: {text}");
    let json = lines[0];
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    assert!(json.contains("\"file\": \"tests/fixtures/ipu_config.trace\""));
    assert!(json.contains("\"verdict\": \"presumably satisfied\""));
    assert!(json.contains("\"ok\": true"), "{json}");
    assert!(json.contains("\"total_cells\": 6"), "{json}");
    assert!(json.contains("\"unique_cells\": 3"), "{json}");
    // No text-report furniture on stdout in JSON mode.
    assert!(!text.contains("dispatch:"), "{text}");
}

#[test]
fn check_backends_agree_on_the_fixture() {
    let verdicts = |backend: &str| {
        let output = lomon(&["check", "--backend", backend, FIXTURE, PROPERTY]);
        assert!(
            output.status.success(),
            "backend {backend} stderr: {}",
            stderr(&output)
        );
        stdout(&output)
            .lines()
            .filter(|l| l.trim_start().starts_with('['))
            .map(str::to_owned)
            .collect::<Vec<_>>()
    };
    let fused = verdicts("fused");
    assert_eq!(fused, verdicts("compiled"));
    assert_eq!(fused, verdicts("interp"));
}

#[test]
fn unknown_backend_is_rejected() {
    let output = lomon(&["check", "--backend", "bogus", FIXTURE, PROPERTY]);
    assert_eq!(output.status.code(), Some(2), "stderr: {}", stderr(&output));
    assert!(stderr(&output).contains("unknown backend"));
}

#[test]
fn smc_format_json_is_jobs_independent() {
    let run = |jobs: &str| {
        let output = lomon(&[
            "smc",
            "--format",
            "json",
            "--episodes",
            "12",
            "--jobs",
            jobs,
            "--seed",
            "9",
            "--fault-prob",
            "0.5",
        ]);
        assert!(output.status.success(), "stderr: {}", stderr(&output));
        stdout(&output)
    };
    // JSON mode prints only the report object — no preamble, no wall
    // clock — so the whole stdout is bit-identical across worker counts.
    let one = run("1");
    assert_eq!(one, run("3"));
    assert_eq!(one.lines().count(), 1, "{one}");
    assert!(one.contains("\"mean\": "), "{one}");
    assert!(one.contains("\"episodes\": 12"), "{one}");
}
