//! Compiled execution backend: flat event→action tables for the Fig. 5
//! recognizers.
//!
//! The interpreter ([`crate::recognizer`], [`crate::compose`],
//! [`crate::antecedent`], [`crate::timed`]) walks the monitor tree on every
//! event: enum dispatch into the active fragment, then up to four bitset
//! membership tests per recognizer to classify the name against its context
//! `(B, C, Ac, Af)`. [`CompiledProgram::lower`] pays the classification cost
//! **once**, at compile time: every (alphabet name × recognizer cell) pair
//! is resolved to its [`NameClass`] and stored in a dense row-major action
//! table, and the recognizer tree is flattened into an arena of
//! `(state, counter)` cells grouped by fragment. The per-event hot path of
//! [`CompiledMonitor`] is then one lookup-table index plus a handful of
//! integer state updates per cell of the active fragment — no tree walk, no
//! bitset probes, and no allocation.
//!
//! ## Exact interpreter parity
//!
//! The backend is **observationally identical** to the interpreter: same
//! verdicts at every step, same violation diagnostics (kind, event, time,
//! detail, expected set), and the same abstract-operation counts
//! ([`Monitor::ops`]) — every `ops` increment of the interpreter is
//! replayed, with the classification cost read off the precomputed class
//! instead of re-measured. The expected-set diagnostics that the
//! interpreter snapshots eagerly after every event are derived *lazily*
//! here, from a cheap fixed-size copy of the active fragment's cell states
//! taken before each event — which is what removes the per-event `NameSet`
//! allocation from the hot path. `crates/engine/tests/engine_oracle.rs`
//! pits the two backends against each other on random properties and
//! traces; the unit tests below run them in lockstep on the paper examples.

use std::sync::Arc;

use lomon_trace::{Name, NameSet, SimTime, TimedEvent, Vocabulary};

use crate::ast::{FragmentOp, Property};
use crate::compose::OrderingStep;
use crate::context::{cyclic_contexts, linear_contexts, NameClass};
use crate::recognizer::{counter_bits, RangeOutput};
use crate::verdict::{Monitor, Obligation, Verdict, Violation, ViolationKind};
use crate::wf::{self, WfError};
use crate::witness::{FlightRecorder, Witness, WitnessStep};

/// Lookup sentinel for names outside the alphabet.
const NO_ROW: u32 = u32::MAX;

// Cell automaton states: the `s0` … `s5` of Fig. 5 as dense integers.
const S_IDLE: u8 = 0;
const S_WAITING: u8 = 1;
const S_WAITING_OTHER: u8 = 2;
const S_COUNTING: u8 = 3;
const S_DONE: u8 = 4;
const S_ERROR: u8 = 5;

// Precomputed name classes. The nonzero codes double as the interpreter's
// short-circuited classification cost (1 probe for `Own` … 5 for `Before`);
// `CLASS_NONE` (outside the root alphabet) costs the full 5 probes.
const CLASS_NONE: u8 = 0;
const CLASS_OWN: u8 = 1;
const CLASS_CONCURRENT: u8 = 2;
const CLASS_ACCEPT: u8 = 3;
const CLASS_AFTER: u8 = 4;
const CLASS_BEFORE: u8 = 5;

fn class_code(class: Option<NameClass>) -> u8 {
    match class {
        None => CLASS_NONE,
        Some(NameClass::Own) => CLASS_OWN,
        Some(NameClass::Concurrent) => CLASS_CONCURRENT,
        Some(NameClass::Accept) => CLASS_ACCEPT,
        Some(NameClass::After) => CLASS_AFTER,
        Some(NameClass::Before) => CLASS_BEFORE,
    }
}

fn class_cost(code: u8) -> u64 {
    if code == CLASS_NONE {
        5
    } else {
        u64::from(code)
    }
}

/// Immutable per-cell configuration: the range `n[u,v]` it recognizes.
#[derive(Debug, Clone, Copy)]
struct CellSpec {
    name: Name,
    min: u32,
    max: u32,
}

// The event→action table and the mutable cell arena are stored as
// struct-of-arrays (a one-byte `class` stream, a packed `min|max` bounds
// stream, and a packed `state|cpt` cell stream indexed by action-table
// position) rather than as vectors of structs: the hot loop touches the
// class stream densely (a whole cache line holds 64 classes), the bounds
// and cell words each load and store as a single machine word, and the
// pre-event diagnostic snapshot degenerates to one word copy per cell.

/// Pack a range's counter bounds into one action-table word.
const fn range_word(min: u32, max: u32) -> u64 {
    min as u64 | (max as u64) << 32
}

const fn range_min(word: u64) -> u32 {
    word as u32
}

const fn range_max(word: u64) -> u32 {
    (word >> 32) as u32
}

/// Pack a cell's automaton state and range counter into one arena word.
/// Bits 8..32 are always zero; transitions that touch only the state
/// keep the counter bits with mask arithmetic (and vice versa), so the
/// arena behaves exactly like the former parallel `u8`/`u32` arrays.
const fn cell_word(state: u8, cpt: u32) -> u64 {
    state as u64 | (cpt as u64) << 32
}

const fn cell_state(word: u64) -> u8 {
    word as u8
}

const fn cell_cpt(word: u64) -> u32 {
    (word >> 32) as u32
}

/// Mask preserving the counter half of a cell word.
const CELL_CPT_BITS: u64 = 0xFFFF_FFFF_0000_0000;
/// A cell word's increment step for `cpt += 1`.
const CELL_CPT_ONE: u64 = 1 << 32;

/// Rewrite the state half of a cell word in place.
#[inline(always)]
fn set_cell_state(word: &mut u64, state: u8) {
    *word = (*word & CELL_CPT_BITS) | state as u64;
}

/// Which root pattern the program encodes.
#[derive(Debug, Clone, Copy)]
enum ProgramKind {
    /// `(P << i, b)` — linear chain, stop set `{i}`.
    Antecedent { repeated: bool },
    /// `(P ⇒ Q, t)` — cyclic chain over the concatenated fragments.
    Timed { premise_len: u32, bound: SimTime },
}

/// The immutable compiled form of one property: a flat arena of recognizer
/// cells plus the dense event→action table. Shared (via [`Arc`]) by any
/// number of [`CompiledMonitor`]s, e.g. one per engine session.
///
/// Built by [`CompiledProgram::lower`]; stepped by [`CompiledMonitor`].
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    kind: ProgramKind,
    /// All cells of all fragments, fragment-contiguous.
    cells: Vec<CellSpec>,
    /// Fragment `f` owns cells `frag_start[f] .. frag_start[f + 1]`.
    frag_start: Vec<u32>,
    /// Per-fragment connective (`∧`/`∨`).
    frag_op: Vec<FragmentOp>,
    /// Per-fragment stopping set `Ac` (shared by the fragment's cells) —
    /// needed only for the lazily computed expected-set diagnostics.
    frag_accept: Vec<NameSet>,
    /// `Name::index()` → prescaled action-table row offset (`row × cells`),
    /// [`NO_ROW`] outside the alphabet.
    lookup: Vec<u32>,
    /// Row-major `rows × cells` table of precomputed [`NameClass`] codes —
    /// the struct-of-arrays action table, with the cells' counter bounds
    /// in the parallel `act_range` at the same index.
    act_class: Vec<u8>,
    /// Counter bounds of entry `i`'s cell (parallel to `act_class`),
    /// packed `min | max << 32` so the step loop streams one word per
    /// cell instead of two parallel arrays.
    act_range: Vec<u64>,
    /// The property's alphabet `α` (the rows of the table).
    alphabet: NameSet,
    /// Mutable state footprint, matching the interpreter's accounting.
    state_bits: u64,
    /// `max_f |cells(f)|` — sizes the pre-event snapshot buffer.
    max_frag_cells: usize,
}

impl CompiledProgram {
    /// Lower a **well-formed** property into its flat-table program.
    ///
    /// The property must already satisfy the Fig. 3 side conditions (see
    /// [`crate::wf`]); use [`compile_monitor`] to validate and lower in one
    /// step. The lowering reuses the interpreter's own context computation
    /// ([`linear_contexts`] / [`cyclic_contexts`]) and classification
    /// priority, so the table is correct by construction.
    pub fn lower(property: &Property) -> CompiledProgram {
        let (fragments, contexts, kind, alphabet) = match property {
            Property::Antecedent(a) => {
                let stop: NameSet = [a.trigger].into_iter().collect();
                (
                    a.antecedent.fragments.clone(),
                    linear_contexts(&a.antecedent, &stop),
                    ProgramKind::Antecedent {
                        repeated: a.repeated,
                    },
                    a.alpha(),
                )
            }
            Property::Timed(t) => {
                let fragments = t.all_fragments();
                let contexts = cyclic_contexts(&fragments);
                (
                    fragments,
                    contexts,
                    ProgramKind::Timed {
                        premise_len: t.premise.fragments.len() as u32,
                        bound: t.bound,
                    },
                    t.alpha(),
                )
            }
        };
        assert!(!fragments.is_empty(), "ordering must have fragments");

        let mut cells = Vec::new();
        let mut frag_start = vec![0u32];
        let mut frag_op = Vec::with_capacity(fragments.len());
        let mut frag_accept = Vec::with_capacity(fragments.len());
        let mut max_frag_cells = 0;
        for (fragment, ctxs) in fragments.iter().zip(&contexts) {
            frag_op.push(fragment.op);
            frag_accept.push(ctxs[0].accept.clone());
            for range in &fragment.ranges {
                cells.push(CellSpec {
                    name: range.name,
                    min: range.min,
                    max: range.max,
                });
            }
            max_frag_cells = max_frag_cells.max(fragment.ranges.len());
            frag_start.push(cells.len() as u32);
        }

        let n_cells = cells.len();
        let names: Vec<Name> = alphabet.iter().collect();
        let table = names.len() * n_cells;
        assert!(table < NO_ROW as usize, "alphabet x cells too large");
        let table_width = names.iter().map(|n| n.index() + 1).max().unwrap_or(0);
        let mut lookup = vec![NO_ROW; table_width];
        for (row, &name) in names.iter().enumerate() {
            lookup[name.index()] = (row * n_cells) as u32;
        }

        let mut act_class = vec![CLASS_NONE; table];
        let mut act_range = vec![0u64; table];
        let mut cell = 0usize;
        for (fragment, ctxs) in fragments.iter().zip(&contexts) {
            for (range, ctx) in fragment.ranges.iter().zip(ctxs) {
                for (row, &name) in names.iter().enumerate() {
                    let at = row * n_cells + cell;
                    act_class[at] = class_code(ctx.classify(range.name, name));
                    act_range[at] = range_word(range.min, range.max);
                }
                cell += 1;
            }
        }

        // The interpreter's state accounting, reproduced constant-for-
        // constant: per cell 3 automaton bits + the counter, per ordering
        // the active-index register + started flag, per monitor the
        // verdict/episode flags (and the three sc_time variables for timed
        // implications).
        let cell_bits: u64 = cells.iter().map(|c| 3 + counter_bits(c.max)).sum();
        let index_bits = u64::from(usize::BITS - fragments.len().max(1).leading_zeros());
        let ordering_bits = cell_bits + index_bits + 1;
        let state_bits = match kind {
            ProgramKind::Antecedent { .. } => ordering_bits + 2 + 1,
            ProgramKind::Timed { .. } => ordering_bits + 3 * 64 + 2 + 3,
        };

        CompiledProgram {
            kind,
            cells,
            frag_start,
            frag_op,
            frag_accept,
            lookup,
            act_class,
            act_range,
            alphabet,
            state_bits,
            max_frag_cells,
        }
    }

    /// The property's alphabet `α` — the rows of the action table.
    pub fn alphabet(&self) -> &NameSet {
        &self.alphabet
    }

    /// Whether the program encodes a timed implication (the only kind that
    /// carries deadlines).
    pub fn is_timed(&self) -> bool {
        matches!(self.kind, ProgramKind::Timed { .. })
    }

    /// Structural fingerprint of the program: two programs with equal
    /// fingerprints are **observationally identical** — given the same
    /// event/time sequence their monitors produce the same verdicts,
    /// violation diagnostics (kind, detail, expected set), deadlines and
    /// `ops` at every step. This is what makes cross-property state sharing
    /// in [`crate::fused`] sound: a single cell arena can serve every
    /// property whose program fingerprints equal, because nothing
    /// observable can ever distinguish their monitors.
    ///
    /// The encoding covers everything the monitor dynamics read: the
    /// program kind (with the `repeated` flag / premise length / time
    /// bound), the fragment layout and connectives, each cell's
    /// `(name, min, max)` spec **in order** (order matters: violation
    /// details name the rejecting range by position), the per-fragment
    /// stopping sets, the alphabet, and the whole event→action table.
    pub fn fingerprint(&self) -> Vec<u64> {
        let mut key = Vec::with_capacity(
            8 + self.frag_start.len() + 2 * self.frag_op.len() + 3 * self.cells.len(),
        );
        match self.kind {
            ProgramKind::Antecedent { repeated } => {
                key.push(0);
                key.push(u64::from(repeated));
            }
            ProgramKind::Timed { premise_len, bound } => {
                key.push(1);
                key.push(u64::from(premise_len));
                key.push(bound.as_ps());
            }
        }
        key.extend(self.frag_start.iter().map(|&s| u64::from(s)));
        key.extend(self.frag_op.iter().map(|&op| match op {
            FragmentOp::All => 0u64,
            FragmentOp::Any => 1u64,
        }));
        for accept in &self.frag_accept {
            key.push(accept.len() as u64);
            key.extend(accept.iter().map(|n| n.index() as u64));
        }
        for cell in &self.cells {
            key.push(cell.name.index() as u64);
            key.push(u64::from(cell.min));
            key.push(u64::from(cell.max));
        }
        key.push(self.alphabet.len() as u64);
        key.extend(self.alphabet.iter().map(|n| n.index() as u64));
        // The table is derived from the structure above, but keying it too
        // costs nothing at compile time and keeps the key self-evidently
        // complete. The packing is exact (8 + 32 bits used of 40+32), so
        // distinct tables never collide.
        for (&class, &range) in self.act_class.iter().zip(&self.act_range) {
            key.push(u64::from(class) | (u64::from(range_min(range)) << 8));
            key.push(u64::from(range_max(range)));
        }
        key
    }

    /// Number of recognizer cells in the arena.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// One past the highest [`Name::index`] in the alphabet — the width a
    /// dense name-indexed lookup covering this program must have.
    pub fn lookup_width(&self) -> usize {
        self.lookup.len()
    }

    /// Number of fragments in the (concatenated) chain.
    pub fn fragment_count(&self) -> usize {
        self.frag_op.len()
    }

    fn n_frags(&self) -> usize {
        self.frag_op.len()
    }

    fn frag_range(&self, f: usize) -> (usize, usize) {
        (self.frag_start[f] as usize, self.frag_start[f + 1] as usize)
    }

    /// The prescaled action-table row offset of `name`, or `None` outside
    /// the alphabet. An event router that already proved membership (e.g.
    /// the engine's inverted index) can pass this to
    /// [`CompiledMonitor::observe_routed`] and skip the monitor's own
    /// projection lookup.
    #[inline]
    pub fn action_row(&self, name: Name) -> Option<u32> {
        match self.lookup.get(name.index()) {
            Some(&base) if base != NO_ROW => Some(base),
            _ => None,
        }
    }

    /// The prescaled action-table row offset of `name`, or `None` outside
    /// the alphabet — the hot path's single projection lookup.
    #[inline(always)]
    fn row_base(&self, name: Name) -> Option<usize> {
        match self.lookup.get(name.index()) {
            Some(&base) if base != NO_ROW => Some(base as usize),
            _ => None,
        }
    }

    /// Total number of event→action table entries (rows × cells).
    pub(crate) fn action_count(&self) -> usize {
        self.act_class.len()
    }

    /// Exploration depth for the bounded-model analyses in
    /// [`crate::analysis`]: enough unit-step events to complete every
    /// range's minimum, hand over across every fragment boundary, and
    /// observe the verdict one step past completion. Traces longer than
    /// this revisit monitor states already covered by shorter ones (the
    /// cell automata are finite and counters saturate at the range bounds).
    pub fn bounded_horizon(&self) -> usize {
        let mins: usize = self.cells.iter().map(|c| c.min as usize).sum();
        mins + self.n_frags() + 2
    }

    /// Rebuild the program with out-of-corpus rows dropped and dead entries
    /// neutralized: rows of names in `drop` vanish from the table (their
    /// lookup slot becomes [`NO_ROW`], so their events take the cheaper
    /// out-of-alphabet path), and kept entries whose `live` flag is unset
    /// are rewritten to [`CLASS_NONE`] (a read-only no-op wherever the
    /// liveness walk proved they can only ever self-loop). The `alphabet`
    /// set is intentionally left unchanged — it documents the property, not
    /// the table layout — so dropped names still project, they just resolve
    /// to no row.
    ///
    /// Verdict-preserving on every trace whose events avoid `drop`;
    /// [`Monitor::ops`] accounting is **not** preserved (a neutralized
    /// entry charges the out-of-alphabet classification cost).
    pub(crate) fn pruned(&self, live: &[bool], drop: &NameSet) -> (CompiledProgram, PruneStats) {
        assert_eq!(live.len(), self.act_class.len(), "liveness mask shape");
        let n_cells = self.cells.len();
        let names: Vec<Name> = self.alphabet.iter().collect();
        let mut lookup = vec![NO_ROW; self.lookup.len()];
        let mut act_class = Vec::new();
        let mut act_range = Vec::new();
        let mut stats = PruneStats {
            rows: 0,
            dropped_rows: 0,
            entries: 0,
            neutralized_entries: 0,
        };
        for name in names {
            let Some(base) = self.row_base(name) else {
                continue; // already dropped by an earlier prune
            };
            stats.rows += 1;
            stats.entries += n_cells;
            if drop.contains(name) {
                stats.dropped_rows += 1;
                continue;
            }
            lookup[name.index()] = act_class.len() as u32;
            for c in 0..n_cells {
                if live[base + c] {
                    act_class.push(self.act_class[base + c]);
                    act_range.push(self.act_range[base + c]);
                } else {
                    if self.act_class[base + c] != CLASS_NONE {
                        stats.neutralized_entries += 1;
                    }
                    act_class.push(CLASS_NONE);
                    act_range.push(0);
                }
            }
        }
        let program = CompiledProgram {
            kind: self.kind,
            cells: self.cells.clone(),
            frag_start: self.frag_start.clone(),
            frag_op: self.frag_op.clone(),
            frag_accept: self.frag_accept.clone(),
            lookup,
            act_class,
            act_range,
            alphabet: self.alphabet.clone(),
            state_bits: self.state_bits,
            max_frag_cells: self.max_frag_cells,
        };
        (program, stats)
    }
}

/// What [`CompiledProgram::pruned`] removed, for lint reports and the
/// `--fix-prune` summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Action-table rows before pruning.
    pub rows: usize,
    /// Rows removed outright (their name cannot occur in the corpus).
    pub dropped_rows: usize,
    /// Table entries before pruning (`rows × cells`).
    pub entries: usize,
    /// Kept entries rewritten to the no-op class by the liveness walk.
    pub neutralized_entries: usize,
}

impl PruneStats {
    /// Fold another program's stats into this one (rulebook totals).
    pub fn absorb(&mut self, other: PruneStats) {
        self.rows += other.rows;
        self.dropped_rows += other.dropped_rows;
        self.entries += other.entries;
        self.neutralized_entries += other.neutralized_entries;
    }

    /// Entries physically removed from the table by row dropping.
    pub fn dropped_entries(&self) -> usize {
        if self.rows == 0 {
            return 0;
        }
        self.dropped_rows * (self.entries / self.rows)
    }
}

fn verdict_code(v: Verdict) -> u64 {
    match v {
        Verdict::PresumablySatisfied => 0,
        Verdict::Pending => 1,
        Verdict::Satisfied => 2,
        Verdict::Violated => 3,
    }
}

/// Where a violation's expected-set diagnostic is derived from.
#[derive(Clone, Copy)]
enum ExpectedFrom {
    /// The current (unmutated) cell states — for violations detected
    /// *before* the event steps any cell (deadline checks, end of trace).
    Current,
    /// The pre-event snapshot — for violations raised while or after the
    /// event mutated the active fragment.
    Snapshot,
}

/// The mutable half of a compiled monitor, separated from the shared
/// [`CompiledProgram`] so the borrow of the program and the mutation of the
/// state can coexist.
#[derive(Debug, Clone)]
struct MonState {
    /// The cell arena: one packed `state | cpt << 32` word per cell (see
    /// [`cell_word`]), indexed like the action table's rows. One word per
    /// cell keeps a step's read-modify-write on a single cache line slot
    /// and the pre-event snapshot a plain word copy.
    cell: Vec<u64>,
    active: usize,
    /// Cell bounds and connective of the active fragment, cached so the
    /// per-event loop does not re-chase `frag_start`/`frag_op` (they only
    /// change on the rare handover/restart).
    active_lo: usize,
    active_hi: usize,
    active_op: FragmentOp,
    started: bool,
    verdict: Verdict,
    /// Boxed: violations are terminal and rare; keeping the report out of
    /// line keeps the monitor state small and cache-resident.
    violation: Option<Box<Violation>>,
    episodes: u64,
    /// Episodes discharged non-vacuously: in-budget `Q` completions for
    /// timed programs (antecedent programs read `episodes` instead).
    fired: u64,
    diagnostics: bool,
    ops: u64,
    /// Pre-event snapshot: the active fragment and its cell states before
    /// the event currently being processed (fixed length `max_frag_cells`,
    /// never reallocated after construction — only the leading
    /// `|cells(prev_active)|` entries are meaningful).
    prev_active: usize,
    prev: Vec<u64>,
    /// Time of the last event consumed in the current episode (timed only).
    last_consumed: Option<SimTime>,
    /// Frozen end of `P` once `Q` has begun (timed only).
    episode_start: Option<SimTime>,
    /// Earliest completion of `Q`, once reached (timed only).
    response_done_at: Option<SimTime>,
    /// Explain mode: the bounded ring of contributing steps behind the
    /// verdict. `None` (the default) keeps the hot path untouched; boxed
    /// so the detached case costs one pointer of state.
    recorder: Option<Box<FlightRecorder>>,
    /// Attributing mode: record full cell/transition attribution instead
    /// of the live raw `(time, event)` chain. Only set on the fresh clones
    /// [`CompiledMonitor::witness`] replays a chain through — live explain
    /// sessions keep it off so the hot path stays a single ring store.
    attribute: bool,
}

/// The flat-table monitor: a [`CompiledProgram`] plus its per-stream state.
///
/// Implements the same [`Monitor`] interface as the interpreter monitors
/// and is verdict-, diagnostic- and ops-identical to them (see the module
/// docs). [`Monitor::reset`] rewinds the state arena in place — the monitor
/// performs **no allocation** per event or per reset, which is what lets an
/// SMC campaign run millions of episodes through one instance.
///
/// # Example
///
/// ```
/// use lomon_core::compiled::compile_monitor;
/// use lomon_core::parse::parse_property;
/// use lomon_core::verdict::{run_to_end, Verdict};
/// use lomon_trace::{Trace, Vocabulary};
///
/// let mut voc = Vocabulary::new();
/// let prop = parse_property("all{a, b} << start once", &mut voc).unwrap();
/// let mut monitor = compile_monitor(prop, &voc).expect("well-formed");
///
/// let a = voc.lookup("a").unwrap();
/// let b = voc.lookup("b").unwrap();
/// let start = voc.lookup("start").unwrap();
/// let verdict = run_to_end(&mut monitor, &Trace::from_names([b, a, start]));
/// assert_eq!(verdict, Verdict::Satisfied);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledMonitor {
    program: Arc<CompiledProgram>,
    st: MonState,
}

/// Validate `property` against `voc` and build its compiled monitor — the
/// flat-table counterpart of [`crate::monitor::build_monitor`].
///
/// # Errors
///
/// Returns the well-formedness violations if the property breaks any Fig. 3
/// side condition.
pub fn compile_monitor(
    property: Property,
    voc: &Vocabulary,
) -> Result<CompiledMonitor, Vec<WfError>> {
    let property = wf::validate(property, voc)?;
    Ok(CompiledMonitor::new(Arc::new(CompiledProgram::lower(
        &property,
    ))))
}

impl CompiledMonitor {
    /// Build and activate a monitor over a lowered program.
    pub fn new(program: Arc<CompiledProgram>) -> Self {
        let mut st = MonState {
            cell: vec![cell_word(S_IDLE, 0); program.cells.len()],
            active: 0,
            active_lo: 0,
            active_hi: 0,
            active_op: FragmentOp::All,
            started: false,
            verdict: Verdict::PresumablySatisfied,
            violation: None,
            episodes: 0,
            fired: 0,
            diagnostics: true,
            ops: 0,
            prev_active: 0,
            prev: vec![cell_word(S_IDLE, 0); program.max_frag_cells],
            last_consumed: None,
            episode_start: None,
            response_done_at: None,
            recorder: None,
            attribute: false,
        };
        st.start(&program);
        CompiledMonitor { program, st }
    }

    /// Disable the expected-set diagnostics: violation reports then carry
    /// an empty expected set, exactly as the interpreter monitors'
    /// `without_diagnostics`.
    pub fn without_diagnostics(mut self) -> Self {
        self.st.diagnostics = false;
        self
    }

    /// The shared program this monitor steps.
    pub fn program(&self) -> &Arc<CompiledProgram> {
        &self.program
    }

    /// Completed episodes so far (same counting as the interpreter's).
    pub fn episodes(&self) -> u64 {
        self.st.episodes
    }

    /// Episodes whose obligation was discharged non-vacuously — completed
    /// `P << i` episodes for antecedents, in-budget `Q` completions for
    /// timed implications. The compiled counterpart of
    /// `PropertyMonitor::satisfied_episodes`.
    pub fn satisfied_episodes(&self) -> u64 {
        match self.program.kind {
            ProgramKind::Antecedent { .. } => self.st.episodes,
            ProgramKind::Timed { .. } => self.st.fired,
        }
    }

    /// A finite abstraction of the monitor state for the bounded-model
    /// walks in [`crate::analysis`]: two monitors with equal keys (at equal
    /// `now`) produce the same verdict/satisfaction facts under every
    /// future unit-step input sequence. Covers the cell arena, the active
    /// fragment, the verdict, the satisfied-episode flag, and — for timed
    /// programs — the episode clocks as `now`-relative offsets saturated
    /// just past the deadline budget (beyond which only "expired" matters).
    pub(crate) fn analysis_key(&self, now: SimTime) -> Vec<u64> {
        let st = &self.st;
        let verdict = verdict_code(st.verdict);
        let satisfied = u64::from(self.satisfied_episodes() > 0);
        if st.verdict.is_final() {
            return vec![u64::MAX, verdict, satisfied];
        }
        let mut key = Vec::with_capacity(7 + 2 * st.cell.len());
        key.push(verdict);
        key.push(st.active as u64);
        key.push(u64::from(st.started));
        key.push(satisfied);
        for &word in &st.cell {
            key.push(u64::from(cell_state(word)));
            key.push(u64::from(cell_cpt(word)));
        }
        if let ProgramKind::Timed { bound, .. } = self.program.kind {
            let cap = bound.as_ps().saturating_add(1);
            let offset = |t: Option<SimTime>| match t {
                Some(t) => now.as_ps().saturating_sub(t.as_ps()).min(cap),
                None => u64::MAX,
            };
            key.push(offset(st.last_consumed));
            key.push(offset(st.episode_start));
            key.push(u64::from(st.response_done_at.is_some()));
        }
        key
    }

    /// Mark the action-table entries an event for any name in `branch`
    /// would read *effectively* from the current state: entries outside
    /// the active fragment are never consulted, and `(state, class)` pairs
    /// that provably self-loop without output — the no-op class, idle or
    /// errored cells, and the concurrent self-loops of `s2`/`s4` — are
    /// skipped. The dead-table walk in [`crate::analysis`] folds these
    /// marks over every reachable state; whatever stays unmarked is safe
    /// for [`CompiledProgram::pruned`] to neutralize.
    pub(crate) fn mark_live_actions(&self, branch: &[Name], live: &mut [bool]) {
        let st = &self.st;
        if st.verdict.is_final() || !st.started {
            return;
        }
        let p = &*self.program;
        for &name in branch {
            let Some(base) = p.row_base(name) else {
                continue;
            };
            for idx in st.active_lo..st.active_hi {
                let class = p.act_class[base + idx];
                let effective = !matches!(
                    (cell_state(st.cell[idx]), class),
                    (_, CLASS_NONE)
                        | (S_IDLE | S_ERROR, _)
                        | (S_WAITING_OTHER | S_DONE, CLASS_CONCURRENT)
                );
                if effective {
                    live[base + idx] = true;
                }
            }
        }
    }

    /// Like [`Monitor::observe`] for an event whose action-table row the
    /// caller has already resolved: `base` must be
    /// `self.program().action_row(event.name)`. Routed dispatch (the
    /// engine's inverted index) uses this to skip the per-monitor
    /// projection lookup the index has already performed — verdicts,
    /// diagnostics and `ops` are identical to [`Monitor::observe`].
    /// Forced inline so the untimed step lands inside the caller's batch
    /// loop (timed programs still dispatch out of line to `timed_at`).
    #[inline(always)]
    pub fn observe_routed(&mut self, event: TimedEvent, base: u32) -> Verdict {
        let Self { program, st } = self;
        debug_assert_eq!(program.row_base(event.name), Some(base as usize));
        if st.verdict.is_final() {
            return st.verdict;
        }
        match program.kind {
            ProgramKind::Antecedent { repeated } => {
                st.antecedent_at(program, repeated, event, base as usize)
            }
            ProgramKind::Timed { premise_len, bound } => {
                st.timed_at(program, premise_len as usize, bound, event, base as usize)
            }
        }
    }
}

impl Monitor for CompiledMonitor {
    #[inline]
    fn observe(&mut self, event: TimedEvent) -> Verdict {
        let Self { program, st } = self;
        match program.kind {
            ProgramKind::Antecedent { repeated } => st.observe_antecedent(program, repeated, event),
            ProgramKind::Timed { premise_len, bound } => {
                st.observe_timed(program, premise_len as usize, bound, event)
            }
        }
    }

    fn advance_time(&mut self, now: SimTime) -> Verdict {
        let Self { program, st } = self;
        match program.kind {
            // Untimed monitors ignore time, at zero cost (trait default).
            ProgramKind::Antecedent { .. } => st.verdict,
            ProgramKind::Timed { premise_len, bound } => {
                st.advance_time_timed(program, premise_len as usize, bound, now)
            }
        }
    }

    fn finish(&mut self, end_time: SimTime) -> Verdict {
        let Self { program, st } = self;
        match program.kind {
            // Pure safety: the verdict is whatever has been latched.
            ProgramKind::Antecedent { .. } => st.verdict,
            ProgramKind::Timed { premise_len, bound } => {
                if st.verdict.is_final() {
                    return st.verdict;
                }
                if let Some(deadline) = st.open_deadline(program, premise_len as usize, bound) {
                    if end_time > deadline {
                        st.miss_deadline(
                            program,
                            premise_len as usize,
                            bound,
                            ViolationKind::DeadlineExpiredAtEnd,
                            deadline,
                            None,
                            end_time,
                            ExpectedFrom::Current,
                        );
                    }
                }
                st.verdict
            }
        }
    }

    fn verdict(&self) -> Verdict {
        self.st.verdict
    }

    fn alphabet(&self) -> &NameSet {
        &self.program.alphabet
    }

    fn expected(&self) -> NameSet {
        match self.program.kind {
            ProgramKind::Antecedent { .. } if self.st.verdict == Verdict::Satisfied => {
                // Passive: everything in α is acceptable.
                self.program.alphabet.clone()
            }
            _ => self.st.ordering_expected(&self.program),
        }
    }

    fn violation(&self) -> Option<&Violation> {
        self.st.violation.as_deref()
    }

    fn deadline(&self) -> Option<SimTime> {
        match self.program.kind {
            ProgramKind::Antecedent { .. } => None,
            ProgramKind::Timed { premise_len, bound } => {
                if self.st.verdict.is_final() {
                    None
                } else {
                    self.st
                        .hard_deadline(&self.program, premise_len as usize, bound)
                }
            }
        }
    }

    fn reset(&mut self) {
        let Self { program, st } = self;
        st.restart(program);
        st.verdict = Verdict::PresumablySatisfied;
        st.violation = None;
        st.episodes = 0;
        st.fired = 0;
        st.last_consumed = None;
        st.episode_start = None;
        st.response_done_at = None;
        if let Some(rec) = st.recorder.as_deref_mut() {
            rec.clear();
        }
    }

    fn ops(&self) -> u64 {
        self.st.ops
    }

    fn state_bits(&self) -> u64 {
        self.program.state_bits
    }

    fn set_explain(&mut self, capacity: usize) {
        self.st.recorder = if capacity == 0 {
            None
        } else {
            Some(Box::new(FlightRecorder::new(capacity)))
        };
    }

    fn witness(&self) -> Option<Witness> {
        let raw = self.st.recorder.as_deref().map(FlightRecorder::snapshot)?;
        if self.st.attribute {
            return Some(raw);
        }
        Some(crate::witness::reattribute(self, raw, |m, capacity| {
            m.st.attribute = true;
            m.set_explain(capacity);
        }))
    }
}

/// One synchronous step of a cell on a name of class `class` — the Fig. 5
/// transition table over dense integers, with the interpreter's exact
/// `ops` accounting accumulated into the caller's register. `cell` is the
/// cell's packed `state | cpt << 32` word in the arena; `range` the
/// matching packed `min | max << 32` action-table bounds.
#[inline(always)]
fn step_cell(class: u8, range: u64, cell: &mut u64, op: FragmentOp, ops: &mut u64) -> RangeOutput {
    *ops += class_cost(class);
    if class == CLASS_NONE {
        return RangeOutput::Progress;
    }
    *ops += 1; // state dispatch
               // Failure leaves the counter bits untouched: only the state half flips
               // to `S_ERROR`, mirroring the interpreter's stale-counter behaviour.
    let fail = |cell: &mut u64, ops: &mut u64, kind: ViolationKind| {
        *ops += 1; // state write
        set_cell_state(cell, S_ERROR);
        RangeOutput::Err(kind)
    };
    match cell_state(*cell) {
        S_IDLE | S_ERROR => RangeOutput::Progress,
        S_WAITING => match class {
            CLASS_OWN => {
                *ops += 2; // counter init + state write
                *cell = cell_word(S_COUNTING, 1);
                RangeOutput::Progress
            }
            CLASS_CONCURRENT => {
                *ops += 1;
                set_cell_state(cell, S_WAITING_OTHER);
                RangeOutput::Progress
            }
            CLASS_ACCEPT => fail(cell, ops, ViolationKind::PrematureStop),
            CLASS_AFTER => fail(cell, ops, ViolationKind::AfterName),
            _ => fail(cell, ops, ViolationKind::BeforeName),
        },
        S_WAITING_OTHER => match class {
            CLASS_OWN => {
                *ops += 2;
                *cell = cell_word(S_COUNTING, 1);
                RangeOutput::Progress
            }
            CLASS_CONCURRENT => RangeOutput::Progress, // self-loop
            CLASS_ACCEPT => {
                *ops += 1; // semantics test
                match op {
                    FragmentOp::Any => {
                        *ops += 1;
                        set_cell_state(cell, S_IDLE);
                        RangeOutput::Nok
                    }
                    FragmentOp::All => fail(cell, ops, ViolationKind::MissingRange),
                }
            }
            CLASS_AFTER => fail(cell, ops, ViolationKind::AfterName),
            _ => fail(cell, ops, ViolationKind::BeforeName),
        },
        S_COUNTING => match class {
            CLASS_OWN => {
                *ops += 1; // counter compare
                if cell_cpt(*cell) < range_max(range) {
                    *ops += 1; // counter increment
                    *cell += CELL_CPT_ONE;
                    RangeOutput::Progress
                } else {
                    fail(cell, ops, ViolationKind::TooMany)
                }
            }
            CLASS_CONCURRENT => {
                *ops += 1; // counter compare
                if cell_cpt(*cell) >= range_min(range) {
                    *ops += 1;
                    set_cell_state(cell, S_DONE);
                    RangeOutput::Progress
                } else {
                    fail(cell, ops, ViolationKind::PrematureInterrupt)
                }
            }
            CLASS_ACCEPT => {
                *ops += 1; // counter compare
                if cell_cpt(*cell) >= range_min(range) {
                    *ops += 1; // state write
                    set_cell_state(cell, S_IDLE);
                    RangeOutput::Ok
                } else {
                    fail(cell, ops, ViolationKind::PrematureStop)
                }
            }
            CLASS_AFTER => fail(cell, ops, ViolationKind::AfterName),
            _ => fail(cell, ops, ViolationKind::BeforeName),
        },
        _ => match class {
            // `s4`: block complete, sibling active.
            CLASS_OWN => fail(cell, ops, ViolationKind::BlockSplit),
            CLASS_CONCURRENT => RangeOutput::Progress, // self-loop
            CLASS_ACCEPT => {
                *ops += 1; // state write
                set_cell_state(cell, S_IDLE);
                RangeOutput::Ok
            }
            CLASS_AFTER => fail(cell, ops, ViolationKind::AfterName),
            _ => fail(cell, ops, ViolationKind::BeforeName),
        },
    }
}

/// The window step over the already-sliced action row and cell words —
/// the inner loop of [`MonState::step_window`]. `DIAG` compiles the
/// pre-event snapshot stores in or out (the packed word is already in a
/// register, so the snapshot costs one fused store, not a second pass).
#[inline(always)]
fn step_cells_dyn<const DIAG: bool>(
    classes: &[u8],
    ranges: &[u64],
    cells: &mut [u64],
    prev: &mut [u64],
    op: FragmentOp,
    ops: &mut u64,
) -> (bool, Option<(ViolationKind, usize)>) {
    let mut completed = false;
    let mut error: Option<(ViolationKind, usize)> = None;
    let action = classes.iter().zip(ranges);
    if DIAG {
        for (idx, (((&class, &range), cell), prev_w)) in
            action.zip(cells).zip(prev.iter_mut()).enumerate()
        {
            *prev_w = *cell;
            match step_cell(class, range, cell, op, ops) {
                RangeOutput::Progress => {}
                RangeOutput::Ok | RangeOutput::Nok => completed = true,
                RangeOutput::Err(kind) => {
                    if error.is_none() {
                        error = Some((kind, idx));
                    }
                }
            }
        }
    } else {
        for (idx, ((&class, &range), cell)) in action.zip(cells).enumerate() {
            match step_cell(class, range, cell, op, ops) {
                RangeOutput::Progress => {}
                RangeOutput::Ok | RangeOutput::Nok => completed = true,
                RangeOutput::Err(kind) => {
                    if error.is_none() {
                        error = Some((kind, idx));
                    }
                }
            }
        }
    }
    (completed, error)
}

impl MonState {
    /// Make fragment `f` the active one, refreshing the cached bounds.
    #[inline]
    fn set_active(&mut self, p: &CompiledProgram, f: usize) {
        self.active = f;
        let (lo, hi) = p.frag_range(f);
        self.active_lo = lo;
        self.active_hi = hi;
        self.active_op = p.frag_op[f];
    }

    /// Activate: start the first fragment (no coinciding event).
    fn start(&mut self, p: &CompiledProgram) {
        debug_assert!(!self.started, "already started");
        self.set_active(p, 0);
        self.start_frag(p, 0);
        self.started = true;
    }

    /// Reset every cell and re-activate (the interpreter's `restart`).
    #[inline]
    fn restart(&mut self, p: &CompiledProgram) {
        self.cell.fill(cell_word(S_IDLE, 0));
        self.started = false;
        self.start(p);
    }

    /// Re-arm after a *completed* linear episode. Every cell is already
    /// back in `s0` — a fragment only completes once each of its cells
    /// returned there via `ok`/`nok` — so unlike [`MonState::restart`]
    /// (which may interrupt an episode mid-flight) nothing needs wiping;
    /// stale counters are invisible, `s3`/`s4` are entered with a fresh
    /// `cpt` and no other state reads it.
    #[inline]
    fn rearm(&mut self, p: &CompiledProgram) {
        debug_assert!(
            self.cell.iter().all(|&w| cell_state(w) == S_IDLE),
            "linear episode completed with a non-idle cell"
        );
        self.started = false;
        self.start(p);
    }

    /// `start` all cells of fragment `f`: `s0 → s1`, one state write each
    /// (the ops are batch-added: the sum is what parity requires).
    #[inline]
    fn start_frag(&mut self, p: &CompiledProgram, f: usize) {
        let (lo, hi) = p.frag_range(f);
        self.ops += (hi - lo) as u64; // one state write per cell
        for cell in &mut self.cell[lo..hi] {
            debug_assert_eq!(cell_state(*cell), S_IDLE, "start from non-idle state");
            set_cell_state(cell, S_WAITING);
        }
    }

    /// `start` fragment `f` coinciding with `name` (handover): the owning
    /// cell to `s3`, its siblings to `s2`.
    #[inline(always)]
    fn start_frag_with(&mut self, p: &CompiledProgram, f: usize, name: Name) {
        let (lo, hi) = p.frag_range(f);
        self.ops += 2 * (hi - lo) as u64; // classification + state write per cell
        for (spec, cell) in p.cells[lo..hi].iter().zip(&mut self.cell[lo..hi]) {
            debug_assert_eq!(cell_state(*cell), S_IDLE, "start from non-idle state");
            if spec.name == name {
                *cell = cell_word(S_COUNTING, 1);
            } else {
                set_cell_state(cell, S_WAITING_OTHER);
            }
        }
    }

    /// Step the active fragment on the event's action-table row and
    /// aggregate — the compiled form of the fragment + ordering step. This
    /// is the per-event hot loop: the pre-event diagnostic snapshot is one
    /// small `memcpy` into the fixed buffer, the zip over
    /// `(spec, class, cell)` runs without bounds checks, and the `ops`
    /// accounting accumulates in the caller's register.
    #[inline(always)]
    fn step_ordering(
        &mut self,
        p: &CompiledProgram,
        base: usize,
        event: TimedEvent,
        ops: &mut u64,
    ) -> OrderingStep {
        debug_assert!(self.started, "step before start");
        let name = event.name;
        let from = self.active;
        let (lo, hi) = (self.active_lo, self.active_hi);
        // Attributing diffs against the same pre-event snapshot the
        // diagnostics use, so attribute mode forces it on; live explain
        // mode records `(time, event)` only and needs no snapshot.
        //
        // Monomorphized: when neither is on, the snapshot arrays are
        // provably never read again, so the common path carries no `prev`
        // slices or stores at all — two fewer write streams per event.
        let (completed, error) = if self.diagnostics || self.attribute {
            self.prev_active = from;
            self.step_window::<true>(p, base, ops)
        } else {
            self.step_window::<false>(p, base, ops)
        };
        let step = if let Some((kind, range)) = error {
            OrderingStep::Error {
                kind,
                fragment: from,
                range,
            }
        } else if completed {
            let cyclic = matches!(p.kind, ProgramKind::Timed { .. });
            if !cyclic && from + 1 == p.n_frags() {
                self.started = false;
                OrderingStep::Complete
            } else {
                let to = (from + 1) % p.n_frags();
                self.start_frag_with(p, to, name);
                self.set_active(p, to);
                OrderingStep::Handover { from, to }
            }
        } else {
            OrderingStep::Progress
        };
        if self.recorder.is_some() {
            self.record_step(event, lo, hi);
        }
        step
    }

    /// Step every cell of the active window on the already-resolved
    /// action row — the inner loop of [`MonState::step_ordering`].
    /// Returns whether any range completed, and the first rejection.
    /// `DIAG` compiles the pre-event snapshot stores in or out; the
    /// snapshot is only ever read under diagnostics/attribute, so the
    /// `false` instantiation is observationally identical.
    #[inline(always)]
    fn step_window<const DIAG: bool>(
        &mut self,
        p: &CompiledProgram,
        base: usize,
        ops: &mut u64,
    ) -> (bool, Option<(ViolationKind, usize)>) {
        let (lo, hi) = (self.active_lo, self.active_hi);
        let op = self.active_op;
        let classes = &p.act_class[base + lo..base + hi];
        let ranges = &p.act_range[base + lo..base + hi];
        let cells = &mut self.cell[lo..hi];
        let prev = &mut self.prev[..hi - lo];
        step_cells_dyn::<DIAG>(classes, ranges, cells, prev, op, ops)
    }

    /// Record the step just taken. Live explain mode appends the bare
    /// `(time, event)` pair — one ring store, attribution comes later
    /// (see [`CompiledMonitor::witness`]). Kept out of line so the
    /// explain-off hot loop carries only the `recorder.is_some()` test.
    /// Touches no `ops` accounting.
    #[inline(never)]
    fn record_step(&mut self, event: TimedEvent, lo: usize, hi: usize) {
        if self.attribute {
            self.record_attributed(event, lo, hi);
        } else if let Some(rec) = self.recorder.as_deref_mut() {
            rec.record_event(event);
        }
    }

    /// Attribute-mode recording — only the fresh clones
    /// [`CompiledMonitor::witness`] replays a raw chain through run it,
    /// never a live session. Pushes the step's attribution: the first cell
    /// (arena order, within the fragment that was active at entry) whose
    /// `(state, counter)` pair differs from the pre-event snapshot — for a
    /// single-fragment cyclic handover that diff sees the restarted
    /// window, which is exactly what the interpreter's post-step diff
    /// observes — or the window's first cell with an identity transition
    /// when nothing moved.
    #[cold]
    fn record_attributed(&mut self, event: TimedEvent, lo: usize, hi: usize) {
        let (cell, from, to) = self.witness_rediff(lo, hi);
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.record(WitnessStep {
                time: event.time,
                event: event.name,
                cell,
                from,
                to,
            });
        }
    }

    /// The witness attribution of the step just taken: diff the pre-event
    /// snapshot against the *current* window states.
    fn witness_rediff(&self, lo: usize, hi: usize) -> (u32, u8, u8) {
        for k in 0..hi - lo {
            let (pre, post) = (self.prev[k], self.cell[lo + k]);
            if pre != post {
                return ((lo + k) as u32, cell_state(pre), cell_state(post));
            }
        }
        let state = cell_state(self.prev[0]);
        (lo as u32, state, state)
    }

    /// Whether fragment `f` (with the given cell states and counters)
    /// could terminate now — `FragmentRecognizer::can_complete` over the
    /// arena.
    fn can_complete_over(&self, p: &CompiledProgram, f: usize, cells: &[u64]) -> bool {
        let (lo, hi) = p.frag_range(f);
        let mut any_complete = false;
        for (spec, &word) in p.cells[lo..hi].iter().zip(cells) {
            let (state, cpt) = (cell_state(word), cell_cpt(word));
            match state {
                S_COUNTING if cpt >= spec.min => any_complete = true,
                S_DONE => any_complete = true,
                S_COUNTING | S_ERROR => return false,
                _ => {
                    // Never participated: fatal only under `∧`.
                    if p.frag_op[f] == FragmentOp::All {
                        return false;
                    }
                }
            }
        }
        any_complete
    }

    fn can_complete(&self, p: &CompiledProgram, f: usize) -> bool {
        let (lo, hi) = p.frag_range(f);
        self.can_complete_over(p, f, &self.cell[lo..hi])
    }

    /// Whether fragment `f` could still consume another event without
    /// erroring — `FragmentRecognizer::can_extend` over the arena.
    fn can_extend(&self, p: &CompiledProgram, f: usize) -> bool {
        let (lo, hi) = p.frag_range(f);
        p.cells[lo..hi]
            .iter()
            .zip(&self.cell[lo..hi])
            .any(|(spec, &word)| match cell_state(word) {
                S_WAITING | S_WAITING_OTHER => true,
                S_COUNTING => cell_cpt(word) < spec.max,
                _ => false,
            })
    }

    /// Names acceptable as the next event of fragment `f`, computed over
    /// explicit state/counter slices — `FragmentRecognizer::expected`.
    fn frag_expected(&self, p: &CompiledProgram, f: usize, cells: &[u64]) -> NameSet {
        let (lo, hi) = p.frag_range(f);
        let mut out = NameSet::new();
        for (spec, &word) in p.cells[lo..hi].iter().zip(cells) {
            let can_more = match cell_state(word) {
                S_WAITING | S_WAITING_OTHER => true,
                S_COUNTING => cell_cpt(word) < spec.max,
                _ => false,
            };
            if can_more {
                out.insert(spec.name);
            }
        }
        if self.can_complete_over(p, f, cells) {
            out.union_with(&p.frag_accept[f]);
        }
        out
    }

    /// The ordering-level expected set over the *current* states.
    fn ordering_expected(&self, p: &CompiledProgram) -> NameSet {
        if self.started {
            let (lo, hi) = p.frag_range(self.active);
            self.frag_expected(p, self.active, &self.cell[lo..hi])
        } else {
            NameSet::new()
        }
    }

    /// Witness hook for an in-alphabet event that found the deadline
    /// already expired *before* stepping any cell. Live explain mode
    /// records the bare `(time, event)` pair; attribute mode attributes it
    /// to the active fragment's first cell with an unchanged transition.
    fn record_stall(&mut self, event: TimedEvent) {
        if !self.attribute {
            if let Some(rec) = self.recorder.as_deref_mut() {
                rec.record_event(event);
            }
            return;
        }
        let cell = self.active_lo;
        let state = cell_state(self.cell[cell]);
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.record(WitnessStep {
                time: event.time,
                event: event.name,
                cell: cell as u32,
                from: state,
                to: state,
            });
        }
    }

    /// The expected set the interpreter would have snapshot *before* the
    /// current event, derived lazily from the pre-event snapshot.
    fn expected_before(&self, p: &CompiledProgram, from: ExpectedFrom) -> NameSet {
        if !self.diagnostics {
            return NameSet::new();
        }
        match from {
            ExpectedFrom::Current => self.ordering_expected(p),
            ExpectedFrom::Snapshot => self.frag_expected(p, self.prev_active, &self.prev),
        }
    }

    #[inline]
    fn observe_antecedent(
        &mut self,
        p: &CompiledProgram,
        repeated: bool,
        event: TimedEvent,
    ) -> Verdict {
        if self.verdict.is_final() {
            return self.verdict;
        }
        let Some(base) = p.row_base(event.name) else {
            self.ops += 1; // alphabet projection test
            return self.verdict;
        };
        self.antecedent_at(p, repeated, event, base)
    }

    /// [`MonState::observe_antecedent`] past the projection lookup; the
    /// caller guarantees the event is in the alphabet and `base` is its
    /// action-table row. The projection `ops` is still charged — the
    /// interpreter performs (and counts) that test unconditionally.
    ///
    /// Forced inline: this is the per-event body of routed dispatch, and
    /// as an out-of-line call it costs a full spill/reload of the batch
    /// loop's live state per event. The allocating violation arm lives in
    /// [`MonState::antecedent_violation`] so the inlined shell stays
    /// branch-light.
    #[inline(always)]
    fn antecedent_at(
        &mut self,
        p: &CompiledProgram,
        repeated: bool,
        event: TimedEvent,
        base: usize,
    ) -> Verdict {
        let mut ops = 1u64; // alphabet projection test
        let step = self.step_ordering(p, base, event, &mut ops);
        self.ops += ops;
        match step {
            OrderingStep::Progress | OrderingStep::Handover { .. } => {
                self.verdict = Verdict::PresumablySatisfied;
            }
            OrderingStep::Complete => {
                self.episodes += 1;
                self.ops += 1; // repeated-flag test
                if repeated {
                    self.rearm(p);
                    self.verdict = Verdict::PresumablySatisfied;
                } else {
                    self.verdict = Verdict::Satisfied;
                }
            }
            OrderingStep::Error {
                kind,
                fragment,
                range,
            } => self.antecedent_violation(p, event, kind, fragment, range),
        }
        self.verdict
    }

    /// Latch the violation for a rejected antecedent step. Kept out of
    /// line (and cold) so [`MonState::antecedent_at`]'s inlined shell
    /// carries no allocation or formatting code: this arm runs at most
    /// once per monitor lifetime.
    #[cold]
    #[inline(never)]
    fn antecedent_violation(
        &mut self,
        p: &CompiledProgram,
        event: TimedEvent,
        kind: ViolationKind,
        fragment: usize,
        range: usize,
    ) {
        self.verdict = Verdict::Violated;
        self.violation = Some(Box::new(Violation {
            kind,
            event: Some(event),
            time: event.time,
            expected: self.expected_before(p, ExpectedFrom::Snapshot),
            detail: format!(
                "antecedent episode {}: fragment {}/{}, range {} rejected",
                self.episodes + 1,
                fragment + 1,
                p.n_frags(),
                range + 1,
            ),
            obligation: None,
        }));
    }

    /// The latest possible end of the current `P` observation, if `P` is
    /// currently complete.
    fn premise_end(&self, p: &CompiledProgram, premise_len: usize) -> Option<SimTime> {
        if let Some(frozen) = self.episode_start {
            return Some(frozen);
        }
        if self.active + 1 == premise_len && self.can_complete(p, self.active) {
            self.last_consumed
        } else {
            None
        }
    }

    /// The obligation's deadline, movable or not.
    fn open_deadline(
        &self,
        p: &CompiledProgram,
        premise_len: usize,
        bound: SimTime,
    ) -> Option<SimTime> {
        if self.response_done_at.is_some() {
            return None;
        }
        self.premise_end(p, premise_len)?.checked_add(bound)
    }

    /// The deadline, only once it can no longer move.
    fn hard_deadline(
        &self,
        p: &CompiledProgram,
        premise_len: usize,
        bound: SimTime,
    ) -> Option<SimTime> {
        if self.response_done_at.is_some() {
            return None;
        }
        if let Some(frozen) = self.episode_start {
            return frozen.checked_add(bound);
        }
        if self.active + 1 == premise_len
            && self.can_complete(p, self.active)
            && !self.can_extend(p, self.active)
        {
            return self.last_consumed?.checked_add(bound);
        }
        None
    }

    /// The deadline cell whose obligation was still open when the budget
    /// expired: once inside `Q`, the first cell (arena order) of the
    /// active fragment that has not reached its range minimum; when the
    /// active fragment is already completable, the next fragment's first
    /// cell (the chain still has to hand over); when `P` was complete but
    /// `Q` had not begun, the first cell of `Q`'s first fragment. The
    /// interpreter applies the same selection over its recognizer tree.
    fn pick_obligation(&self, p: &CompiledProgram, premise_len: usize) -> Obligation {
        let spec_at = |i: usize| {
            let s = p.cells[i];
            Obligation {
                name: s.name,
                min: s.min,
                max: s.max,
            }
        };
        if self.active >= premise_len {
            let (lo, hi) = p.frag_range(self.active);
            if !self.can_complete(p, self.active) {
                for i in 0..hi - lo {
                    let word = self.cell[lo + i];
                    let (state, cpt) = (cell_state(word), cell_cpt(word));
                    let spec = p.cells[lo + i];
                    let satisfied = state == S_DONE || (state == S_COUNTING && cpt >= spec.min);
                    if !satisfied {
                        return spec_at(lo + i);
                    }
                }
            } else if self.active + 1 < p.n_frags() {
                return spec_at(p.frag_range(self.active + 1).0);
            }
            spec_at(lo)
        } else {
            spec_at(p.frag_range(premise_len).0)
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn miss_deadline(
        &mut self,
        p: &CompiledProgram,
        premise_len: usize,
        bound: SimTime,
        kind: ViolationKind,
        deadline: SimTime,
        event: Option<TimedEvent>,
        now: SimTime,
        from: ExpectedFrom,
    ) {
        self.verdict = Verdict::Violated;
        self.violation = Some(Box::new(Violation {
            kind,
            event,
            time: now,
            expected: self.expected_before(p, from),
            detail: format!(
                "episode {}: Q unfinished at {now}, deadline was {deadline} \
                 (P ended {}, budget {})",
                self.episodes + 1,
                deadline.saturating_sub(bound),
                bound,
            ),
            obligation: Some(self.pick_obligation(p, premise_len)),
        }));
    }

    #[inline]
    fn observe_timed(
        &mut self,
        p: &CompiledProgram,
        premise_len: usize,
        bound: SimTime,
        event: TimedEvent,
    ) -> Verdict {
        if self.verdict.is_final() {
            return self.verdict;
        }
        let Some(base) = p.row_base(event.name) else {
            self.ops += 1; // alphabet projection test
                           // Even an unrelated event advances the clock.
            return self.advance_time_timed(p, premise_len, bound, event.time);
        };
        self.timed_at(p, premise_len, bound, event, base)
    }

    /// [`MonState::observe_timed`] past the projection lookup (see
    /// [`MonState::antecedent_at`] for the contract). Deliberately out of
    /// line: the timed step carries deadline bookkeeping the untimed hot
    /// loop should not pay icache for now that `observe_routed` inlines.
    #[inline(never)]
    fn timed_at(
        &mut self,
        p: &CompiledProgram,
        premise_len: usize,
        bound: SimTime,
        event: TimedEvent,
        base: usize,
    ) -> Verdict {
        self.ops += 1; // alphabet projection test
        self.ops += 1; // deadline compare
        if let Some(deadline) = self.hard_deadline(p, premise_len, bound) {
            if event.time > deadline {
                self.record_stall(event);
                self.miss_deadline(
                    p,
                    premise_len,
                    bound,
                    ViolationKind::DeadlineMiss,
                    deadline,
                    Some(event),
                    event.time,
                    ExpectedFrom::Current,
                );
                return self.verdict;
            }
        }
        let mut ops = 0u64;
        let step = self.step_ordering(p, base, event, &mut ops);
        self.ops += ops;
        match step {
            OrderingStep::Progress => {
                self.last_consumed = Some(event.time);
            }
            OrderingStep::Handover { to, .. } => {
                self.ops += 2; // boundary compares
                if to == premise_len {
                    // Q begins on this event: freeze the end of P.
                    self.episode_start = self.last_consumed;
                    debug_assert!(
                        self.episode_start.is_some(),
                        "handover into Q with no P event consumed"
                    );
                } else if to == 0 {
                    // This event starts the next episode's P.
                    self.episodes += 1;
                    self.episode_start = None;
                    self.response_done_at = None;
                }
                self.last_consumed = Some(event.time);
            }
            OrderingStep::Complete => unreachable!("cyclic recognizers never complete"),
            OrderingStep::Error {
                kind,
                fragment,
                range,
            } => {
                self.verdict = Verdict::Violated;
                self.violation = Some(Box::new(Violation {
                    kind,
                    event: Some(event),
                    time: event.time,
                    expected: self.expected_before(p, ExpectedFrom::Snapshot),
                    detail: format!(
                        "timed-implication episode {}: fragment {}/{} ({}), range {} rejected",
                        self.episodes + 1,
                        fragment + 1,
                        p.n_frags(),
                        if fragment < premise_len {
                            "in P"
                        } else {
                            "in Q"
                        },
                        range + 1,
                    ),
                    obligation: None,
                }));
                return self.verdict;
            }
        }
        // Earliest completion of Q ends the episode's obligation.
        self.ops += 2; // index compare + completion test
        let last = p.n_frags() - 1;
        if self.active == last
            && self.episode_start.is_some()
            && self.response_done_at.is_none()
            && self.can_complete(p, self.active)
        {
            self.response_done_at = Some(event.time);
            let start = self.episode_start.expect("episode started");
            self.ops += 1; // budget compare
            if event.time.saturating_sub(start) > bound {
                let deadline = start.checked_add(bound).unwrap_or(SimTime::MAX);
                self.miss_deadline(
                    p,
                    premise_len,
                    bound,
                    ViolationKind::DeadlineMiss,
                    deadline,
                    Some(event),
                    event.time,
                    ExpectedFrom::Snapshot,
                );
                return self.verdict;
            }
            self.fired += 1;
        }
        self.verdict = if self.open_deadline(p, premise_len, bound).is_some() {
            Verdict::Pending
        } else {
            Verdict::PresumablySatisfied
        };
        self.verdict
    }

    fn advance_time_timed(
        &mut self,
        p: &CompiledProgram,
        premise_len: usize,
        bound: SimTime,
        now: SimTime,
    ) -> Verdict {
        if self.verdict.is_final() {
            return self.verdict;
        }
        self.ops += 1; // deadline compare
        if let Some(deadline) = self.hard_deadline(p, premise_len, bound) {
            if now > deadline {
                self.miss_deadline(
                    p,
                    premise_len,
                    bound,
                    ViolationKind::DeadlineMiss,
                    deadline,
                    None,
                    now,
                    ExpectedFrom::Current,
                );
            }
        }
        self.verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{build_monitor, PropertyMonitor};
    use crate::parse::parse_property;
    use lomon_trace::Trace;

    /// Build both backends for `text`, interning `extra` names first so the
    /// traces can carry out-of-alphabet events.
    fn both(text: &str, extra: &[&str]) -> (Vocabulary, PropertyMonitor, CompiledMonitor) {
        let mut voc = Vocabulary::new();
        for name in extra {
            voc.input(name);
        }
        let property = parse_property(text, &mut voc).expect("parses");
        let interp = build_monitor(property.clone(), &voc).expect("well-formed");
        let compiled = compile_monitor(property, &voc).expect("well-formed");
        (voc, interp, compiled)
    }

    fn ev(voc: &Vocabulary, name: &str, ns: u64) -> TimedEvent {
        TimedEvent::new(voc.lookup(name).expect("interned"), SimTime::from_ns(ns))
    }

    fn members(set: &NameSet) -> Vec<Name> {
        set.iter().collect()
    }

    /// Feed both backends the same events in lockstep and compare verdict,
    /// ops, deadline and expected set after every step, then at finish the
    /// full violation diagnostics.
    fn lockstep(text: &str, extra: &[&str], events: &[(&str, u64)], end_ns: u64) {
        let (voc, mut interp, mut compiled) = both(text, extra);
        assert_eq!(interp.state_bits(), compiled.state_bits(), "{text}");
        assert_eq!(interp.ops(), compiled.ops(), "{text}: ops at construction");
        for &(name, ns) in events {
            let event = ev(&voc, name, ns);
            let vi = interp.observe(event);
            let vc = compiled.observe(event);
            assert_eq!(vi, vc, "{text}: verdict after `{name}` at {ns}ns");
            assert_eq!(
                interp.ops(),
                compiled.ops(),
                "{text}: ops after `{name}` at {ns}ns"
            );
            assert_eq!(
                interp.deadline(),
                compiled.deadline(),
                "{text}: deadline after `{name}` at {ns}ns"
            );
            assert_eq!(
                members(&interp.expected()),
                members(&compiled.expected()),
                "{text}: expected after `{name}` at {ns}ns"
            );
        }
        let end = SimTime::from_ns(end_ns);
        assert_eq!(interp.finish(end), compiled.finish(end), "{text}: finish");
        assert_eq!(interp.ops(), compiled.ops(), "{text}: ops at finish");
        match (interp.violation(), compiled.violation()) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.kind, b.kind, "{text}");
                assert_eq!(a.event, b.event, "{text}");
                assert_eq!(a.time, b.time, "{text}");
                assert_eq!(a.detail, b.detail, "{text}");
                assert_eq!(members(&a.expected), members(&b.expected), "{text}");
            }
            (a, b) => panic!("{text}: one backend violated: interp {a:?} vs compiled {b:?}"),
        }
    }

    #[test]
    fn antecedent_satisfied_matches() {
        lockstep(
            "all{set_imgAddr, set_glAddr, set_glSize} << start once",
            &["noise"],
            &[
                ("set_glAddr", 10),
                ("noise", 15),
                ("set_imgAddr", 20),
                ("set_glSize", 30),
                ("start", 40),
                ("start", 50), // passive after the one-shot episode
            ],
            100,
        );
    }

    #[test]
    fn antecedent_violations_match() {
        // Premature stop: the trigger arrives first.
        lockstep("all{a, b} << start once", &[], &[("start", 10)], 20);
        // TooMany: the [1,1] range re-occurs.
        lockstep("all{a, b} << start once", &[], &[("a", 10), ("a", 20)], 30);
        // MissingRange via the ∧-fragment.
        lockstep("all{a, b} < c << i once", &[], &[("a", 10), ("c", 20)], 30);
    }

    #[test]
    fn repeated_episodes_match() {
        lockstep(
            "n[2,3] << i repeated",
            &[],
            &[
                ("n", 10),
                ("n", 20),
                ("i", 30),
                ("n", 40),
                ("n", 50),
                ("n", 60),
                ("i", 70),
                // Third episode violates: only one n before i.
                ("n", 80),
                ("i", 90),
            ],
            100,
        );
    }

    #[test]
    fn any_fragment_and_handover_match() {
        lockstep(
            "all{a, b} < any{c[2,8], d} < e << i once",
            &["noise"],
            &[
                ("b", 10),
                ("a", 20),
                ("d", 30), // handover into the ∨ fragment via d
                ("c", 40),
                ("c", 50),
                ("noise", 55),
                ("e", 60), // c-block + d both fine under ∨
                ("i", 70),
            ],
            100,
        );
        // The nok path: c never participates.
        lockstep(
            "all{a} < any{c[2,8], d} << i once",
            &[],
            &[("a", 10), ("d", 20), ("i", 30)],
            40,
        );
    }

    #[test]
    fn timed_nominal_and_miss_match() {
        let text = "start => out:read[2,4] < out:irq within 100 ns";
        lockstep(
            text,
            &["noise"],
            &[
                ("start", 10),
                ("read", 20),
                ("noise", 25),
                ("read", 30),
                ("irq", 50),
            ],
            200,
        );
        // Deadline miss revealed by the response completing too late.
        lockstep(
            text,
            &[],
            &[("start", 10), ("read", 20), ("read", 30), ("irq", 200)],
            300,
        );
        // Deadline miss revealed by an out-of-alphabet event's timestamp.
        lockstep(text, &["noise"], &[("start", 10), ("noise", 300)], 400);
        // Deadline expired at end of observation.
        lockstep(text, &[], &[("start", 10), ("read", 20)], 500);
        // Pending at end of observation (within budget).
        lockstep(text, &[], &[("start", 10), ("read", 20)], 90);
        // Step errors inside the cyclic chain.
        lockstep(text, &[], &[("read", 10)], 20);
        lockstep(text, &[], &[("start", 10), ("read", 20), ("irq", 30)], 40);
    }

    #[test]
    fn timed_repeated_episodes_match() {
        let text = "start => out:irq within 100 ns";
        lockstep(
            text,
            &[],
            &[
                ("start", 10),
                ("irq", 50),
                ("start", 1000),
                ("irq", 1090),
                ("start", 2000),
                ("irq", 2500), // second budget blown
            ],
            3000,
        );
    }

    #[test]
    fn advance_time_matches() {
        let (voc, mut interp, mut compiled) = both("start => out:irq within 100 ns", &[]);
        let event = ev(&voc, "start", 10);
        interp.observe(event);
        compiled.observe(event);
        for ns in [50, 100, 110, 111, 200] {
            let t = SimTime::from_ns(ns);
            assert_eq!(interp.advance_time(t), compiled.advance_time(t), "{ns}");
            assert_eq!(interp.ops(), compiled.ops(), "{ns}");
        }
        let (a, b) = (interp.violation().unwrap(), compiled.violation().unwrap());
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.detail, b.detail);
        assert_eq!(members(&a.expected), members(&b.expected));
    }

    #[test]
    fn reset_matches_and_reuses() {
        let (voc, mut interp, mut compiled) = both("all{a, b} << start repeated", &[]);
        for &(name, ns) in &[("a", 10), ("start", 20)] {
            interp.observe(ev(&voc, name, ns));
            compiled.observe(ev(&voc, name, ns));
        }
        assert_eq!(interp.verdict(), Verdict::Violated);
        assert_eq!(compiled.verdict(), Verdict::Violated);
        interp.reset();
        compiled.reset();
        assert_eq!(interp.ops(), compiled.ops(), "ops after reset");
        assert_eq!(compiled.verdict(), Verdict::PresumablySatisfied);
        assert!(compiled.violation().is_none());
        for &(name, ns) in &[("b", 10), ("a", 20), ("start", 30)] {
            let vi = interp.observe(ev(&voc, name, ns));
            let vc = compiled.observe(ev(&voc, name, ns));
            assert_eq!(vi, vc);
        }
        assert_eq!(compiled.episodes(), 1);
    }

    #[test]
    fn without_diagnostics_reports_empty_expected() {
        let (voc, _interp, compiled) = both("all{a, b} << start once", &[]);
        let mut compiled = compiled.without_diagnostics();
        compiled.observe(ev(&voc, "start", 10));
        assert_eq!(compiled.verdict(), Verdict::Violated);
        assert!(compiled.violation().unwrap().expected.is_empty());
    }

    #[test]
    fn run_to_end_agrees_via_trait() {
        let (voc, mut interp, mut compiled) = both("any{a[2,8], b} << i once", &[]);
        let names: Vec<Name> = ["a", "a", "a", "i"]
            .iter()
            .map(|n| voc.lookup(n).unwrap())
            .collect();
        let trace = Trace::from_names(names);
        let vi = crate::verdict::run_to_end(&mut interp, &trace);
        let vc = crate::verdict::run_to_end(&mut compiled, &trace);
        assert_eq!(vi, vc);
        assert_eq!(vi, Verdict::Satisfied);
    }

    #[test]
    fn program_shape_is_flat() {
        let mut voc = Vocabulary::new();
        let property =
            parse_property("all{a, b} < any{c[2,8], d} < e << i once", &mut voc).unwrap();
        let property = wf::validate(property, &voc).unwrap();
        let program = CompiledProgram::lower(&property);
        assert_eq!(program.fragment_count(), 3);
        assert_eq!(program.cell_count(), 5);
        // 6 alphabet names (a, b, c, d, e, i) × 5 cells.
        assert_eq!(program.act_class.len(), 6 * 5);
        assert_eq!(program.act_range.len(), 6 * 5);
        assert_eq!(program.alphabet().len(), 6);
        // Every in-alphabet (name, cell) pair is classified: with the
        // linear context layout no entry is CLASS_NONE.
        assert!(program.act_class.iter().all(|&c| c != CLASS_NONE));
    }

    #[test]
    fn compile_monitor_rejects_ill_formed() {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let prop: Property = crate::ast::Antecedent::new(
            crate::ast::LooseOrdering::new(vec![crate::ast::Fragment::singleton(
                crate::ast::Range::once(a),
            )]),
            a, // trigger inside P
            true,
        )
        .into();
        assert!(compile_monitor(prop, &voc).is_err());
    }
}
