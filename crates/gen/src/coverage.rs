//! Specification coverage — Fig. 1's "coverage improver".
//!
//! Measures how thoroughly a set of traces exercises a pattern's degrees of
//! freedom: for each range, were the boundary counts `u` and `v` hit? For
//! each `∨`-fragment, which non-empty subsets participated? For each
//! fragment, which emission orders appeared? The report drives a simple
//! coverage-directed generation loop ([`generate_until_covered`]).

use std::collections::HashSet;

use lomon_core::ast::{FragmentOp, Property};

use crate::generate::{generate, GeneratedTrace, GeneratorConfig};

/// Coverage accumulated over generated traces (fed by their recorded
/// choices).
#[derive(Debug, Clone)]
pub struct Coverage {
    /// Per fragment, per range: the set of repetition counts seen.
    counts: Vec<Vec<HashSet<u32>>>,
    /// Per fragment: participating-subset signatures seen (bitmask).
    subsets: Vec<HashSet<u64>>,
    /// Per fragment: emission orders seen (permutation signature).
    orders: Vec<HashSet<Vec<usize>>>,
    /// The pattern's fragment shapes: (op, per-range (u,v)).
    shape: Vec<(FragmentOp, Vec<(u32, u32)>)>,
}

impl Coverage {
    /// Empty coverage for a property (content fragments of `P` (+`Q`)).
    pub fn new(property: &Property) -> Self {
        let fragments: Vec<_> = match property {
            Property::Antecedent(a) => a.antecedent.fragments.clone(),
            Property::Timed(t) => t.all_fragments(),
        };
        let shape: Vec<(FragmentOp, Vec<(u32, u32)>)> = fragments
            .iter()
            .map(|f| (f.op, f.ranges.iter().map(|r| (r.min, r.max)).collect()))
            .collect();
        Coverage {
            counts: shape
                .iter()
                .map(|(_, ranges)| ranges.iter().map(|_| HashSet::new()).collect())
                .collect(),
            subsets: shape.iter().map(|_| HashSet::new()).collect(),
            orders: shape.iter().map(|_| HashSet::new()).collect(),
            shape,
        }
    }

    /// Record one generated trace's choices.
    pub fn record(&mut self, generated: &GeneratedTrace) {
        for episode in &generated.choices {
            for (fragment_ix, choices) in episode.iter().enumerate() {
                if fragment_ix >= self.shape.len() {
                    break;
                }
                let mut mask = 0u64;
                let mut order = Vec::new();
                for &(range_ix, count) in choices {
                    self.counts[fragment_ix][range_ix].insert(count);
                    mask |= 1 << range_ix;
                    order.push(range_ix);
                }
                self.subsets[fragment_ix].insert(mask);
                self.orders[fragment_ix].insert(order);
            }
        }
    }

    /// Fraction of range boundary counts (`u` and `v` of every range) hit.
    pub fn boundary_coverage(&self) -> f64 {
        let mut hit = 0usize;
        let mut total = 0usize;
        for (fragment_ix, (_, ranges)) in self.shape.iter().enumerate() {
            for (range_ix, &(u, v)) in ranges.iter().enumerate() {
                let seen = &self.counts[fragment_ix][range_ix];
                total += if u == v { 1 } else { 2 };
                if seen.contains(&u) {
                    hit += 1;
                }
                if u != v && seen.contains(&v) {
                    hit += 1;
                }
            }
        }
        ratio(hit, total)
    }

    /// Fraction of `∨`-fragment subsets exercised (each `∨`-fragment has
    /// `2^n − 1` legal subsets; `∧`-fragments count as a single subset).
    pub fn subset_coverage(&self) -> f64 {
        let mut hit = 0usize;
        let mut total = 0usize;
        for (fragment_ix, (op, ranges)) in self.shape.iter().enumerate() {
            let possible = match op {
                FragmentOp::All => 1usize,
                FragmentOp::Any => (1usize << ranges.len()) - 1,
            };
            total += possible;
            hit += self.subsets[fragment_ix].len().min(possible);
        }
        ratio(hit, total)
    }

    /// Fraction of fragment emission orders exercised (`k!` per fragment of
    /// `k` participating ranges under `∧`; `∨` orders are counted against
    /// the full-subset permutations for simplicity).
    pub fn order_coverage(&self) -> f64 {
        let mut hit = 0usize;
        let mut total = 0usize;
        for (fragment_ix, (_, ranges)) in self.shape.iter().enumerate() {
            total += factorial(ranges.len());
            hit += self.orders[fragment_ix].len().min(factorial(ranges.len()));
        }
        ratio(hit, total)
    }

    /// The minimum of the three coverage dimensions.
    pub fn overall(&self) -> f64 {
        self.boundary_coverage()
            .min(self.subset_coverage())
            .min(self.order_coverage())
    }
}

fn ratio(hit: usize, total: usize) -> f64 {
    if total == 0 {
        1.0
    } else {
        hit as f64 / total as f64
    }
}

fn factorial(n: usize) -> usize {
    (1..=n).product::<usize>().max(1)
}

/// Coverage-directed generation: keep generating (fresh seeds) until the
/// overall coverage reaches `target` or `max_traces` is exhausted. Returns
/// the traces and the final coverage.
pub fn generate_until_covered(
    property: &Property,
    base_config: &GeneratorConfig,
    target: f64,
    max_traces: u32,
) -> (Vec<GeneratedTrace>, Coverage) {
    let mut coverage = Coverage::new(property);
    let mut traces = Vec::new();
    for round in 0..max_traces {
        let config = GeneratorConfig {
            seed: base_config.seed.wrapping_add(u64::from(round)),
            ..*base_config
        };
        let generated = generate(property, &config);
        coverage.record(&generated);
        traces.push(generated);
        if coverage.overall() >= target {
            break;
        }
    }
    (traces, coverage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lomon_core::parse::parse_property;
    use lomon_trace::Vocabulary;

    fn property(text: &str) -> lomon_core::ast::Property {
        let mut voc = Vocabulary::new();
        parse_property(text, &mut voc).expect(text)
    }

    #[test]
    fn empty_coverage_is_zero() {
        let p = property("any{a, b} << i repeated");
        let c = Coverage::new(&p);
        assert_eq!(c.subset_coverage(), 0.0);
        assert_eq!(c.boundary_coverage(), 0.0);
        assert_eq!(c.overall(), 0.0);
    }

    #[test]
    fn coverage_grows_with_traces() {
        let p = property("any{a, b} < c[2,4] << i repeated");
        let mut coverage = Coverage::new(&p);
        let first = generate(&p, &GeneratorConfig::new(0));
        coverage.record(&first);
        let after_one = coverage.overall();
        for seed in 1..40 {
            coverage.record(&generate(&p, &GeneratorConfig::new(seed)));
        }
        assert!(coverage.overall() >= after_one);
        // 40 seeds × 3 episodes should hit all 3 subsets of {a,b} and both
        // boundary counts of c[2,4].
        assert!((coverage.subset_coverage() - 1.0).abs() < 1e-9);
        assert!((coverage.boundary_coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn directed_generation_reaches_full_coverage() {
        let p = property("any{a, b} < all{c, d} << i repeated");
        let (traces, coverage) = generate_until_covered(&p, &GeneratorConfig::new(7), 1.0, 200);
        assert!(
            coverage.overall() >= 1.0 - 1e-9,
            "coverage stalled at {} after {} traces",
            coverage.overall(),
            traces.len()
        );
        // And it should not need anywhere near the cap.
        assert!(traces.len() < 200);
    }

    #[test]
    fn singleton_fragments_are_trivially_ordered() {
        let p = property("a << i once");
        let mut coverage = Coverage::new(&p);
        coverage.record(&generate(&p, &GeneratorConfig::new(1)));
        assert!((coverage.order_coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn timed_patterns_cover_both_sides() {
        let p = property("start => read[2,3] < irq within 1 ms");
        let (_, coverage) = generate_until_covered(&p, &GeneratorConfig::new(3), 1.0, 100);
        assert!((coverage.boundary_coverage() - 1.0).abs() < 1e-9);
    }
}
