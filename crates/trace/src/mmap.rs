//! Read-only memory-mapped trace files.
//!
//! `lomon check` replays multi-megabyte trace files; reading them with
//! `fs::read_to_string` copies every byte through a growing heap buffer
//! before the first line is even lexed. A private read-only `mmap` hands
//! the byte lexer the kernel's page cache directly — no copy, no
//! allocation proportional to file size — which is exactly what the
//! wire-speed ingest path wants for `check`/`profile`/`lint --trace`.
//!
//! The mapping is advisory, not load-bearing: on targets without the
//! expected `mmap(2)` ABI (anything but 64-bit Unix) or when the syscall
//! fails (special files, exotic filesystems), [`MappedFile::open`] falls
//! back to an ordinary heap read with identical observable behavior.
//! Callers should treat the bytes as a snapshot: mapped memory reflects
//! concurrent writers, so replaying a file that is still being appended
//! to can observe torn lines — the same caveat `tail -f` has.
//!
//! This is the one module in the workspace that needs `unsafe` (the
//! syscall and the reborrow of the mapped region); the workspace-level
//! `deny(unsafe_code)` is re-allowed here alone, and every unsafe block
//! carries its safety argument.
#![allow(unsafe_code)]

use std::io;
use std::path::Path;

/// The contents of one trace file, memory-mapped read-only when the
/// platform allows it and heap-backed otherwise.
///
/// # Example
///
/// ```no_run
/// use lomon_trace::MappedFile;
/// let file = MappedFile::open("trace.txt".as_ref()).expect("readable");
/// let bytes: &[u8] = file.bytes();
/// ```
#[derive(Debug)]
pub struct MappedFile {
    data: MapData,
}

#[derive(Debug)]
enum MapData {
    /// A live `mmap(2)` region, unmapped on drop.
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped { ptr: *mut u8, len: usize },
    /// Heap fallback (empty files, non-Unix targets, failed mappings).
    Owned(Vec<u8>),
}

impl MappedFile {
    /// Map `path` read-only, falling back to a heap read when mapping is
    /// unavailable.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the file cannot be opened or read.
    pub fn open(path: &Path) -> io::Result<MappedFile> {
        sys::open(path)
    }

    /// The file's bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.data {
            #[cfg(all(unix, target_pointer_width = "64"))]
            MapData::Mapped { ptr, len } => {
                // SAFETY: `ptr` came from a successful PROT_READ
                // MAP_PRIVATE mmap of exactly `len` bytes, is unmapped
                // only in `drop`, and the borrow of `self` keeps the
                // mapping alive for the slice's lifetime.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            MapData::Owned(bytes) => bytes,
        }
    }

    /// Number of bytes in the file.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
impl Drop for MappedFile {
    fn drop(&mut self) {
        if let MapData::Mapped { ptr, len } = self.data {
            // SAFETY: the pair was returned by a successful mmap and is
            // unmapped exactly once; failure leaks the mapping, which is
            // harmless.
            unsafe {
                sys::munmap(ptr, len);
            }
        }
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;
    use std::path::Path;

    use super::{MapData, MappedFile};

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    // Minimal hand-rolled binding: std already links libc on every Unix
    // target, and on 64-bit Unix `size_t`/`off_t` are the word-sized
    // integers used here. Vendoring is offline-only in this workspace,
    // so a `libc` crate dependency is not an option.
    extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        pub(super) fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    pub(super) fn open(path: &Path) -> io::Result<MappedFile> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            // mmap rejects zero-length mappings; an empty heap buffer is
            // observably identical.
            return Ok(MappedFile {
                data: MapData::Owned(Vec::new()),
            });
        }
        let Ok(len) = usize::try_from(len) else {
            return Ok(MappedFile {
                data: MapData::Owned(std::fs::read(path)?),
            });
        };
        // SAFETY: plain read-only private mapping of a file we hold open;
        // all arguments are well-formed for the 64-bit Unix mmap ABI and
        // the result is checked against MAP_FAILED below.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            // Mapping failed (pipe, device, exhausted address space…):
            // degrade gracefully to a heap read.
            return Ok(MappedFile {
                data: MapData::Owned(std::fs::read(path)?),
            });
        }
        // Closing `file` here is fine: a mapping keeps its own reference
        // to the underlying object.
        Ok(MappedFile {
            data: MapData::Mapped { ptr, len },
        })
    }
}

#[cfg(not(all(unix, target_pointer_width = "64")))]
mod sys {
    use std::io;
    use std::path::Path;

    use super::{MapData, MappedFile};

    pub(super) fn open(path: &Path) -> io::Result<MappedFile> {
        Ok(MappedFile {
            data: MapData::Owned(std::fs::read(path)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_real_file_contents() {
        let dir = std::env::temp_dir().join(format!("lomon-mmap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("trace.txt");
        let body = "10ns in a\n20ns out b\nend 99ns\n";
        std::fs::write(&path, body).expect("write");
        let mapped = MappedFile::open(&path).expect("maps");
        assert_eq!(mapped.bytes(), body.as_bytes());
        assert_eq!(mapped.len(), body.len());
        assert!(!mapped.is_empty());
        drop(mapped);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_file_is_empty_slice() {
        let dir = std::env::temp_dir().join(format!("lomon-mmap-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("empty.txt");
        std::fs::write(&path, b"").expect("write");
        let mapped = MappedFile::open(&path).expect("opens");
        assert!(mapped.is_empty());
        assert_eq!(mapped.bytes(), b"");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_propagates_io_error() {
        let err = MappedFile::open(Path::new("/nonexistent/lomon-trace")).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }
}
