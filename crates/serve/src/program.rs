//! The serving program: one compiled rulebook, atomically swappable.
//!
//! A [`Program`] bundles everything a connection needs to monitor streams
//! — the compiled [`Engine`], the [`Vocabulary`] its names were interned
//! into, and a monotonically increasing *generation* — behind one `Arc`.
//! Connections pin their `Arc<Program>` for their whole lifetime, so a
//! hot-reload ([`crate::Server::reload`]) is a pure pointer swap: new
//! streams see the new rulebook, in-flight streams keep the exact program
//! (and vocabulary) they started under, and nothing is ever mutated in
//! place. A reload that fails to compile returns its diagnostics and
//! leaves the serving program untouched — the rollback is that no swap
//! ever happened.

use lomon_core::analysis::{AnalysisOptions, Diagnostic, Severity};
use lomon_engine::{error_diagnostics, Backend, DispatchMode, Engine, Session};
use lomon_trace::Vocabulary;

/// One immutable compiled rulebook generation.
#[derive(Debug)]
pub(crate) struct Program {
    pub(crate) engine: Engine,
    pub(crate) voc: Vocabulary,
    pub(crate) generation: u64,
}

impl Program {
    /// Compile `text` (one property per line, `#` comments and blank lines
    /// skipped) into generation `generation`. On any parse or
    /// well-formedness error — or, with `deny_warnings`, any analysis
    /// warning — returns *all* diagnostics and no program.
    pub(crate) fn compile(
        text: &str,
        generation: u64,
        deny_warnings: bool,
    ) -> Result<Program, Vec<Diagnostic>> {
        let properties = rulebook_lines(text);
        if properties.is_empty() {
            return Err(vec![Diagnostic::new(
                lomon_core::analysis::DiagCode::L001,
                Vec::new(),
                "the rulebook is empty".to_owned(),
            )]);
        }
        let mut voc = Vocabulary::new();
        let opts = AnalysisOptions::default();
        match Engine::compile_with_analysis(&properties, &mut voc, &opts) {
            Ok((engine, diagnostics)) => {
                let warnings: Vec<Diagnostic> = diagnostics
                    .into_iter()
                    .filter(|d| d.severity == Severity::Warning)
                    .collect();
                if deny_warnings && !warnings.is_empty() {
                    return Err(warnings);
                }
                Ok(Program {
                    engine,
                    voc,
                    generation,
                })
            }
            Err(errors) => Err(error_diagnostics(&errors, &voc)),
        }
    }

    /// A fresh session on this program's engine (indexed dispatch, the
    /// server's configured backend).
    pub(crate) fn session(&self, backend: Backend) -> Session<'_> {
        self.engine
            .session_with_backend(DispatchMode::Indexed, backend)
    }
}

/// Split rulebook text into property lines: one property per non-blank,
/// non-`#`-comment line — the same convention `lomon lint` and `lomon
/// check` use for rulebook files.
pub(crate) fn rulebook_lines(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_owned)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_reports_all_errors_and_builds_nothing() {
        let text = "all{a, b} << start once\nnot a property\nalso ] broken\n";
        let errors = Program::compile(text, 1, false).expect_err("two bad lines");
        assert_eq!(errors.len(), 2);
        assert!(errors.iter().all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn deny_warnings_rejects_a_warning_rulebook() {
        // Duplicate properties trip the L003 warning.
        let text = "all{a, b} << start once\nall{a, b} << start once\n";
        assert!(Program::compile(text, 1, false).is_ok());
        let errors = Program::compile(text, 1, true).expect_err("denied");
        assert!(errors.iter().any(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# a comment\n\nall{a, b} << start once\n";
        let program = Program::compile(text, 7, true).expect("compiles");
        assert_eq!(program.engine.len(), 1);
        assert_eq!(program.generation, 7);
    }

    #[test]
    fn empty_rulebook_is_an_error() {
        assert!(Program::compile("# only comments\n", 1, false).is_err());
    }
}
