//! Behavioural tests for the whole-rulebook static analysis: one scenario
//! per diagnostic class (`L003`–`L009`), golden text/JSON renderings for
//! every code, and the `prune_dead` verdict-preservation contract.

use lomon_core::analysis::{analyze, prune_dead, AnalysisOptions, DiagCode, Diagnostic, Severity};
use lomon_core::ast::Property;
use lomon_core::fused::FusedProgram;
use lomon_core::parse::parse_property;
use lomon_core::verdict::{Monitor, Verdict};
use lomon_core::wf;
use lomon_trace::{NameSet, SimTime, TimedEvent, Vocabulary};

/// Parse, validate and fuse a rulebook, interning `extra` names first.
fn fuse(texts: &[&str], extra: &[&str], voc: &mut Vocabulary) -> FusedProgram {
    for name in extra {
        voc.input(name);
    }
    let properties: Vec<Property> = texts
        .iter()
        .map(|t| {
            let p = parse_property(t, voc).expect("parses");
            wf::validate(p, voc).expect("well-formed")
        })
        .collect();
    FusedProgram::lower(&properties)
}

fn run(texts: &[&str], extra: &[&str], opts: &AnalysisOptions) -> Vec<Diagnostic> {
    let mut voc = Vocabulary::new();
    let fused = fuse(texts, extra, &mut voc);
    analyze(&fused, texts, &voc, opts)
}

fn codes(diags: &[Diagnostic]) -> Vec<DiagCode> {
    diags.iter().map(|d| d.code).collect()
}

#[test]
fn clean_rulebook_reports_nothing() {
    let diags = run(
        &[
            "all{set_imgAddr, set_glAddr, set_glSize} << start repeated",
            "start => out:set_irq within 100 ns",
        ],
        &[],
        &AnalysisOptions::default(),
    );
    assert!(diags.is_empty(), "unexpected findings: {diags:?}");
}

#[test]
fn duplicates_are_reported_with_both_definitions() {
    let diags = run(
        &["all{a, b} << start once", "all{a, b} << start once"],
        &[],
        &AnalysisOptions::default(),
    );
    assert_eq!(codes(&diags), vec![DiagCode::L003]);
    assert_eq!(diags[0].severity, Severity::Warning);
    assert_eq!(diags[0].properties, vec![0, 1]);
    assert!(diags[0]
        .message
        .contains("property 0 `all{a, b} << start once`"));
    assert!(diags[0]
        .message
        .contains("property 1 `all{a, b} << start once`"));
}

#[test]
fn unmeetable_deadline_is_vacuous() {
    // With a 0 ns budget no response can ever arrive in time under the
    // bounded model's unit-spaced events: the property can only pass by
    // never firing.
    let diags = run(
        &["go => out:done within 0 ns"],
        &[],
        &AnalysisOptions::default(),
    );
    assert!(codes(&diags).contains(&DiagCode::L004), "got {diags:?}");
    let vacuous = diags.iter().find(|d| d.code == DiagCode::L004).unwrap();
    assert_eq!(vacuous.properties, vec![0]);
    assert!(vacuous.message.contains("vacuous"));
}

#[test]
fn satisfiable_properties_are_not_vacuous() {
    let diags = run(
        &["go => out:done within 5 ns"],
        &[],
        &AnalysisOptions::default(),
    );
    assert!(!codes(&diags).contains(&DiagCode::L004), "got {diags:?}");
}

#[test]
fn once_is_subsumed_by_repeated() {
    // Before the first completed episode the two behave identically; after
    // it `once` goes passive while `repeated` keeps checking — so every
    // violation `once` can raise, `repeated` raises too.
    let diags = run(
        &["a << i once", "a << i repeated"],
        &[],
        &AnalysisOptions::default(),
    );
    assert_eq!(codes(&diags), vec![DiagCode::L005]);
    assert!(
        diags[0]
            .message
            .contains("property 0 `a << i once` is subsumed by property 1"),
        "message: {}",
        diags[0].message
    );
}

#[test]
fn opposed_orderings_conflict() {
    // `a << i` wants every i preceded by a fresh a; `i << a` wants every a
    // preceded by a fresh i. Each is satisfiable alone, but any trace
    // discharging one violates the other.
    let diags = run(
        &["a << i once", "i << a once"],
        &[],
        &AnalysisOptions::default(),
    );
    assert_eq!(codes(&diags), vec![DiagCode::L006]);
    assert_eq!(diags[0].properties, vec![0, 1]);
    assert!(diags[0].message.contains("conflict"));
}

#[test]
fn unobserved_vocabulary_names_are_noted() {
    let diags = run(
        &["a << i once"],
        &["dangling", "orphan"],
        &AnalysisOptions::default(),
    );
    assert_eq!(codes(&diags), vec![DiagCode::L007]);
    assert_eq!(diags[0].severity, Severity::Note);
    assert!(diags[0].message.contains("dangling"));
    assert!(diags[0].message.contains("orphan"));
}

#[test]
fn corpus_events_without_subscribers_are_noted() {
    let mut voc = Vocabulary::new();
    let fused = fuse(&["a << i once"], &["noise"], &mut voc);
    let noise = voc.lookup("noise").unwrap();
    let a = voc.lookup("a").unwrap();
    let opts = AnalysisOptions {
        corpus: Some(vec![(noise, 3), (a, 2)]),
        ..AnalysisOptions::default()
    };
    let diags = analyze(&fused, &["a << i once"], &voc, &opts);
    let l008 = diags.iter().find(|d| d.code == DiagCode::L008);
    let l008 = l008.expect("noise events hit no subscriber row");
    assert!(l008.message.contains("noise (×3)"), "{}", l008.message);
    assert!(!l008.message.contains("a (×2)"), "{}", l008.message);
}

#[test]
fn corpus_restricted_dead_rows_are_noted_and_pruned() {
    let mut voc = Vocabulary::new();
    let fused = fuse(&["all{a, b} << start once"], &[], &mut voc);
    let a = voc.lookup("a").unwrap();
    let start = voc.lookup("start").unwrap();
    // The corpus never produces `b`: its whole action-table row is dead.
    let opts = AnalysisOptions {
        corpus: Some(vec![(a, 5), (start, 5)]),
        ..AnalysisOptions::default()
    };
    let diags = analyze(&fused, &["all{a, b} << start once"], &voc, &opts);
    let l009 = diags.iter().find(|d| d.code == DiagCode::L009);
    let l009 = l009.expect("row b is unreachable given the corpus");
    assert!(l009.message.contains("1 of 3 rows"), "{}", l009.message);

    let corpus: NameSet = [a, start].into_iter().collect();
    let outcome = prune_dead(&fused, Some(&corpus), 20_000);
    assert_eq!(outcome.stats.dropped_rows, 1);
    assert_eq!(outcome.stats.rows, 3);
    // The pruned table really is smaller, and the dropped name routes
    // nowhere.
    let b = voc.lookup("b").unwrap();
    assert!(outcome.fused.subscribers(b).0.is_empty());
    assert_eq!(outcome.fused.subscribers(a).0.len(), 1);

    // Verdict preservation on corpus-only traces: every 3-event trace over
    // {a, start}, stepped through both rulebooks.
    let names = [a, start];
    for &x in &names {
        for &y in &names {
            for &z in &names {
                let mut original = fused.instantiate();
                let mut pruned = outcome.fused.instantiate();
                for (k, &name) in [x, y, z].iter().enumerate() {
                    let event = TimedEvent::new(name, SimTime::from_ns(k as u64));
                    let vo = original[0].observe(event);
                    let vp = pruned[0].observe(event);
                    assert_eq!(vo, vp, "step {k} of {x:?},{y:?},{z:?}");
                }
                let end = SimTime::from_ns(10);
                assert_eq!(original[0].finish(end), pruned[0].finish(end));
            }
        }
    }
}

#[test]
fn prune_without_corpus_preserves_everything_observable() {
    let mut voc = Vocabulary::new();
    let fused = fuse(&["go => out:done within 5 ns"], &[], &mut voc);
    let outcome = prune_dead(&fused, None, 20_000);
    assert_eq!(outcome.stats.dropped_rows, 0);
    let go = voc.lookup("go").unwrap();
    let done = voc.lookup("done").unwrap();
    let mut original = fused.instantiate();
    let mut pruned = outcome.fused.instantiate();
    for (ns, name) in [(0, go), (3, done), (6, go), (20, done)] {
        let event = TimedEvent::new(name, SimTime::from_ns(ns));
        assert_eq!(original[0].observe(event), pruned[0].observe(event));
    }
    assert_eq!(original[0].verdict(), Verdict::Violated); // 14 ns > 5 ns
    assert_eq!(
        original[0].finish(SimTime::from_ns(30)),
        pruned[0].finish(SimTime::from_ns(30))
    );
}

#[test]
fn golden_text_and_json_renderings() {
    let cases: &[(DiagCode, &str, &str)] = &[
        (DiagCode::L003, "error", "warning"),
        (DiagCode::L004, "error", "warning"),
        (DiagCode::L005, "error", "warning"),
        (DiagCode::L006, "error", "warning"),
        (DiagCode::L007, "error", "note"),
        (DiagCode::L008, "error", "note"),
        (DiagCode::L009, "error", "note"),
    ];
    for &(code, _, label) in cases {
        let diag = Diagnostic::new(code, vec![2], format!("probe {}", code.as_str()));
        assert_eq!(
            diag.render_text(),
            format!("{label}[{}]: probe {}", code.as_str(), code.as_str())
        );
        assert_eq!(
            diag.render_json(),
            format!(
                "{{\"code\": \"{c}\", \"severity\": \"{label}\", \
                 \"properties\": [2], \"message\": \"probe {c}\"}}",
                c = code.as_str()
            )
        );
    }
    // JSON escaping goes through the shared lomon_trace::json_escape.
    let tricky = Diagnostic::new(DiagCode::L007, vec![], "say \"hi\"\n".to_string());
    assert_eq!(
        tricky.render_json(),
        "{\"code\": \"L007\", \"severity\": \"note\", \"properties\": [], \
         \"message\": \"say \\\"hi\\\"\\n\"}"
    );
}
