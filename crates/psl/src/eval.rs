//! Three-valued finite-trace evaluation of PSL formulas.
//!
//! This is the *specification* semantics of the PSL subset: an impartial
//! (RV-LTL-style) evaluation over the finite token trace observed so far.
//! Positions past the end of the trace evaluate to [`Truth::Unknown`]:
//! a formula is
//!
//! * [`Truth::False`] only when the observed prefix already makes it false
//!   on every extension (the monitoring verdict "violated");
//! * [`Truth::True`] only when it is already true on every extension;
//! * [`Truth::Unknown`] otherwise.
//!
//! The recursive evaluator is deliberately simple (and O(|φ|·|w|) per
//! query) — it is the oracle that the efficient observer network in
//! [`crate::monitor`] is tested against, playing the role SPOT plays for
//! the paper's translation.

use lomon_trace::LexedToken;

use crate::ast::Psl;

/// Kleene three-valued truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Truth {
    /// Definitely false on the observed prefix (violation).
    False,
    /// Definitely true on the observed prefix.
    True,
    /// Not yet determined.
    Unknown,
}

impl Truth {
    fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }
}

/// Evaluate `formula` at position `pos` of the token trace.
fn eval_at(formula: &Psl, tokens: &[LexedToken], pos: usize) -> Truth {
    if pos > tokens.len() {
        unreachable!("evaluation past the virtual end position");
    }
    match formula {
        Psl::Const(true) => Truth::True,
        Psl::Const(false) => Truth::False,
        Psl::Atom(test) => {
            if pos == tokens.len() {
                Truth::Unknown
            } else if test.matches(tokens[pos]) {
                Truth::True
            } else {
                Truth::False
            }
        }
        Psl::Not(p) => eval_at(p, tokens, pos).not(),
        Psl::And(ps) => ps
            .iter()
            .fold(Truth::True, |acc, p| acc.and(eval_at(p, tokens, pos))),
        Psl::Or(ps) => ps
            .iter()
            .fold(Truth::False, |acc, p| acc.or(eval_at(p, tokens, pos))),
        Psl::Implies(p, q) => eval_at(p, tokens, pos).not().or(eval_at(q, tokens, pos)),
        Psl::Next(p) => {
            if pos >= tokens.len() {
                Truth::Unknown
            } else {
                // The continuation beyond the trace is unknown, so `next`
                // at the last position is unknown (impartiality), which
                // `eval_at(_, _, len)` yields for every temporal operand.
                eval_at(p, tokens, pos + 1)
            }
        }
        Psl::Until(p, q) => {
            if pos == tokens.len() {
                return Truth::Unknown;
            }
            // φ U! ψ ≡ ψ ∨ (φ ∧ X(φ U! ψ))
            let now = eval_at(q, tokens, pos);
            let hold = eval_at(p, tokens, pos);
            now.or(hold.and(eval_until(p, q, tokens, pos + 1, Truth::Unknown)))
        }
        Psl::WeakUntil(p, q) => {
            if pos == tokens.len() {
                return Truth::Unknown;
            }
            let now = eval_at(q, tokens, pos);
            let hold = eval_at(p, tokens, pos);
            now.or(hold.and(eval_until(p, q, tokens, pos + 1, Truth::Unknown)))
        }
        Psl::Always(p) => {
            let mut acc = Truth::Unknown; // the unseen future
            for k in (pos..tokens.len()).rev() {
                acc = eval_at(p, tokens, k).and(acc);
                if acc == Truth::False {
                    return Truth::False;
                }
            }
            acc
        }
        Psl::Eventually(p) => {
            let mut acc = Truth::Unknown; // the unseen future
            for k in (pos..tokens.len()).rev() {
                acc = eval_at(p, tokens, k).or(acc);
                if acc == Truth::True {
                    return Truth::True;
                }
            }
            acc
        }
    }
}

/// Iterative unrolling of `φ U ψ` from `pos`, with the given value at the
/// end of the trace (`Unknown` for both until flavours under impartial
/// finite-trace semantics).
fn eval_until(p: &Psl, q: &Psl, tokens: &[LexedToken], pos: usize, at_end: Truth) -> Truth {
    let mut acc = at_end;
    for k in (pos..tokens.len()).rev() {
        let now = eval_at(q, tokens, k);
        let hold = eval_at(p, tokens, k);
        acc = now.or(hold.and(acc));
        // No early exit: `acc` depends on the suffix, computed right-to-left.
    }
    acc
}

/// Evaluate `formula` over the whole token trace (position 0).
pub fn eval(formula: &Psl, tokens: &[LexedToken]) -> Truth {
    eval_at(formula, tokens, 0)
}

/// The length of the shortest prefix of `tokens` on which `formula` is
/// already [`Truth::False`], if any. (Index of the offending token =
/// result − 1.)
pub fn first_false_prefix(formula: &Psl, tokens: &[LexedToken]) -> Option<usize> {
    for k in 0..=tokens.len() {
        if eval(formula, &tokens[..k]) == Truth::False {
            return Some(k);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::TokenTest;
    use lomon_trace::{Name, Vocabulary};

    struct Fix {
        n: Name,
        i: Name,
    }

    fn fix() -> Fix {
        let mut voc = Vocabulary::new();
        Fix {
            n: voc.input("n"),
            i: voc.input("i"),
        }
    }

    fn tok(name: Name, run: u32) -> LexedToken {
        LexedToken { name, run }
    }

    fn atom(name: Name) -> Psl {
        Psl::Atom(TokenTest::Exact { name, run: 1 })
    }

    #[test]
    fn atoms_and_constants() {
        let f = fix();
        assert_eq!(eval(&Psl::Const(true), &[]), Truth::True);
        assert_eq!(eval(&Psl::Const(false), &[]), Truth::False);
        assert_eq!(eval(&atom(f.n), &[]), Truth::Unknown);
        assert_eq!(eval(&atom(f.n), &[tok(f.n, 1)]), Truth::True);
        assert_eq!(eval(&atom(f.n), &[tok(f.i, 1)]), Truth::False);
    }

    #[test]
    fn boolean_connectives_are_kleene() {
        let f = fix();
        let unknown = atom(f.n); // on empty trace
        let and = Psl::and(vec![Psl::Const(false), unknown.clone()]);
        assert_eq!(eval(&and, &[]), Truth::False);
        let or = Psl::or(vec![Psl::Const(true), unknown.clone()]);
        assert_eq!(eval(&or, &[]), Truth::True);
        assert_eq!(eval(&Psl::not(unknown), &[]), Truth::Unknown);
    }

    #[test]
    fn next_is_impartial_at_the_edge() {
        let f = fix();
        let x_n = Psl::next(atom(f.n));
        assert_eq!(eval(&x_n, &[]), Truth::Unknown);
        assert_eq!(eval(&x_n, &[tok(f.i, 1)]), Truth::Unknown); // next pos unseen
        assert_eq!(eval(&x_n, &[tok(f.i, 1), tok(f.n, 1)]), Truth::True);
        assert_eq!(eval(&x_n, &[tok(f.i, 1), tok(f.i, 1)]), Truth::False);
    }

    #[test]
    fn strong_until_requires_witness() {
        let f = fix();
        // ¬i U! n
        let u = Psl::until(Psl::not(atom(f.i)), atom(f.n));
        assert_eq!(eval(&u, &[]), Truth::Unknown);
        assert_eq!(eval(&u, &[tok(f.n, 1)]), Truth::True);
        assert_eq!(eval(&u, &[tok(f.i, 1)]), Truth::False); // i before n
        let other = {
            let mut voc = Vocabulary::new();
            voc.input("n");
            voc.input("i");
            voc.input("other")
        };
        assert_eq!(eval(&u, &[tok(other, 1)]), Truth::Unknown); // still waiting
        assert_eq!(eval(&u, &[tok(other, 1), tok(f.n, 1)]), Truth::True);
    }

    #[test]
    fn always_detects_violation_position() {
        let f = fix();
        // always(n → X(¬n U! i))  — the MaxOne conjunct.
        let max_one = Psl::always(Psl::implies(
            atom(f.n),
            Psl::next(Psl::until(Psl::not(atom(f.n)), atom(f.i))),
        ));
        let good = [tok(f.n, 1), tok(f.i, 1), tok(f.n, 1), tok(f.i, 1)];
        assert_ne!(eval(&max_one, &good), Truth::False);
        let bad = [tok(f.n, 1), tok(f.n, 1)];
        assert_eq!(eval(&max_one, &bad), Truth::False);
        assert_eq!(first_false_prefix(&max_one, &bad), Some(2));
    }

    #[test]
    fn weak_until_on_finite_prefix() {
        let f = fix();
        // n W i: n holds until an i (or forever).
        let w = Psl::weak_until(atom(f.n), atom(f.i));
        assert_eq!(eval(&w, &[tok(f.n, 1), tok(f.n, 1)]), Truth::Unknown);
        assert_eq!(eval(&w, &[tok(f.i, 1)]), Truth::True);
        assert_eq!(eval(&w, &[tok(f.n, 1), tok(f.i, 1)]), Truth::True);
        // A non-n, non-i token breaks it definitively.
        let mut voc = Vocabulary::new();
        voc.input("n");
        voc.input("i");
        let other = voc.input("other");
        assert_eq!(eval(&w, &[tok(other, 1)]), Truth::False);
    }

    #[test]
    fn eventually_finds_witness() {
        let f = fix();
        let ev = Psl::eventually(atom(f.i));
        assert_eq!(eval(&ev, &[]), Truth::Unknown);
        assert_eq!(eval(&ev, &[tok(f.n, 1)]), Truth::Unknown);
        assert_eq!(eval(&ev, &[tok(f.n, 1), tok(f.i, 1)]), Truth::True);
    }

    #[test]
    fn falsehood_is_stable_under_extension() {
        let f = fix();
        let max_one = Psl::always(Psl::implies(
            atom(f.n),
            Psl::next(Psl::until(Psl::not(atom(f.n)), atom(f.i))),
        ));
        let bad = [tok(f.n, 1), tok(f.n, 1), tok(f.i, 1), tok(f.n, 1)];
        for k in 2..=bad.len() {
            assert_eq!(eval(&max_one, &bad[..k]), Truth::False, "prefix {k}");
        }
    }

    #[test]
    fn range_tokens_in_atoms() {
        let f = fix();
        let in_range = Psl::Atom(TokenTest::InRange {
            name: f.n,
            lo: 2,
            hi: 8,
        });
        assert_eq!(eval(&in_range, &[tok(f.n, 5)]), Truth::True);
        assert_eq!(eval(&in_range, &[tok(f.n, 1)]), Truth::False);
        let bad = Psl::always(Psl::not(Psl::Atom(TokenTest::OutsideRange {
            name: f.n,
            lo: 2,
            hi: 8,
        })));
        assert_eq!(eval(&bad, &[tok(f.n, 9)]), Truth::False);
        assert_ne!(eval(&bad, &[tok(f.n, 3)]), Truth::False);
    }
}
