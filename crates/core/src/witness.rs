//! Verdict provenance: witnesses and the flight recorder.
//!
//! A monitor in *explain mode* keeps a bounded ring buffer — the
//! [`FlightRecorder`] — of the steps that actually advanced its cells.
//! When the monitor reaches a violation, the recorder's contents form a
//! [`Witness`]: the ordered chain of contributing events, each annotated
//! with the cell it moved and the state transition it caused. Replaying
//! only the witness's events through a fresh monitor of the same property
//! reproduces the identical violation (see [`replay_witness`]), which is
//! the soundness contract the differential tests enforce across the
//! fused, compiled and interp backends.
//!
//! Recording is observation, not instrumentation: live explain mode
//! records only the `(time, event)` pair of each contributing step — a
//! single bounded ring store on the hot path — and the cell/transition
//! attribution is reconstructed on the cold `witness()` read by replaying
//! the raw chain through a fresh *attributing* clone of the monitor (see
//! [`reattribute`]). The hooks never touch the `ops` accounting, so
//! explain-off monitors are bit-identical to pre-explain behaviour and
//! explain-on monitors differ only in the recorder side channel.

use crate::verdict::{Monitor, Verdict};
use lomon_trace::{Name, SimTime, TimedEvent};

/// One contributing step in a witness: an in-alphabet event that was
/// observed while the monitor was still live, annotated with the first
/// cell (in arena order within the then-active fragment) whose
/// `(state, count)` pair it changed.
///
/// `from`/`to` are the Fig. 5 recognizer state codes `0..=5`
/// (`s0` idle … `s5` error), identical across backends. An event that
/// advanced no cell (a hard-deadline miss detected on arrival) records
/// the active fragment's first cell with `from == to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WitnessStep {
    /// Timestamp of the contributing event.
    pub time: SimTime,
    /// Interned name of the contributing event.
    pub event: Name,
    /// Flattened cell index (arena order over the property's fragments).
    pub cell: u32,
    /// Recognizer state code of the attributed cell before the step.
    pub from: u8,
    /// Recognizer state code of the attributed cell after the step.
    pub to: u8,
}

impl WitnessStep {
    /// The attributed transition as `s<from>` / `s<to>` labels.
    pub fn transition(&self) -> (String, String) {
        (format!("s{}", self.from), format!("s{}", self.to))
    }
}

/// The ordered chain of contributing steps behind a verdict.
///
/// When `dropped == 0` the chain is complete: replaying exactly these
/// events reproduces the monitor's violation. When the flight recorder's
/// capacity was exceeded, `dropped` counts the oldest steps that were
/// overwritten; the remaining suffix is still the most recent evidence,
/// but exact replay is no longer guaranteed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Witness {
    /// Contributing steps, oldest first.
    pub steps: Vec<WitnessStep>,
    /// Steps evicted from the ring buffer before the verdict.
    pub dropped: u64,
}

impl Witness {
    /// The witness's events as replayable timed events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = TimedEvent> + '_ {
        self.steps.iter().map(|s| TimedEvent::new(s.event, s.time))
    }
}

/// A [`WitnessStep`] in the ring's wire layout: 16 bytes instead of the
/// public struct's padded 24, so an armed ring stays well inside L1 even
/// with several monitors armed at once.
#[derive(Debug, Clone, Copy)]
struct PackedStep {
    time_ps: u64,
    event: u32,
    cell: u16,
    from: u8,
    to: u8,
}

impl PackedStep {
    const ZERO: PackedStep = PackedStep {
        time_ps: 0,
        event: 0,
        cell: 0,
        from: 0,
        to: 0,
    };
}

/// A bounded ring buffer of contributing steps, kept per live monitor in
/// explain mode.
///
/// The recorder is a cold side channel: `record` is a bounds check and a
/// 16-byte slot write, `snapshot` (cold path, on report) rotates the ring
/// into chronological order. `clear` keeps the capacity so a session
/// reset does not reallocate.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    /// Pre-filled to `capacity` slots, so the record path is one uniform
    /// slot store regardless of how full the ring is.
    buf: Vec<PackedStep>,
    /// Next slot to write; equal to the oldest step's index once the ring
    /// has wrapped.
    head: usize,
    /// Steps ever recorded; everything beyond `capacity` was evicted.
    total: u64,
    /// Scratch `(state, count)` snapshot used by the interp backend to
    /// diff the active fragment across a step (the compiled backend diffs
    /// against its own `prev_cells` arena instead).
    scratch: Vec<(u8, u32)>,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` steps (at least one). The
    /// ring is allocated and filled up front — arming explain mode is
    /// explicit, and a pre-filled buffer keeps the record path a single
    /// slot store with no growth or fullness branches.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            buf: vec![PackedStep::ZERO; capacity],
            head: 0,
            total: 0,
            scratch: Vec::new(),
        }
    }

    /// The ring's bound, as configured.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append a step, evicting the oldest once the ring is full.
    #[inline]
    pub fn record(&mut self, step: WitnessStep) {
        debug_assert!(step.cell <= u32::from(u16::MAX), "cell index fits u16");
        let packed = PackedStep {
            time_ps: step.time.as_ps(),
            event: step.event.index() as u32,
            cell: step.cell as u16,
            from: step.from,
            to: step.to,
        };
        let head = self.head;
        if let Some(slot) = self.buf.get_mut(head) {
            *slot = packed;
        }
        self.head = if head + 1 == self.capacity {
            0
        } else {
            head + 1
        };
        self.total += 1;
    }

    /// Append a step known only by its `(time, event)` pair — the live
    /// explain mode's raw chain. Attribution (cell and transition) is
    /// reconstructed on demand when the witness is read (see
    /// [`reattribute`]).
    #[inline]
    pub fn record_event(&mut self, event: TimedEvent) {
        self.record(WitnessStep {
            time: event.time,
            event: event.name,
            cell: 0,
            from: 0,
            to: 0,
        });
    }

    /// Steps evicted so far.
    pub fn dropped(&self) -> u64 {
        self.total.saturating_sub(self.capacity as u64)
    }

    /// Forget all recorded steps, keeping capacity and allocation.
    pub fn clear(&mut self) {
        self.head = 0;
        self.total = 0;
    }

    /// The recorded chain in chronological order.
    pub fn snapshot(&self) -> Witness {
        let unpack = |p: &PackedStep| WitnessStep {
            time: SimTime::from_ps(p.time_ps),
            event: Name::from_index(p.event as usize),
            cell: p.cell.into(),
            from: p.from,
            to: p.to,
        };
        let len = usize::try_from(self.total)
            .unwrap_or(usize::MAX)
            .min(self.capacity);
        let mut steps = Vec::with_capacity(len);
        if self.total <= self.capacity as u64 {
            steps.extend(self.buf[..len].iter().map(unpack));
        } else {
            steps.extend(self.buf[self.head..].iter().map(unpack));
            steps.extend(self.buf[..self.head].iter().map(unpack));
        }
        Witness {
            steps,
            dropped: self.dropped(),
        }
    }

    /// Borrow the scratch snapshot buffer, cleared (interp backend only).
    pub fn begin_scratch(&mut self) -> &mut Vec<(u8, u32)> {
        self.scratch.clear();
        &mut self.scratch
    }

    /// Attribute a step by diffing the pre-step scratch snapshot against
    /// the post-step `(state, count)` pairs, then record it.
    ///
    /// `base` is the flattened index of the diffed window's first cell.
    /// Picks the first changed cell; when nothing changed (a deadline
    /// miss detected on arrival), falls back to the window's first cell
    /// with `from == to`.
    pub fn record_diff<I>(&mut self, event: TimedEvent, base: u32, post: I)
    where
        I: IntoIterator<Item = (u8, u32)>,
    {
        let mut step = WitnessStep {
            time: event.time,
            event: event.name,
            cell: base,
            from: self.scratch.first().map_or(0, |c| c.0),
            to: self.scratch.first().map_or(0, |c| c.0),
        };
        for (k, after) in post.into_iter().enumerate() {
            let before = self.scratch.get(k).copied().unwrap_or((0, 0));
            if before != after {
                step.cell = base + k as u32;
                step.from = before.0;
                step.to = after.0;
                break;
            }
        }
        self.record(step);
    }
}

/// Reconstruct cell/transition attribution for a raw `(time, event)` chain
/// by replaying it through a fresh *attributing* clone of the monitor.
///
/// Live explain mode keeps the hot path to a single ring store, so the
/// recorded chain carries no attribution. On the cold `witness()` read,
/// `arm` puts a reset clone of the monitor into attributing mode with
/// exactly `raw.steps.len()` slots, the chain is replayed through it, and
/// the clone's fully-attributed snapshot is returned with the original
/// eviction count restored. When the raw chain is complete
/// (`dropped == 0`) the replay follows the original trajectory step for
/// step, so every witness read also exercises the replay soundness
/// contract; after eviction the attribution describes the
/// replayed-from-scratch trajectory, best effort — identically so in
/// every backend, since each reconstructs from the same chain.
pub(crate) fn reattribute<M, F>(original: &M, raw: Witness, arm: F) -> Witness
where
    M: Monitor + Clone,
    F: FnOnce(&mut M, usize),
{
    if raw.steps.is_empty() {
        return raw;
    }
    let mut fresh = original.clone();
    fresh.reset();
    arm(&mut fresh, raw.steps.len());
    for event in raw.events() {
        if fresh.verdict().is_final() {
            break;
        }
        fresh.observe(event);
    }
    let mut attributed = fresh.witness().unwrap_or_default();
    attributed.dropped = raw.dropped;
    attributed
}

/// Replay a witness through a fresh monitor of the same property.
///
/// Feeds the witness's events in order, then (if the monitor has not
/// already reached a final verdict) advances time to `at` and finishes
/// there — the same closing sequence a session applies at end of
/// observation. When the witness is complete (`dropped == 0`), the
/// returned verdict and the monitor's violation are identical to the
/// originals: out-of-alphabet events only ever matter through the
/// passage of time, which the closing sequence reproduces.
pub fn replay_witness<M: Monitor + ?Sized>(
    monitor: &mut M,
    witness: &Witness,
    at: SimTime,
) -> Verdict {
    for event in witness.events() {
        if monitor.verdict().is_final() {
            break;
        }
        monitor.observe(event);
    }
    if !monitor.verdict().is_final() {
        monitor.advance_time(at);
    }
    if !monitor.verdict().is_final() {
        return monitor.finish(at);
    }
    monitor.verdict()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(ns: u64, cell: u32) -> WitnessStep {
        WitnessStep {
            time: SimTime::from_ns(ns),
            event: Name::from_index(0),
            cell,
            from: 1,
            to: 3,
        }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.record(step(i, i as u32));
        }
        let w = rec.snapshot();
        assert_eq!(w.dropped, 2);
        let cells: Vec<u32> = w.steps.iter().map(|s| s.cell).collect();
        assert_eq!(cells, vec![2, 3, 4]);
    }

    #[test]
    fn clear_resets_ring_but_keeps_capacity() {
        let mut rec = FlightRecorder::new(2);
        rec.record(step(1, 0));
        rec.record(step(2, 1));
        rec.record(step(3, 2));
        rec.clear();
        assert_eq!(rec.dropped(), 0);
        assert_eq!(rec.capacity(), 2);
        assert!(rec.snapshot().steps.is_empty());
    }

    #[test]
    fn diff_attributes_first_changed_cell() {
        let mut rec = FlightRecorder::new(8);
        let ev = TimedEvent::new(Name::from_index(7), SimTime::from_ns(42));
        rec.begin_scratch().extend([(1, 0), (3, 2)]);
        rec.record_diff(ev, 10, [(1, 0), (3, 3)]);
        let w = rec.snapshot();
        assert_eq!(w.steps.len(), 1);
        assert_eq!(w.steps[0].cell, 11);
        assert_eq!(w.steps[0].from, 3);
        assert_eq!(w.steps[0].to, 3);
        assert_eq!(w.steps[0].event, Name::from_index(7));
    }

    #[test]
    fn diff_falls_back_to_window_start_when_unchanged() {
        let mut rec = FlightRecorder::new(8);
        let ev = TimedEvent::new(Name::from_index(0), SimTime::from_ns(1));
        rec.begin_scratch().extend([(4, 1)]);
        rec.record_diff(ev, 5, [(4, 1)]);
        let w = rec.snapshot();
        assert_eq!(w.steps[0].cell, 5);
        assert_eq!(w.steps[0].from, 4);
        assert_eq!(w.steps[0].to, 4);
    }
}
