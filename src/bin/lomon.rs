//! `lomon` — command-line trace-replay monitoring.
//!
//! The practical entry point of the reproduction: check recorded traces
//! (e.g. dumped from a real SystemC model) against loose-ordering
//! properties, convert traces to VCD for waveform viewers, or generate
//! labelled stimuli from a property.
//!
//! ```text
//! lomon check <trace-file> <property>...      replay a trace against properties
//! lomon vcd   <trace-file>                    print the trace as VCD
//! lomon gen   <property> [seed [episodes]]    print a generated satisfying trace
//! lomon demo                                  record + check a platform run
//! ```

use std::process::ExitCode;

use lomon::core::monitor::build_monitor;
use lomon::core::parse::parse_property;
use lomon::core::verdict::{run_to_end, Monitor};
use lomon::gen::{generate, GeneratorConfig};
use lomon::tlm::scenario::{run_scenario, ScenarioConfig};
use lomon::trace::{read_trace, write_trace, write_vcd, Vocabulary};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") if args.len() >= 3 => check(&args[1], &args[2..]),
        Some("vcd") if args.len() == 2 => vcd(&args[1]),
        Some("gen") if args.len() >= 2 && args.len() <= 4 => gen(&args[1], &args[2..]),
        Some("demo") if args.len() == 1 => demo(),
        Some(command @ ("check" | "vcd" | "gen" | "demo")) => {
            eprintln!("error: wrong arguments for `lomon {command}`");
            usage()
        }
        Some(unknown) => {
            eprintln!("error: unknown command `{unknown}`");
            usage()
        }
        None => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!("usage:");
    eprintln!("  lomon check <trace-file> <property>...");
    eprintln!("  lomon vcd   <trace-file>");
    eprintln!("  lomon gen   <property> [seed [episodes]]");
    eprintln!("  lomon demo");
    eprintln!();
    eprintln!("property example:");
    eprintln!("  'all{{set_imgAddr, set_glAddr, set_glSize}} << start once'");
    ExitCode::from(2)
}

fn load(path: &str, voc: &mut Vocabulary) -> Result<lomon::trace::Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    read_trace(&text, voc).map_err(|e| e.to_string())
}

fn check(path: &str, properties: &[String]) -> ExitCode {
    let mut voc = Vocabulary::new();
    let trace = match load(path, &mut voc) {
        Ok(t) => t,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{path}: {} events, end at {}",
        trace.len(),
        trace.end_time()
    );
    let mut failures = 0;
    for text in properties {
        let property = match parse_property(text, &mut voc) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error in property:\n{}", e.display_with_source(text));
                return ExitCode::FAILURE;
            }
        };
        let mut monitor = match build_monitor(property, &voc) {
            Ok(m) => m,
            Err(errors) => {
                for e in errors {
                    eprintln!("ill-formed property `{text}`: {}", e.display(&voc));
                }
                return ExitCode::FAILURE;
            }
        };
        let verdict = run_to_end(&mut monitor, &trace);
        println!("  [{verdict}] {text}");
        if let Some(violation) = monitor.violation() {
            println!("      {}", violation.display(&voc));
            failures += 1;
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn vcd(path: &str) -> ExitCode {
    let mut voc = Vocabulary::new();
    match load(path, &mut voc) {
        Ok(trace) => {
            print!("{}", write_vcd(&trace, &voc));
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn gen(text: &str, rest: &[String]) -> ExitCode {
    let seed = match rest.first() {
        None => 1u64,
        Some(raw) => match raw.parse() {
            Ok(seed) => seed,
            Err(_) => {
                eprintln!("error: seed `{raw}` is not an unsigned integer");
                return usage();
            }
        },
    };
    let episodes = match rest.get(1) {
        None => 3u32,
        Some(raw) => match raw.parse() {
            Ok(episodes) => episodes,
            Err(_) => {
                eprintln!("error: episode count `{raw}` is not an unsigned integer");
                return usage();
            }
        },
    };
    let mut voc = Vocabulary::new();
    let property = match parse_property(text, &mut voc) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error in property:\n{}", e.display_with_source(text));
            return ExitCode::FAILURE;
        }
    };
    let config = GeneratorConfig {
        episodes,
        ..GeneratorConfig::new(seed)
    };
    let generated = generate(&property, &config);
    print!("{}", write_trace(&generated.trace, &voc));
    ExitCode::SUCCESS
}

fn demo() -> ExitCode {
    let report = run_scenario(&ScenarioConfig::nominal(1));
    println!("# trace recorded from the face-recognition platform (seed 1)");
    print!("{}", write_trace(&report.trace, &report.vocabulary));
    eprintln!();
    for (label, verdict) in &report.verdicts {
        eprintln!("online verdict: {label} → {verdict}");
    }
    ExitCode::SUCCESS
}
