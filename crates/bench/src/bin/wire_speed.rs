//! End-to-end **bytes → verdicts** cost of the wire-speed ingest path.
//!
//! The hot-loop bench prices a *pre-resolved* event; this one prices the
//! whole pipeline a deployment actually runs — trace text in, verdicts
//! out — and compares today's byte path against a faithful reconstruction
//! of the pre-wire-speed `String` pipelines on the `disjoint-50` workload
//! (rendered to trace text, ~20 bytes/event):
//!
//! * `string-stream` — the old `lomon watch`/`lomon serve` shape: one heap
//!   `String` per line (what `BufRead::lines` produced), one owned
//!   `String` per event name (`StreamLine::Event`), a SipHash
//!   `HashMap<String, Name>` probe per event (the old vocabulary index),
//!   and per-event dispatch.
//! * `string-file` — the old `lomon check` shape: copy the whole buffer
//!   into a `String` (`fs::read_to_string`), parse `str` lines into a
//!   fresh [`Trace`] through the SipHash probe, then batch-ingest.
//! * `wire` — the byte path this crate ships: [`decode_events_into`]
//!   lexes the bytes in place, resolves names against the frozen
//!   byte-keyed vocabulary table, fills one reused `Vec<TimedEvent>`, and
//!   batch-ingests. `wire-observed` is the same pipeline with
//!   [`IoMetrics`] attached (one histogram sample per buffer).
//!
//! Run `cargo run -p lomon-bench --bin wire_speed --release` to print the
//! table and (re)write `BENCH_wire_speed.json` (tracked at the repo root).
//!
//! `--check` is the CI gate: all pipelines must agree on every verdict
//! and per-property ops counter, the wire path must be at least
//! [`STREAM_GATE_SPEEDUP`]× faster end-to-end than the pre-wire-speed
//! streaming pipeline, and attaching decode telemetry must cost at most
//! [`OBS_OVERHEAD_GATE`]× of the detached pipeline. With `--baseline
//! <path>` the fresh stream speedup is additionally ratcheted against the
//! committed `BENCH_wire_speed.json` ([`BASELINE_TOLERANCE`]).

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Instant;

use lomon_bench::workloads::disjoint_with_vocabulary;
use lomon_engine::{Backend, DispatchMode, Engine, Session};
use lomon_obs::Registry;
use lomon_trace::{
    decode_events_into, decode_events_into_observed, parse_stream_line, parse_trace_line,
    write_trace, IoMetrics, Name, SimTime, StreamFormat, StreamLine, TimedEvent, Trace, TraceLine,
    Vocabulary,
};

/// The CI gate: the wire path must beat the pre-wire-speed streaming
/// pipeline end-to-end by at least this factor. Measured ≈4–5× on the
/// reference machine; the static floor leaves headroom for machine noise,
/// and the `--baseline` ratchet is the binding regression guard.
const STREAM_GATE_SPEEDUP: f64 = 3.0;

/// Attaching decode telemetry (`IoMetrics`, one histogram sample per
/// buffer) may cost at most this factor over the detached pipeline.
const OBS_OVERHEAD_GATE: f64 = 1.10;

/// A fresh stream speedup below `tolerance × committed` fails `--baseline`.
const BASELINE_TOLERANCE: f64 = 0.8;

/// Timed repetitions per pipeline; the minimum is reported. Interleaved
/// (see `main`) so load drift on a shared machine hits every pipeline
/// equally instead of skewing the ratios.
const REPS: usize = 9;

/// The pre-wire-speed streaming pipeline (`lomon watch` before the byte
/// path): String per line, String per name, SipHash probe, per-event
/// dispatch. `sip` stands in for the old vocabulary's `HashMap<String,
/// Name>` read side.
fn replay_string_stream(
    session: &mut Session<'_>,
    bytes: &[u8],
    sip: &HashMap<String, Name>,
) -> u128 {
    session.reset();
    let started = Instant::now();
    let mut end = SimTime::ZERO;
    // `BufRead::lines` is what the old loop drained: `read_until` into a
    // fresh `String` per line plus a UTF-8 validation pass, here over an
    // in-memory reader so disk speed stays out of the measurement.
    for line in std::io::BufRead::lines(std::io::Cursor::new(bytes)) {
        let line = line.expect("bench trace reads");
        match parse_stream_line(StreamFormat::Trace, &line).expect("bench trace parses") {
            None => {}
            Some(StreamLine::Event { time, name, .. }) => {
                let name = *sip.get(name.as_str()).expect("bench name is known");
                session.ingest(TimedEvent::new(name, time));
                end = time;
            }
            Some(StreamLine::End(time)) => {
                session.advance_time(time);
                end = time;
            }
        }
    }
    session.close(end);
    started.elapsed().as_nanos()
}

/// The pre-wire-speed file pipeline (`lomon check` before mmap + byte
/// lexing): copy the bytes into a `String` (`fs::read_to_string`), parse
/// into a fresh [`Trace`] through the SipHash probe, batch-ingest.
fn replay_string_file(
    session: &mut Session<'_>,
    bytes: &[u8],
    sip: &HashMap<String, Name>,
) -> u128 {
    session.reset();
    let started = Instant::now();
    let text = String::from_utf8(bytes.to_vec()).expect("bench trace is UTF-8");
    let mut trace = Trace::new();
    for line in text.lines() {
        match parse_trace_line(line).expect("bench trace parses") {
            None => {}
            Some(TraceLine::Event { time, name, .. }) => {
                let name = *sip.get(name).expect("bench name is known");
                trace.push(name, time);
            }
            Some(TraceLine::End(time)) => trace.set_end_time(time),
        }
    }
    session.ingest_batch(trace.events());
    session.close(trace.end_time());
    started.elapsed().as_nanos()
}

/// The wire-speed pipeline: byte-slice lexing, frozen-vocabulary name
/// resolution, one reused pre-resolved event buffer, batch ingest.
fn replay_wire(
    session: &mut Session<'_>,
    bytes: &[u8],
    voc: &Vocabulary,
    buf: &mut Vec<TimedEvent>,
    metrics: Option<&IoMetrics>,
) -> u128 {
    session.reset();
    let started = Instant::now();
    let summary = match metrics {
        None => decode_events_into(bytes, voc, buf),
        observed => decode_events_into_observed(bytes, voc, buf, observed),
    }
    .expect("bench trace decodes");
    session.ingest_batch(buf);
    let end = summary
        .end_time
        .or_else(|| buf.last().map(|e| e.time))
        .unwrap_or(SimTime::ZERO);
    session.close(end);
    started.elapsed().as_nanos()
}

/// Per-property `(verdict, ops)` digest — the identity oracle across
/// pipelines, as in the `hot_loop` bench.
fn digest(engine: &Engine, session: &Session<'_>) -> Vec<(lomon_core::Verdict, u64)> {
    (0..engine.len())
        .map(|id| (session.verdict(id), session.ops(id)))
        .collect()
}

struct Row {
    name: &'static str,
    events: usize,
    bytes: usize,
    stream_ns: f64,
    file_ns: f64,
    wire_ns: f64,
    observed_ns: f64,
}

impl Row {
    /// Wire over the pre-wire-speed streaming pipeline — the headline.
    fn speedup(&self) -> f64 {
        self.stream_ns / self.wire_ns.max(f64::MIN_POSITIVE)
    }

    /// Wire over the pre-wire-speed file pipeline.
    fn file_speedup(&self) -> f64 {
        self.file_ns / self.wire_ns.max(f64::MIN_POSITIVE)
    }

    /// Observed-over-detached wire cost (1.0 = telemetry is free).
    fn observed_overhead(&self) -> f64 {
        self.observed_ns / self.wire_ns.max(f64::MIN_POSITIVE)
    }

    fn wire_mb_per_sec(&self) -> f64 {
        let secs = self.wire_ns * self.events as f64 / 1e9;
        self.bytes as f64 / 1e6 / secs.max(f64::MIN_POSITIVE)
    }
}

fn render_json(rows: &[Row]) -> String {
    let mut out = String::from("{\n  \"bench\": \"wire_speed\",\n  \"unit\": \"ns/event\",\n");
    out.push_str("  \"workloads\": [\n");
    for (k, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"events\": {}, \"bytes\": {}, \
             \"string_stream_ns_per_event\": {:.2}, \"string_file_ns_per_event\": {:.2}, \
             \"wire_ns_per_event\": {:.2}, \"speedup\": {:.2}, \"file_speedup\": {:.2}, \
             \"observed_overhead\": {:.3}, \"wire_mb_per_sec\": {:.0}}}{}\n",
            row.name,
            row.events,
            row.bytes,
            row.stream_ns,
            row.file_ns,
            row.wire_ns,
            row.speedup(),
            row.file_speedup(),
            row.observed_overhead(),
            row.wire_mb_per_sec(),
            if k + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extract `(name, speedup)` pairs from a committed `BENCH_wire_speed.json`
/// (one workload object per line, see [`render_json`]).
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let field = |line: &str, key: &str| -> Option<String> {
        let at = line.find(key)? + key.len();
        let rest = line[at..].trim_start_matches([':', ' ', '"']);
        let end = rest.find(['"', ',', '}']).unwrap_or(rest.len());
        Some(rest[..end].to_owned())
    };
    text.lines()
        .filter_map(|line| {
            let name = field(line, "\"name\"")?;
            let speedup = field(line, "\"speedup\"")?.parse().ok()?;
            Some((name, speedup))
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_mode = args.iter().any(|a| a == "--check");
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|at| args.get(at + 1).cloned());
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|at| args.get(at + 1).cloned());

    // The check matrix is smaller so the CI gate stays fast; the ratios it
    // gates are per-event and stable across the sizes.
    let rounds = if check_mode { 2_000 } else { 10_000 };
    let (engine, voc, events) = disjoint_with_vocabulary(50, rounds);

    // Render the workload to trace text — the bytes every pipeline starts
    // from — with an explicit `end` line so all pipelines close at the
    // same instant.
    let mut trace = Trace::from_pairs(events.iter().map(|e| (e.time, e.name)));
    trace.set_end_time(trace.end_time());
    let text = write_trace(&trace, &voc);
    let bytes = text.as_bytes();

    // The old vocabulary's read side: a SipHash-keyed owned-string map.
    let sip: HashMap<String, Name> = voc
        .iter()
        .map(|name| (voc.resolve(name).to_owned(), name))
        .collect();

    let registry = Registry::new();
    let io_metrics = IoMetrics::register(&registry);
    let mut sessions: Vec<Session<'_>> = (0..4)
        .map(|_| engine.session_with_backend(DispatchMode::Indexed, Backend::Fused))
        .collect();
    let mut best = [u128::MAX; 4];
    let mut buf: Vec<TimedEvent> = Vec::new();
    for _ in 0..REPS {
        let [s0, s1, s2, s3] = sessions.as_mut_slice() else {
            unreachable!("exactly four pipelines measured")
        };
        let t0 = replay_string_stream(s0, bytes, &sip);
        let t1 = replay_string_file(s1, bytes, &sip);
        let t2 = replay_wire(s2, bytes, &voc, &mut buf, None);
        let t3 = replay_wire(s3, bytes, &voc, &mut buf, Some(&io_metrics));
        if std::env::var_os("WIRE_SPEED_DEBUG").is_some() {
            eprintln!(
                "rep: stream {:.1} file {:.1} wire {:.1} obs {:.1}",
                t0 as f64 / events.len() as f64,
                t1 as f64 / events.len() as f64,
                t2 as f64 / events.len() as f64,
                t3 as f64 / events.len() as f64
            );
        }
        best[0] = best[0].min(t0);
        best[1] = best[1].min(t1);
        best[2] = best[2].min(t2);
        best[3] = best[3].min(t3);
    }

    let per_event = |nanos: u128| nanos as f64 / events.len() as f64;
    let row = Row {
        name: "disjoint-50",
        events: events.len(),
        bytes: bytes.len(),
        stream_ns: per_event(best[0]),
        file_ns: per_event(best[1]),
        wire_ns: per_event(best[2]),
        observed_ns: per_event(best[3]),
    };

    println!("wire speed — bytes → verdicts, byte path vs pre-wire-speed String pipelines (best of {REPS})");
    println!(
        "{:>12} {:>9} {:>10} {:>10} {:>9} {:>9} {:>8} {:>8} {:>8} {:>9}",
        "workload",
        "events",
        "bytes",
        "stream ns",
        "file ns",
        "wire ns",
        "str/wir",
        "fil/wir",
        "obs ovh",
        "wire MB/s"
    );
    println!(
        "{:>12} {:>9} {:>10} {:>10.1} {:>9.1} {:>9.1} {:>7.1}x {:>7.1}x {:>7.2}x {:>9.0}",
        row.name,
        row.events,
        row.bytes,
        row.stream_ns,
        row.file_ns,
        row.wire_ns,
        row.speedup(),
        row.file_speedup(),
        row.observed_overhead(),
        row.wire_mb_per_sec(),
    );
    println!();

    // Differential gate: every pipeline decoded the same bytes, so every
    // pipeline must have reached the same verdict with the same ops
    // counter on every property.
    let reference = digest(&engine, &sessions[0]);
    let mut ok = true;
    for (k, session) in sessions.iter().enumerate().skip(1) {
        let other = digest(&engine, session);
        if other != reference {
            for id in 0..engine.len() {
                if reference[id] != other[id] {
                    eprintln!(
                        "MISMATCH: property {id}: pipeline 0 {:?} vs pipeline {k} {:?}",
                        reference[id], other[id]
                    );
                }
            }
            ok = false;
        }
    }
    if !ok {
        println!("FAIL: pipelines disagree on verdicts or ops counters");
    }

    if check_mode {
        if row.speedup() < STREAM_GATE_SPEEDUP {
            println!(
                "FAIL: wire speedup {:.2}x below the {STREAM_GATE_SPEEDUP}x gate",
                row.speedup()
            );
            ok = false;
        }
        if row.observed_overhead() > OBS_OVERHEAD_GATE {
            println!(
                "FAIL: decode telemetry costs {:.3}x (gate {OBS_OVERHEAD_GATE}x detached)",
                row.observed_overhead()
            );
            ok = false;
        }
        if let Some(path) = &baseline_path {
            match std::fs::read_to_string(path) {
                Ok(text) => {
                    let committed = parse_baseline(&text);
                    match committed.iter().find(|(n, _)| n == row.name) {
                        Some((_, base)) => {
                            let floor = base * BASELINE_TOLERANCE;
                            if row.speedup() < floor {
                                println!(
                                    "FAIL: wire speedup {:.2}x regressed below {floor:.2}x \
                                     ({BASELINE_TOLERANCE} x committed {base:.2}x)",
                                    row.speedup()
                                );
                                ok = false;
                            }
                        }
                        None => {
                            println!("FAIL: baseline {path} has no workload `{}`", row.name);
                            ok = false;
                        }
                    }
                }
                Err(e) => {
                    println!("FAIL: cannot read baseline {path}: {e}");
                    ok = false;
                }
            }
        }
        if ok {
            println!(
                "OK: pipelines verdict- and ops-identical; wire >= {STREAM_GATE_SPEEDUP}x the \
                 String streaming pipeline end-to-end; decode telemetry <= \
                 {OBS_OVERHEAD_GATE}x detached"
            );
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    } else {
        let path = out_path.unwrap_or_else(|| "BENCH_wire_speed.json".to_owned());
        match std::fs::write(&path, render_json(&[row])) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    }
}
