//! The daemon's metric families, registered next to the engine's on the
//! shared registry so the existing `/metrics` listener exposes both.
//!
//! Every failure-handling path in the server is observable: each of the
//! four robustness mechanisms (fault isolation, shedding, lifecycle,
//! chaos recovery) bumps its own counters, so a fleet operator can tell
//! "clients send garbage" from "we are shedding load" from "reloads keep
//! failing" without reading a single log line.

use std::sync::Arc;

use lomon_obs::{Counter, Gauge, Registry};

/// Counters and gauges of the serving layer. All relaxed atomics —
/// bumped on connection lifecycle edges, never in the per-event loop.
#[derive(Debug)]
pub struct ServeMetrics {
    /// Connections accepted (including ones later shed or faulted).
    pub connections: Arc<Counter>,
    /// Streams that ran to a clean final report (an `end` frame or a
    /// clean EOF).
    pub streams: Arc<Counter>,
    /// Events ingested across all streams (credited at stream close).
    pub events: Arc<Counter>,
    /// Streams currently in flight.
    pub active_streams: Arc<Gauge>,
    /// Unparsable frames (bad JSON, bad grammar) — each finalizes its
    /// stream with an error frame.
    pub parse_errors: Arc<Counter>,
    /// Protocol violations: non-monotone timestamps, oversized frames,
    /// invalid UTF-8.
    pub protocol_errors: Arc<Counter>,
    /// Connections that vanished mid-frame (torn final frame).
    pub disconnects: Arc<Counter>,
    /// Connections shed at accept time because the in-flight budget was
    /// exhausted.
    pub overloads: Arc<Counter>,
    /// Streams reaped after sending nothing for the idle timeout.
    pub idle_reaps: Arc<Counter>,
    /// Connections abandoned because the client would not read our
    /// verdicts within the write timeout (slow-loris readers).
    pub slow_closes: Arc<Counter>,
    /// Successful rulebook hot-reloads.
    pub reloads: Arc<Counter>,
    /// Rejected rulebook hot-reloads (compile or lint failure).
    pub reload_failures: Arc<Counter>,
    /// Connection handlers that panicked (always 0 in a healthy build —
    /// the chaos suite asserts it stays 0 under every injected fault).
    pub panics: Arc<Counter>,
    /// In-flight streams finalized by a drain shutdown.
    pub drained: Arc<Counter>,
}

impl ServeMetrics {
    /// Register every serve family on `registry`.
    pub fn register(registry: &Registry) -> Arc<ServeMetrics> {
        Arc::new(ServeMetrics {
            connections: registry.counter(
                "lomon_serve_connections_total",
                "Connections accepted by the serve listener",
            ),
            streams: registry.counter(
                "lomon_serve_streams_total",
                "Streams finalized with a clean summary",
            ),
            events: registry.counter(
                "lomon_serve_events_total",
                "Events ingested across all serve streams",
            ),
            active_streams: registry
                .gauge("lomon_serve_active_streams", "Streams currently in flight"),
            parse_errors: registry.counter(
                "lomon_serve_parse_errors_total",
                "Frames rejected by the stream grammar",
            ),
            protocol_errors: registry.counter(
                "lomon_serve_protocol_errors_total",
                "Protocol violations (time travel, oversized frames, invalid UTF-8)",
            ),
            disconnects: registry.counter(
                "lomon_serve_disconnects_total",
                "Connections lost mid-frame",
            ),
            overloads: registry.counter(
                "lomon_serve_overloads_total",
                "Connections shed because the in-flight budget was exhausted",
            ),
            idle_reaps: registry.counter(
                "lomon_serve_idle_reaps_total",
                "Streams reaped by the idle timeout",
            ),
            slow_closes: registry.counter(
                "lomon_serve_slow_closes_total",
                "Connections abandoned on a write timeout (slow readers)",
            ),
            reloads: registry.counter(
                "lomon_serve_reloads_total",
                "Successful rulebook hot-reloads",
            ),
            reload_failures: registry.counter(
                "lomon_serve_reload_failures_total",
                "Rulebook hot-reloads rejected with diagnostics",
            ),
            panics: registry.counter(
                "lomon_serve_panics_total",
                "Connection handlers that panicked (contained per stream)",
            ),
            drained: registry.counter(
                "lomon_serve_drained_streams_total",
                "In-flight streams finalized by drain shutdown",
            ),
        })
    }
}
