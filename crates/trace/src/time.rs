//! Simulated time.
//!
//! The paper maps the `t` of a timed implication constraint "directly to the
//! simulation time of the SystemC simulation kernel" (Section 4). [`SimTime`]
//! plays the role of `sc_core::sc_time`: a monotone, integer simulated clock.
//! The resolution is one picosecond, which covers the paper's case-study
//! delays (nanoseconds to milliseconds) with a `u64` range of about 213 days
//! of simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or duration of) simulated time, in picoseconds.
///
/// `SimTime` is used both as an absolute timestamp (time since simulation
/// start) and as a duration; arithmetic is saturating-free and panics on
/// overflow in debug builds, like the standard integer types.
///
/// # Example
///
/// ```
/// use lomon_trace::SimTime;
/// let t = SimTime::from_ns(90) + SimTime::from_ns(20);
/// assert_eq!(t, SimTime::from_ns(110));
/// assert_eq!(t.as_ps(), 110_000);
/// assert_eq!(format!("{t}"), "110ns");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero (simulation start).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as "never" for deadlines.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Construct from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Construct from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Construct from seconds.
    pub const fn from_sec(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }

    /// The raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This time expressed in whole nanoseconds (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Saturating subtraction: `self - other`, or zero if `other > self`.
    pub const fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition, `None` on overflow. Useful when computing
    /// deadlines from `SimTime::MAX` sentinels.
    pub const fn checked_add(self, other: SimTime) -> Option<SimTime> {
        match self.0.checked_add(other.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    /// Render with the coarsest unit that divides the value exactly:
    /// `1500ps`, `3ns`, `25us`, `1ms`, `2s`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        let (value, unit) = if ps == 0 {
            (0, "s")
        } else if ps.is_multiple_of(1_000_000_000_000) {
            (ps / 1_000_000_000_000, "s")
        } else if ps.is_multiple_of(1_000_000_000) {
            (ps / 1_000_000_000, "ms")
        } else if ps.is_multiple_of(1_000_000) {
            (ps / 1_000_000, "us")
        } else if ps.is_multiple_of(1_000) {
            (ps / 1_000, "ns")
        } else {
            (ps, "ps")
        };
        write!(f, "{value}{unit}")
    }
}

/// Parse a time literal like `100ns`, `25 us`, `3ms`, `1s`, `500ps`.
///
/// Used by the property language (`within 60000 ns`) and the trace file
/// reader. Bare numbers are rejected: a unit keeps specifications readable
/// and unambiguous.
///
/// # Errors
///
/// Returns a human-readable message when the number or the unit is malformed.
pub fn parse_sim_time(text: &str) -> Result<SimTime, String> {
    let text = text.trim();
    let split = text
        .find(|c: char| !c.is_ascii_digit())
        .ok_or_else(|| format!("time literal `{text}` is missing a unit (ps/ns/us/ms/s)"))?;
    if split == 0 {
        return Err(format!("time literal `{text}` is missing digits"));
    }
    let (digits, unit) = text.split_at(split);
    let value: u64 = digits
        .parse()
        .map_err(|_| format!("invalid number in time literal `{text}`"))?;
    match unit.trim() {
        "ps" => Ok(SimTime::from_ps(value)),
        "ns" => Ok(SimTime::from_ns(value)),
        "us" => Ok(SimTime::from_us(value)),
        "ms" => Ok(SimTime::from_ms(value)),
        "s" => Ok(SimTime::from_sec(value)),
        other => Err(format!("unknown time unit `{other}` in `{text}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1_000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_sec(1), SimTime::from_ms(1_000));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(100);
        let b = SimTime::from_ns(40);
        assert_eq!(a - b, SimTime::from_ns(60));
        assert_eq!(a + b, SimTime::from_ns(140));
        assert_eq!(a * 3, SimTime::from_ns(300));
        assert_eq!(a / 4, SimTime::from_ns(25));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        c -= SimTime::from_ns(10);
        assert_eq!(c, SimTime::from_ns(130));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(SimTime::MAX.checked_add(SimTime::from_ps(1)), None);
        assert_eq!(
            SimTime::from_ps(1).checked_add(SimTime::from_ps(2)),
            Some(SimTime::from_ps(3))
        );
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = [SimTime::from_ns(1), SimTime::from_ns(2)].into_iter().sum();
        assert_eq!(total, SimTime::from_ns(3));
    }

    #[test]
    fn display_picks_coarsest_exact_unit() {
        assert_eq!(SimTime::ZERO.to_string(), "0s");
        assert_eq!(SimTime::from_ps(1500).to_string(), "1500ps");
        assert_eq!(SimTime::from_ns(3).to_string(), "3ns");
        assert_eq!(SimTime::from_us(25).to_string(), "25us");
        assert_eq!(SimTime::from_ms(1).to_string(), "1ms");
        assert_eq!(SimTime::from_sec(2).to_string(), "2s");
    }

    #[test]
    fn parse_valid_literals() {
        assert_eq!(parse_sim_time("100ns"), Ok(SimTime::from_ns(100)));
        assert_eq!(parse_sim_time("25 us"), Ok(SimTime::from_us(25)));
        assert_eq!(parse_sim_time(" 3ms "), Ok(SimTime::from_ms(3)));
        assert_eq!(parse_sim_time("7s"), Ok(SimTime::from_sec(7)));
        assert_eq!(parse_sim_time("500ps"), Ok(SimTime::from_ps(500)));
    }

    #[test]
    fn parse_rejects_malformed_literals() {
        assert!(parse_sim_time("100").is_err());
        assert!(parse_sim_time("ns").is_err());
        assert!(parse_sim_time("12parsecs").is_err());
        assert!(parse_sim_time("").is_err());
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_ns(1) < SimTime::from_us(1));
        assert!(SimTime::MAX > SimTime::from_sec(1_000_000));
    }
}
