//! A miniature synchronous dataflow runtime.
//!
//! The paper validates its recognizer constructions by programming them in
//! **Lustre** and testing them automatically. This module provides just
//! enough of a synchronous language to replay that methodology in Rust: a
//! network of boolean/integer *signals* computed by combinational operators
//! plus unit-delay registers (`pre` with an initial value, i.e. Lustre's
//! `init -> pre x`). All signals advance together, one *tick* at a time.
//!
//! Networks are built with [`NetworkBuilder`]; evaluation order is the
//! construction order, so combinational operands must be declared before
//! use (registers break the cycles, as in any synchronous language).
//!
//! # Example
//!
//! ```
//! use lomon_sync::network::{NetworkBuilder, Value};
//!
//! // A saturating counter: cnt = 0 -> pre(min(cnt + inc, 3))
//! let mut b = NetworkBuilder::new();
//! let inc = b.input_bool("inc");
//! let cnt = b.register_int("cnt", 0);
//! let one = b.const_int(1);
//! let zero = b.const_int(0);
//! let step = b.mux_int(inc, one, zero);
//! let next = b.add(cnt, step);
//! b.drive_register(cnt, next);
//! let mut net = b.build();
//!
//! net.set_bool(inc, true);
//! net.tick();
//! assert_eq!(net.get(cnt), Value::Int(1));
//! ```

use std::collections::HashMap;

/// A signal value: boolean or bounded integer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// A boolean wire.
    Bool(bool),
    /// An integer wire (counters).
    Int(i64),
}

impl Value {
    /// The boolean payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is an integer.
    pub fn as_bool(self) -> bool {
        match self {
            Value::Bool(b) => b,
            Value::Int(_) => panic!("expected a boolean signal"),
        }
    }

    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is a boolean.
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Bool(_) => panic!("expected an integer signal"),
        }
    }
}

/// A handle for one signal in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signal(usize);

#[derive(Debug, Clone)]
enum Op {
    InputBool,
    ConstBool(bool),
    ConstInt(i64),
    And(Vec<Signal>),
    Or(Vec<Signal>),
    Not(Signal),
    /// Register (unit delay); `drive` is patched by `drive_register`.
    Register {
        init: Value,
        drive: Option<Signal>,
    },
    Add(Signal, Signal),
    /// `if sel then a else b` on integers.
    MuxInt(Signal, Signal, Signal),
    /// `a >= b` on integers.
    Ge(Signal, Signal),
    /// `a == b` on integers.
    EqInt(Signal, Signal),
}

/// Builder for a [`Network`].
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    ops: Vec<Op>,
    names: Vec<String>,
}

impl NetworkBuilder {
    /// Start an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, name: &str, op: Op) -> Signal {
        self.ops.push(op);
        self.names.push(name.to_owned());
        Signal(self.ops.len() - 1)
    }

    /// A boolean input, set from outside before each tick.
    pub fn input_bool(&mut self, name: &str) -> Signal {
        self.push(name, Op::InputBool)
    }

    /// A boolean constant.
    pub fn const_bool(&mut self, value: bool) -> Signal {
        self.push("const", Op::ConstBool(value))
    }

    /// An integer constant.
    pub fn const_int(&mut self, value: i64) -> Signal {
        self.push("const", Op::ConstInt(value))
    }

    /// Conjunction of boolean signals.
    pub fn and(&mut self, parts: &[Signal]) -> Signal {
        self.push("and", Op::And(parts.to_vec()))
    }

    /// Disjunction of boolean signals.
    pub fn or(&mut self, parts: &[Signal]) -> Signal {
        self.push("or", Op::Or(parts.to_vec()))
    }

    /// Negation.
    pub fn not(&mut self, a: Signal) -> Signal {
        self.push("not", Op::Not(a))
    }

    /// A boolean register (`init -> pre x`); drive it later with
    /// [`NetworkBuilder::drive_register`].
    pub fn register_bool(&mut self, name: &str, init: bool) -> Signal {
        self.push(
            name,
            Op::Register {
                init: Value::Bool(init),
                drive: None,
            },
        )
    }

    /// An integer register.
    pub fn register_int(&mut self, name: &str, init: i64) -> Signal {
        self.push(
            name,
            Op::Register {
                init: Value::Int(init),
                drive: None,
            },
        )
    }

    /// Connect a register's next-value input.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a register or is already driven.
    pub fn drive_register(&mut self, reg: Signal, next: Signal) {
        match &mut self.ops[reg.0] {
            Op::Register { drive, .. } => {
                assert!(drive.is_none(), "register driven twice");
                *drive = Some(next);
            }
            _ => panic!("drive_register on a non-register signal"),
        }
    }

    /// Integer addition.
    pub fn add(&mut self, a: Signal, b: Signal) -> Signal {
        self.push("add", Op::Add(a, b))
    }

    /// Integer multiplexer: `if sel { a } else { b }`.
    pub fn mux_int(&mut self, sel: Signal, a: Signal, b: Signal) -> Signal {
        self.push("mux", Op::MuxInt(sel, a, b))
    }

    /// `a >= b`.
    pub fn ge(&mut self, a: Signal, b: Signal) -> Signal {
        self.push("ge", Op::Ge(a, b))
    }

    /// `a == b` (integers).
    pub fn eq_int(&mut self, a: Signal, b: Signal) -> Signal {
        self.push("eq", Op::EqInt(a, b))
    }

    /// Finish construction.
    ///
    /// # Panics
    ///
    /// Panics if some register was never driven, or if a combinational
    /// operator reads a non-register signal declared after it (causal
    /// cycle).
    pub fn build(self) -> Network {
        for (idx, op) in self.ops.iter().enumerate() {
            let check = |operand: &Signal| {
                let combinational_forward =
                    operand.0 >= idx && !matches!(self.ops[operand.0], Op::Register { .. });
                assert!(
                    !combinational_forward,
                    "signal `{}` reads a later combinational signal `{}`",
                    self.names[idx], self.names[operand.0]
                );
            };
            match op {
                Op::And(parts) | Op::Or(parts) => parts.iter().for_each(check),
                Op::Not(a) => check(a),
                Op::Add(a, b) | Op::Ge(a, b) | Op::EqInt(a, b) => {
                    check(a);
                    check(b);
                }
                Op::MuxInt(s, a, b) => {
                    check(s);
                    check(a);
                    check(b);
                }
                Op::Register { drive, .. } => {
                    assert!(
                        drive.is_some(),
                        "register `{}` was never driven",
                        self.names[idx]
                    );
                }
                Op::InputBool | Op::ConstBool(_) | Op::ConstInt(_) => {}
            }
        }
        let values = self
            .ops
            .iter()
            .map(|op| match op {
                Op::Register { init, .. } => *init,
                Op::ConstBool(b) => Value::Bool(*b),
                Op::ConstInt(v) => Value::Int(*v),
                Op::InputBool => Value::Bool(false),
                _ => Value::Bool(false),
            })
            .collect();
        Network {
            ops: self.ops,
            names: self.names,
            values,
        }
    }
}

/// A built synchronous network; see the module docs.
#[derive(Debug, Clone)]
pub struct Network {
    ops: Vec<Op>,
    names: Vec<String>,
    values: Vec<Value>,
}

impl Network {
    /// Set a boolean input for the upcoming tick.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is not an input.
    pub fn set_bool(&mut self, signal: Signal, value: bool) {
        assert!(
            matches!(self.ops[signal.0], Op::InputBool),
            "set_bool on non-input `{}`",
            self.names[signal.0]
        );
        self.values[signal.0] = Value::Bool(value);
    }

    /// Clear every input to `false` (convenient between ticks).
    pub fn clear_inputs(&mut self) {
        for (idx, op) in self.ops.iter().enumerate() {
            if matches!(op, Op::InputBool) {
                self.values[idx] = Value::Bool(false);
            }
        }
    }

    /// Current value of a signal (post-tick for combinational signals,
    /// current state for registers).
    pub fn get(&self, signal: Signal) -> Value {
        self.values[signal.0]
    }

    /// Advance one synchronous instant: recompute combinational signals in
    /// declaration order, then update every register from its drive.
    pub fn tick(&mut self) {
        for idx in 0..self.ops.len() {
            let value = match &self.ops[idx] {
                Op::InputBool | Op::Register { .. } | Op::ConstBool(_) | Op::ConstInt(_) => {
                    continue
                }
                Op::And(parts) => Value::Bool(parts.iter().all(|s| self.values[s.0].as_bool())),
                Op::Or(parts) => Value::Bool(parts.iter().any(|s| self.values[s.0].as_bool())),
                Op::Not(a) => Value::Bool(!self.values[a.0].as_bool()),
                Op::Add(a, b) => Value::Int(self.values[a.0].as_int() + self.values[b.0].as_int()),
                Op::MuxInt(sel, a, b) => {
                    if self.values[sel.0].as_bool() {
                        self.values[a.0]
                    } else {
                        self.values[b.0]
                    }
                }
                Op::Ge(a, b) => Value::Bool(self.values[a.0].as_int() >= self.values[b.0].as_int()),
                Op::EqInt(a, b) => {
                    Value::Bool(self.values[a.0].as_int() == self.values[b.0].as_int())
                }
            };
            self.values[idx] = value;
        }
        // Registers load simultaneously at the end of the instant.
        let mut updates: Vec<(usize, Value)> = Vec::new();
        for (idx, op) in self.ops.iter().enumerate() {
            if let Op::Register { drive, .. } = op {
                let next = drive.expect("registers are driven (checked in build)");
                updates.push((idx, self.values[next.0]));
            }
        }
        for (idx, value) in updates {
            self.values[idx] = value;
        }
    }

    /// Look up a signal by the name given at construction (first match).
    pub fn find(&self, name: &str) -> Option<Signal> {
        self.names.iter().position(|n| n == name).map(Signal)
    }

    /// Number of signals (for size reporting).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the network has no signals.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Count registers and their state bits (booleans = 1, integers = 64).
    pub fn state_bits(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Register {
                    init: Value::Bool(_),
                    ..
                } => 1,
                Op::Register {
                    init: Value::Int(_),
                    ..
                } => 64,
                _ => 0,
            })
            .sum()
    }

    /// Export the values of all named registers (debugging aid).
    pub fn register_snapshot(&self) -> HashMap<String, Value> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| matches!(op, Op::Register { .. }))
            .map(|(idx, _)| (self.names[idx].clone(), self.values[idx]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_logic() {
        let mut b = NetworkBuilder::new();
        let t = b.const_bool(true);
        let f = b.const_bool(false);
        let and = b.and(&[t, f]);
        let or = b.or(&[t, f]);
        let not = b.not(f);
        let mut net = b.build();
        net.tick();
        assert_eq!(net.get(and), Value::Bool(false));
        assert_eq!(net.get(or), Value::Bool(true));
        assert_eq!(net.get(not), Value::Bool(true));
    }

    #[test]
    fn register_delays_by_one_tick() {
        let mut b = NetworkBuilder::new();
        let inp = b.input_bool("in");
        let reg = b.register_bool("reg", false);
        b.drive_register(reg, inp);
        let mut net = b.build();

        net.set_bool(inp, true);
        // Before the tick the register still holds its init value.
        assert_eq!(net.get(reg), Value::Bool(false));
        net.tick();
        assert_eq!(net.get(reg), Value::Bool(true));
        net.set_bool(inp, false);
        net.tick();
        assert_eq!(net.get(reg), Value::Bool(false));
    }

    #[test]
    fn counter_network() {
        let mut b = NetworkBuilder::new();
        let inc = b.input_bool("inc");
        let cnt = b.register_int("cnt", 0);
        let one = b.const_int(1);
        let zero = b.const_int(0);
        let delta = b.mux_int(inc, one, zero);
        let next = b.add(cnt, delta);
        b.drive_register(cnt, next);
        let mut net = b.build();

        for _ in 0..3 {
            net.set_bool(inc, true);
            net.tick();
        }
        net.set_bool(inc, false);
        net.tick();
        assert_eq!(net.get(cnt), Value::Int(3));
    }

    #[test]
    fn comparisons() {
        let mut b = NetworkBuilder::new();
        let a = b.const_int(3);
        let c = b.const_int(5);
        let ge = b.ge(c, a);
        let ge2 = b.ge(a, c);
        let eq = b.eq_int(a, a);
        let mut net = b.build();
        net.tick();
        assert_eq!(net.get(ge), Value::Bool(true));
        assert_eq!(net.get(ge2), Value::Bool(false));
        assert_eq!(net.get(eq), Value::Bool(true));
    }

    #[test]
    #[should_panic(expected = "never driven")]
    fn undriven_register_panics() {
        let mut b = NetworkBuilder::new();
        b.register_bool("reg", false);
        b.build();
    }

    #[test]
    #[should_panic(expected = "driven twice")]
    fn doubly_driven_register_panics() {
        let mut b = NetworkBuilder::new();
        let r = b.register_bool("reg", false);
        let t = b.const_bool(true);
        b.drive_register(r, t);
        b.drive_register(r, t);
    }

    #[test]
    #[should_panic(expected = "later combinational")]
    fn causal_cycle_detected() {
        let mut b = NetworkBuilder::new();
        // or reads itself through a forward combinational reference:
        // simulate by wiring and->or where or comes later, then making
        // `and` read `or`.
        let placeholder = b.input_bool("x");
        let and = b.and(&[placeholder, Signal(2)]); // refers to `or`, built next
        let _or = b.or(&[and]);
        b.build();
    }

    #[test]
    fn registers_load_simultaneously() {
        // Swap network: a <- b, b <- a each tick.
        let mut b = NetworkBuilder::new();
        let ra = b.register_int("a", 1);
        let rb = b.register_int("b", 2);
        b.drive_register(ra, rb);
        b.drive_register(rb, ra);
        let mut net = b.build();
        net.tick();
        assert_eq!(net.get(ra), Value::Int(2));
        assert_eq!(net.get(rb), Value::Int(1));
        net.tick();
        assert_eq!(net.get(ra), Value::Int(1));
        assert_eq!(net.get(rb), Value::Int(2));
    }

    #[test]
    fn snapshot_and_introspection() {
        let mut b = NetworkBuilder::new();
        let r = b.register_int("cnt", 7);
        let z = b.const_int(0);
        b.drive_register(r, z);
        let net = b.build();
        assert!(!net.is_empty());
        assert_eq!(net.state_bits(), 64);
        assert_eq!(net.register_snapshot()["cnt"], Value::Int(7));
        assert_eq!(net.find("cnt"), Some(r));
        assert_eq!(net.find("missing"), None);
    }

    #[test]
    fn clear_inputs_resets_only_inputs() {
        let mut b = NetworkBuilder::new();
        let i = b.input_bool("i");
        let r = b.register_bool("r", true);
        let t = b.const_bool(true);
        b.drive_register(r, t);
        let mut net = b.build();
        net.set_bool(i, true);
        net.clear_inputs();
        assert_eq!(net.get(i), Value::Bool(false));
        assert_eq!(net.get(r), Value::Bool(true));
    }
}
