//! # lomon-obs — zero-overhead telemetry for the lomon workspace
//!
//! A hand-rolled, dependency-free metrics subsystem: a [`Registry`] of
//! named atomic [`Counter`]s, [`Gauge`]s, and log-bucketed
//! [`Histogram`]s, rendered as Prometheus text ([`Registry::render_prometheus`])
//! or NDJSON snapshots ([`Registry::render_ndjson`]), served over a
//! minimal background-thread HTTP listener ([`MetricsServer`]), timed
//! with a [`Stopwatch`] span API, and — for offline timeline analysis —
//! traced with a [`Tracer`] that renders its spans as Chrome trace-event
//! JSON (`chrome://tracing` / Perfetto).
//!
//! The design constraint, following NISTT's non-intrusive-observation
//! principle, is that instrumentation must not perturb the system under
//! observation: every record operation is a relaxed atomic with no
//! allocation, and the engine/SMC integrations flush *deltas at batch
//! boundaries* rather than touching atomics per event — `obs_overhead
//! --check` in `lomon-bench` gates the instrumented fused hot path at
//! ≤ 1.10× the uninstrumented one.

#![warn(missing_docs)]

mod metric;
mod registry;
mod server;
mod stopwatch;
mod tracer;

pub use metric::{bucket_index, bucket_upper, Counter, Gauge, Histogram, BUCKETS};
pub use registry::{Label, Registry};
pub use server::MetricsServer;
pub use stopwatch::Stopwatch;
pub use tracer::{SpanGuard, Tracer};
