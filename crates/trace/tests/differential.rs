//! Differential tests: the wire-speed byte decoders must be observably
//! identical to the legacy string parsers — same events, same error
//! messages, same 1-based line numbers, same telemetry accounting — over
//! random well-formed *and* malformed traces.
//!
//! The text grammar is compared against the live string parser
//! ([`read_trace`]/[`parse_trace_line`], still the source of truth for
//! Unicode corner cases). The NDJSON grammar's borrowed scanner replaced
//! the old char-iterator parser outright, so that parser is preserved
//! here verbatim as the reference oracle.

use proptest::prelude::*;

use lomon_trace::io::IoMetrics;
use lomon_trace::ndjson::{parse_ndjson_line, StreamLine};
use lomon_trace::{
    byte_lines, parse_stream_line, parse_stream_line_bytes, parse_trace_line,
    parse_trace_line_bytes, read_trace, read_trace_bytes, Direction, SimTime, StreamFormat,
    Vocabulary,
};

// ---------------------------------------------------------------------
// Random trace-text generation: a mix of valid events, comments, blanks,
// `end` markers, and every malformed shape the grammar can reject, with
// some Unicode whitespace/name seasoning so the byte lexer's non-ASCII
// fallback is exercised too.
// ---------------------------------------------------------------------

const TIMES: &[&str] = &[
    "10ns", "0ps", "5us", "3ms", "2s", "999ns", "banana", "12", "", "7 ns", "10xs",
];
const DIRS: &[&str] = &["in", "out", "sideways", "IN", ""];
const NAMES: &[&str] = &[
    "a",
    "start",
    "set_imgAddr",
    "caf\u{e9}",
    "\u{65e5}\u{672c}",
    "#hash",
    "end",
    "in",
];
const SPACES: &[&str] = &[" ", "  ", "\t", " \t ", "\u{a0}", "\u{2003}"];

fn pick<'a>(pool: &'a [&'a str], ix: u8) -> &'a str {
    pool[ix as usize % pool.len()]
}

/// Render one line from a small random tuple. `kind` selects the shape,
/// the other indices select the ingredients (many combinations are
/// malformed on purpose).
fn render_line(kind: u8, t: u8, d: u8, n: u8, s: u8) -> String {
    let sp = pick(SPACES, s);
    let time = pick(TIMES, t);
    let dir = pick(DIRS, d);
    let name = pick(NAMES, n);
    match kind % 10 {
        0..=2 => format!("{time}{sp}{dir}{sp}{name}"),
        3 => format!("end{sp}{time}"),
        4 => format!("#{sp}comment {time}"),
        5 => String::new(),
        6 => sp.to_string(),
        7 => format!("{time}{sp}{dir}{sp}{name}{sp}{time}"), // trailing junk
        8 => format!("{sp}{time}{sp}{dir}{sp}{name}{sp}"),   // padded
        _ => format!("{time}{sp}{dir}"),                     // missing name
    }
}

fn render_text(lines: &[(u8, u8, u8, u8, u8)], crlf: &[bool], trailing_newline: bool) -> String {
    let mut out = String::new();
    for (i, &(kind, t, d, n, s)) in lines.iter().enumerate() {
        out.push_str(&render_line(kind, t, d, n, s));
        if i + 1 < lines.len() || trailing_newline {
            out.push_str(if crlf[i % crlf.len().max(1)] {
                "\r\n"
            } else {
                "\n"
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Random NDJSON generation.
// ---------------------------------------------------------------------

const JSON_NAMES: &[&str] = &[
    "x",
    "set_irq",
    r#"a\"b"#,
    r"tab\there",
    r"back\\slash",
    r"bad\qescape",
    "caf\u{e9}",
    "",
];

fn render_json_line(kind: u8, t: u8, d: u8, n: u8, s: u8) -> String {
    let sp = pick(SPACES, s);
    let time = pick(TIMES, t);
    let dir = pick(DIRS, d);
    let name = pick(JSON_NAMES, n);
    match kind % 12 {
        0 | 1 => format!(r#"{{"time": "{time}", "dir": "{dir}", "name": "{name}"}}"#),
        2 => format!(r#"{{"time":{sp}"{time}",{sp}"name":{sp}"{name}"}}"#),
        3 => format!(r#"{{"end": "{time}"}}"#),
        4 => format!(r#"{{"name": "{name}", "time": "{time}"}}"#),
        5 => format!(r#"{{"time": "{time}", "time": "{time}", "name": "{name}"}}"#),
        6 => format!(r#"{{"time" "{time}", "name": "{name}"}}"#), // missing colon
        7 => format!(r#"{{"time": "{time}", "name": "{name}""#),  // unterminated object
        8 => format!(r#"{{"time": "{time}"}}"#),                  // missing name
        9 => format!(r#"{{}}{sp}"#),
        10 => String::new(),
        _ => format!(r#"{{"time": "{time}", "name": "{name}"}} junk"#),
    }
}

// ---------------------------------------------------------------------
// The legacy NDJSON parser, preserved verbatim as the reference oracle.
// ---------------------------------------------------------------------

fn legacy_parse_flat_json(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut chars = text.chars().peekable();
    let mut pairs = Vec::new();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
        while chars.next_if(|c| c.is_whitespace()).is_some() {}
    }
    fn string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
        skip_ws(chars);
        if chars.next() != Some('"') {
            return Err("expected `\"`".into());
        }
        let mut out = String::new();
        loop {
            match chars.next() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(out),
                Some('\\') => match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    other => return Err(format!("unsupported escape `\\{other:?}`")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("expected `{`".into());
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
    } else {
        loop {
            let key = string(&mut chars)?;
            skip_ws(&mut chars);
            if chars.next() != Some(':') {
                return Err(format!("expected `:` after key `{key}`"));
            }
            let value = string(&mut chars)?;
            pairs.push((key, value));
            skip_ws(&mut chars);
            match chars.next() {
                Some(',') => continue,
                Some('}') => break,
                _ => return Err("expected `,` or `}`".into()),
            }
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing characters after object".into());
    }
    Ok(pairs)
}

fn legacy_parse_ndjson_line(line: &str) -> Result<Option<StreamLine>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    let pairs = legacy_parse_flat_json(trimmed)?;
    let field = |key: &str| -> Option<&str> {
        pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    };
    if let Some(end) = field("end") {
        return Ok(Some(StreamLine::End(lomon_trace::time::parse_sim_time(
            end,
        )?)));
    }
    let time_text = field("time").ok_or("missing `time` field")?;
    let time = lomon_trace::time::parse_sim_time(time_text)?;
    let direction = match field("dir") {
        None | Some("in") => Direction::Input,
        Some("out") => Direction::Output,
        Some(other) => {
            return Err(format!(
                "unknown direction `{other}` (expected `in` or `out`)"
            ))
        }
    };
    let name = field("name").ok_or("missing `name` field")?.to_owned();
    if name.is_empty() {
        return Err("empty event name".into());
    }
    Ok(Some(StreamLine::Event {
        time,
        direction,
        name,
    }))
}

// ---------------------------------------------------------------------
// The differential properties.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// One line at a time: the byte lexer and the string parser agree on
    /// every parse, including the exact error message.
    #[test]
    fn trace_line_byte_lexer_matches_string_parser(
        kind in any::<u8>(), t in any::<u8>(), d in any::<u8>(), n in any::<u8>(),
        s in any::<u8>(),
    ) {
        let line = render_line(kind, t, d, n, s);
        let from_str = parse_trace_line(&line);
        let from_bytes = parse_trace_line_bytes(line.as_bytes());
        prop_assert_eq!(from_str, from_bytes, "line {:?}", line);
        // The stream-line wrappers agree too (watch's two entry points).
        let stream_str = parse_stream_line(StreamFormat::Trace, &line);
        let stream_bytes = parse_stream_line_bytes(StreamFormat::Trace, line.as_bytes())
            .map(|ok| ok.map(lomon_trace::StreamLineRef::into_owned));
        prop_assert_eq!(stream_str, stream_bytes, "line {:?}", line);
    }

    /// Whole files: identical traces, identical vocabularies, identical
    /// `TraceParseError` (message and 1-based line number).
    #[test]
    fn whole_file_byte_reader_matches_string_reader(
        lines in prop::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 0..40),
        crlf in prop::collection::vec(any::<bool>(), 1..4),
        trailing_newline in any::<bool>(),
    ) {
        let text = render_text(&lines, &crlf, trailing_newline);
        let mut voc_str = Vocabulary::new();
        let from_str = read_trace(&text, &mut voc_str);
        let mut voc_bytes = Vocabulary::new();
        let from_bytes = read_trace_bytes(text.as_bytes(), &mut voc_bytes);
        prop_assert_eq!(&from_str, &from_bytes, "text {:?}", text);
        prop_assert_eq!(voc_str.len(), voc_bytes.len());
        for name in voc_str.iter() {
            prop_assert_eq!(voc_str.resolve(name), voc_bytes.resolve(name));
            prop_assert_eq!(voc_str.direction(name), voc_bytes.direction(name));
        }
    }

    /// Telemetry parity: both readers count the same lines, bytes and
    /// parse errors — the numbers `watch`/`serve` summaries are built on.
    #[test]
    fn observed_readers_account_identically(
        lines in prop::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 0..30),
        crlf in prop::collection::vec(any::<bool>(), 1..4),
        trailing_newline in any::<bool>(),
    ) {
        let text = render_text(&lines, &crlf, trailing_newline);

        let reg_str = lomon_obs::Registry::new();
        let m_str = IoMetrics::register(&reg_str);
        let mut voc_str = Vocabulary::new();
        let _ = lomon_trace::read_trace_observed(&text, &mut voc_str, Some(&m_str));

        let reg_bytes = lomon_obs::Registry::new();
        let m_bytes = IoMetrics::register(&reg_bytes);
        let mut voc_bytes = Vocabulary::new();
        let _ = lomon_trace::read_trace_bytes_observed(
            text.as_bytes(), &mut voc_bytes, Some(&m_bytes));

        prop_assert_eq!(m_str.lines.get(), m_bytes.lines.get(), "text {:?}", text);
        prop_assert_eq!(m_str.bytes.get(), m_bytes.bytes.get(), "text {:?}", text);
        prop_assert_eq!(
            m_str.parse_errors.get(), m_bytes.parse_errors.get(), "text {:?}", text);
    }

    /// The borrowed NDJSON scanner matches the retired char-iterator
    /// parser on every line, valid or broken.
    #[test]
    fn ndjson_scanner_matches_legacy_parser(
        kind in any::<u8>(), t in any::<u8>(), d in any::<u8>(), n in any::<u8>(),
        s in any::<u8>(),
    ) {
        let line = render_json_line(kind, t, d, n, s);
        let legacy = legacy_parse_ndjson_line(&line);
        let current = parse_ndjson_line(&line);
        prop_assert_eq!(legacy, current, "line {:?}", line);
        let flat_legacy = legacy_parse_flat_json(&line);
        let flat_current = lomon_trace::ndjson::parse_flat_json(&line);
        prop_assert_eq!(flat_legacy, flat_current, "line {:?}", line);
    }

    /// The fused single-pass scanner inside `decode_events_into` agrees
    /// with a straight per-line decode (the proven `byte_lines` +
    /// `parse_trace_line_bytes` loop) on arbitrary text — same events,
    /// same summary, same error message and line number. The vocabulary
    /// is seeded with only some of the names the generator emits, so the
    /// `unknown event name` path is exercised on both sides.
    #[test]
    fn fused_decode_matches_per_line_decode(
        lines in prop::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 0..40),
        crlf in prop::collection::vec(any::<bool>(), 1..4),
        trailing_newline in any::<bool>(),
    ) {
        let text = render_text(&lines, &crlf, trailing_newline);
        let mut voc = Vocabulary::new();
        for name in ["a", "start", "set_imgAddr", "caf\u{e9}", "end", "in"] {
            voc.intern(name, Direction::Input);
        }

        // Reference: the per-line loop `decode_events_into` had before the
        // fused fast path.
        let mut reference = Vec::new();
        let mut ref_summary = lomon_trace::DecodeSummary::default();
        let mut ref_result = Ok(());
        let mut last_time: Option<SimTime> = None;
        for (idx, raw) in byte_lines(text.as_bytes()).enumerate() {
            ref_summary.lines += 1;
            let outcome = parse_trace_line_bytes(raw)
                .map_err(|message| lomon_trace::TraceParseError { line: idx + 1, message })
                .and_then(|parsed| match parsed {
                    None => Ok(()),
                    Some(lomon_trace::TraceLine::End(time)) => {
                        if last_time.is_some_and(|last| time < last) {
                            return Err(lomon_trace::TraceParseError {
                                line: idx + 1,
                                message: format!(
                                    "end time {time} precedes last event at {}",
                                    last_time.unwrap()),
                            });
                        }
                        ref_summary.end_time = Some(time);
                        last_time = Some(time);
                        Ok(())
                    }
                    Some(lomon_trace::TraceLine::Event { time, name, .. }) => {
                        if last_time.is_some_and(|last| time < last) {
                            return Err(lomon_trace::TraceParseError {
                                line: idx + 1,
                                message: format!(
                                    "timestamp {time} precedes previous event at {}",
                                    last_time.unwrap()),
                            });
                        }
                        last_time = Some(time);
                        match voc.lookup(name) {
                            Some(id) => {
                                reference.push(lomon_trace::TimedEvent::new(id, time));
                                Ok(())
                            }
                            None => Err(lomon_trace::TraceParseError {
                                line: idx + 1,
                                message: format!("unknown event name `{name}`"),
                            }),
                        }
                    }
                });
            if let Err(e) = outcome {
                ref_result = Err(e);
                break;
            }
        }

        let mut buf = Vec::new();
        let fused = lomon_trace::decode_events_into(text.as_bytes(), &voc, &mut buf);
        match (ref_result, fused) {
            (Ok(()), Ok(summary)) => {
                prop_assert_eq!(reference.as_slice(), buf.as_slice(), "text {:?}", text);
                prop_assert_eq!(ref_summary, summary, "text {:?}", text);
            }
            (Err(expected), Err(got)) => {
                prop_assert_eq!(expected, got, "text {:?}", text);
            }
            (expected, got) => {
                prop_assert!(false, "divergence on {:?}: {:?} vs {:?}", text, expected, got);
            }
        }
    }

    /// Frozen-vocabulary decode agrees with the interning reader on
    /// well-formed traces whose alphabet is fully known.
    #[test]
    fn frozen_decode_matches_interning_reader(
        steps in prop::collection::vec((0u8..6, 0u16..1000), 0..60),
        with_end in any::<bool>(),
    ) {
        let mut voc = Vocabulary::new();
        let mut clock = 0u64;
        let mut text = String::new();
        for &(name_ix, gap) in &steps {
            clock += u64::from(gap);
            let dir = if name_ix % 2 == 0 { "in" } else { "out" };
            let name = format!("n{name_ix}");
            voc.intern(&name, if name_ix % 2 == 0 { Direction::Input } else { Direction::Output });
            text.push_str(&format!("{}ps {} {}\n", clock, dir, name));
        }
        if with_end {
            text.push_str(&format!("end {}ps\n", clock + 5));
        }

        let mut voc_reader = voc.clone();
        let trace = read_trace(&text, &mut voc_reader).expect("well-formed");

        let mut buf = Vec::new();
        let summary = lomon_trace::decode_events_into(text.as_bytes(), &voc, &mut buf)
            .expect("well-formed");
        prop_assert_eq!(trace.events(), buf.as_slice());
        if with_end {
            prop_assert_eq!(summary.end_time, Some(SimTime::from_ps(clock + 5)));
        }
    }
}
